#![warn(missing_docs)]

//! Baseline dissemination schemes compared against 4D TeleCast.
//!
//! The paper's §VII evaluates TeleCast against the **Random routing
//! scheme** of Wu et al. (ICDCS 2008), which works well among producers
//! but poorly at viewer scale: "a joining node is randomly attached to
//! another node, which can serve the request. No clustering or
//! pre-allocation of outgoing bandwidth of the node is done."
//!
//! All baselines run on the *same* simulator as TeleCast (same latency
//! matrix, same CDN, same workload scripts), differing only in the
//! configuration knobs they disable — exactly how the paper performs the
//! comparison. This crate packages those configurations behind explicit
//! constructors and documents what each one switches off, plus the
//! single-axis ablations used by the ablation benches.
//!
//! # Example
//!
//! ```
//! use telecast_baselines::random_dissemination;
//! use telecast::SessionConfig;
//!
//! let config = random_dissemination(SessionConfig::default());
//! // Random routing has no view grouping and no outbound pre-allocation.
//! assert!(!config.layering_enabled);
//! ```

use telecast::{GroupScope, OutboundPolicy, PlacementStrategy, SessionConfig};

/// The Random dissemination baseline (\[19\] in the paper):
///
/// * placement: a few uniformly random probes over the whole session
///   population ("a joining node is randomly attached to another node,
///   which can serve the request") — no view grouping, no displacement,
///   CDN once every probe misses;
/// * no outbound pre-allocation (parents' capacity is consumed first-come
///   first-served);
/// * no delay-layer machinery (the scheme predates it).
///
/// The probe count (3) is calibrated so the baseline lands in the 80–88 %
/// acceptance band Fig. 15(b) reports at 1000 viewers; see DESIGN.md §5.
/// Use [`random_dissemination_with_probes`] to explore other readings.
pub fn random_dissemination(mut config: SessionConfig) -> SessionConfig {
    config.placement = PlacementStrategy::Random { probes: 3 };
    config.layering_enabled = false;
    config
}

/// A friendlier random variant probing `probes` candidates before giving
/// up — used to show how much of the gap is pure discovery failure.
pub fn random_dissemination_with_probes(mut config: SessionConfig, probes: u32) -> SessionConfig {
    config.placement = PlacementStrategy::Random { probes };
    config.layering_enabled = false;
    config
}

/// Ablation: TeleCast with first-fit attachment instead of degree
/// push-down (keeps grouping, allocation and layering).
pub fn fifo_placement(mut config: SessionConfig) -> SessionConfig {
    config.placement = PlacementStrategy::Fifo;
    config
}

/// Ablation: TeleCast with all outbound bandwidth granted to the highest
/// priority stream (Fig. 8's "more viewers, poor quality" corner).
pub fn priority_first_outbound(mut config: SessionConfig) -> SessionConfig {
    config.outbound_policy = OutboundPolicy::PriorityFirst;
    config
}

/// Ablation: TeleCast with outbound bandwidth split evenly across
/// accepted streams (Fig. 8's "fewer viewers, better quality" corner).
pub fn equal_split_outbound(mut config: SessionConfig) -> SessionConfig {
    config.outbound_policy = OutboundPolicy::EqualSplit;
    config
}

/// Ablation: TeleCast without the delay-layer subscription machinery —
/// overlay construction unchanged, but nothing bounds inter-stream skew,
/// so delivered bandwidth can become ineffective.
pub fn no_layering(mut config: SessionConfig) -> SessionConfig {
    config.layering_enabled = false;
    config
}

/// Ablation: session-global view groups instead of per-LSC groups.
pub fn global_grouping(mut config: SessionConfig) -> SessionConfig {
    config.group_scope = GroupScope::Global;
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_disables_grouping_benefits() {
        let c = random_dissemination(SessionConfig::default());
        assert_eq!(c.placement, PlacementStrategy::Random { probes: 3 });
        assert!(!c.layering_enabled);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn probe_count_is_configurable() {
        let c = random_dissemination_with_probes(SessionConfig::default(), 4);
        assert_eq!(c.placement, PlacementStrategy::Random { probes: 4 });
    }

    #[test]
    fn ablations_change_exactly_one_axis() {
        let base = SessionConfig::default();

        let c = fifo_placement(base.clone());
        assert_eq!(c.placement, PlacementStrategy::Fifo);
        assert_eq!(c.outbound_policy, base.outbound_policy);
        assert!(c.layering_enabled);

        let c = priority_first_outbound(base.clone());
        assert_eq!(c.outbound_policy, OutboundPolicy::PriorityFirst);
        assert_eq!(c.placement, base.placement);

        let c = equal_split_outbound(base.clone());
        assert_eq!(c.outbound_policy, OutboundPolicy::EqualSplit);

        let c = no_layering(base.clone());
        assert!(!c.layering_enabled);
        assert_eq!(c.placement, base.placement);

        let c = global_grouping(base);
        assert_eq!(c.group_scope, GroupScope::Global);
    }
}

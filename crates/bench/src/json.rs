//! A minimal self-contained JSON reader/writer for the figure exports.
//!
//! The build environment pins `serde` to an offline no-op stub (see
//! `vendor/serde`), so the figure JSON is produced and parsed by hand.
//! This module implements exactly the JSON subset the exports need —
//! objects, arrays, strings, and finite numbers — with round-trip-exact
//! `f64` formatting.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, preserving member order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up an object member.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A malformed document, with a byte offset near the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Appends `value` to `out` as a JSON string literal.
pub fn write_escaped(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `value` to `out` in round-trip-exact form.
///
/// # Panics
///
/// Panics on non-finite values, which JSON cannot represent.
pub fn write_number(out: &mut String, value: f64) {
    assert!(value.is_finite(), "JSON cannot represent {value}");
    // `Display` for f64 is the shortest representation that parses back
    // to the same bits, so exports round-trip exactly.
    let text = format!("{value}");
    out.push_str(&text);
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

/// Parses one JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("malformed \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("malformed \\u escape"))?;
                            // Basic-plane escapes only; the exports never
                            // emit surrogate pairs.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input arrived as a
                    // &str, so decoding the next few bytes cannot fail
                    // unless the cursor drifted off a char boundary —
                    // which the error arm below would then surface.
                    let rest = &self.bytes[self.pos..];
                    let head = &rest[..rest.len().min(4)];
                    let c = match std::str::from_utf8(head) {
                        Ok(s) => s.chars().next().expect("nonempty string tail"),
                        Err(partial) if partial.valid_up_to() > 0 => {
                            let valid = &head[..partial.valid_up_to()];
                            std::str::from_utf8(valid)
                                .expect("validated prefix")
                                .chars()
                                .next()
                                .expect("nonempty valid prefix")
                        }
                        Err(_) => return Err(self.error("malformed UTF-8 in string")),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number text");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.error("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#" {"a": [1.0, -2.5, 3e2], "b": {"c": "x\ny"}, "d": null, "e": true} "#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("e"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn escapes_round_trip() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\te — ≤6Mbps");
        let parsed = parse(&out).unwrap();
        assert_eq!(parsed.as_str(), Some("a\"b\\c\nd\te — ≤6Mbps"));
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for v in [0.0, -1.5, 0.1, 1e300, 123_456_789.123_456_79, -0.000_001] {
            let mut out = String::new();
            write_number(&mut out, v);
            assert_eq!(parse(&out).unwrap().as_f64(), Some(v), "text was {out}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}

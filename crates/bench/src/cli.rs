//! Minimal flag parsing shared by the scenario binaries.
//!
//! The scale bins (`flash_crowd`, `churn_storm`) accept the same knobs —
//! population, delay backend, seed, simulated duration, churn rate — so
//! the parsing lives here once. No external argument-parsing crate: the
//! container builds offline.

use telecast::DelayModelChoice;

/// Parsed scenario flags; every field is optional so each binary applies
/// its own defaults.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScenarioArgs {
    /// `--viewers N` (or a bare positional integer, kept for backwards
    /// compatibility with the original `flash_crowd <N>` form).
    pub viewers: Option<usize>,
    /// `--minutes M`: simulated duration.
    pub minutes: Option<u64>,
    /// `--backend {dense,coordinate,auto}`.
    pub backend: Option<DelayModelChoice>,
    /// `--seed S`: master seed override.
    pub seed: Option<u64>,
    /// `--churn-pct P`: percent of the population leaving per minute.
    pub churn_pct: Option<f64>,
    /// `--pool-mbps N`: starting CDN outbound pool in Mbps.
    pub pool_mbps: Option<u64>,
    /// `--autoscale`: enable elastic CDN autoscaling.
    pub autoscale: bool,
    /// `--predictive`: forecast-driven scaling (implies `--autoscale`).
    pub predictive: bool,
    /// `--per-region`: split the CDN pool into per-region pools.
    pub per_region: bool,
    /// `--threads N`: worker threads for sharded runtimes. Defaults to
    /// [`telecast_sim::default_parallelism`] when unset; the output is
    /// thread-count-independent, so this is purely a wall-clock knob.
    pub threads: Option<usize>,
    /// `--epoch-secs E`: barrier period of sharded runtimes in simulated
    /// seconds. Like `--threads`, the output never depends on it being
    /// *expressible* — but unlike `--threads` it is a simulation knob:
    /// it moves when cross-shard effects apply, so different values
    /// produce different (each internally deterministic) runs.
    pub epoch_secs: Option<u64>,
    /// `--tenants M`: concurrent tenant broadcasts sharing the pools
    /// (multi-tenant scenarios only).
    pub tenants: Option<u32>,
    /// `--zipf S`: Zipf exponent of the tenant audience-size split.
    pub zipf: Option<f64>,
    /// `--views N`: selectable views in the catalog (camera count per
    /// producer site; multi-view scenarios only).
    pub views: Option<usize>,
    /// `--zipf-view S`: Zipf exponent of view popularity (0 = uniform).
    pub zipf_view: Option<f64>,
    /// `--refocus-pct P`: percent of the audience hopping to the storm
    /// target view during each correlated re-focus event (0 disables
    /// the storms).
    pub refocus_pct: Option<f64>,
}

impl ScenarioArgs {
    /// Parses flags from an iterator of arguments (without the program
    /// name).
    ///
    /// # Errors
    ///
    /// Returns a usage message naming the offending argument.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut out = ScenarioArgs::default();
        let mut args = args;
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--viewers" => {
                    let v = next_value(&mut args, "--viewers")?;
                    let n: usize = parse_num(&v, "--viewers")?;
                    if n == 0 {
                        return Err("--viewers must be positive".into());
                    }
                    out.viewers = Some(n);
                }
                "--minutes" => {
                    let v = next_value(&mut args, "--minutes")?;
                    out.minutes = Some(parse_num(&v, "--minutes")?);
                }
                "--seed" => {
                    let v = next_value(&mut args, "--seed")?;
                    out.seed = Some(parse_num(&v, "--seed")?);
                }
                "--churn-pct" => {
                    let v = next_value(&mut args, "--churn-pct")?;
                    let pct: f64 = v
                        .parse()
                        .map_err(|_| format!("--churn-pct expects a number, got `{v}`"))?;
                    // ChurnSpec::steady_state requires a rate in (0, 1],
                    // so reject 0 here with a clean usage error instead
                    // of panicking downstream.
                    if !(pct > 0.0 && pct <= 100.0) {
                        return Err(format!("--churn-pct out of (0, 100]: {pct}"));
                    }
                    out.churn_pct = Some(pct);
                }
                "--backend" => {
                    let v = next_value(&mut args, "--backend")?;
                    out.backend = Some(parse_backend(&v)?);
                }
                "--pool-mbps" => {
                    let v = next_value(&mut args, "--pool-mbps")?;
                    let n: u64 = parse_num(&v, "--pool-mbps")?;
                    if n == 0 {
                        return Err("--pool-mbps must be positive".into());
                    }
                    out.pool_mbps = Some(n);
                }
                "--autoscale" => {
                    out.autoscale = true;
                }
                "--predictive" => {
                    out.predictive = true;
                    out.autoscale = true;
                }
                "--per-region" => {
                    out.per_region = true;
                }
                "--threads" => {
                    let v = next_value(&mut args, "--threads")?;
                    let n: usize = parse_num(&v, "--threads")?;
                    if n == 0 {
                        return Err("--threads must be positive".into());
                    }
                    out.threads = Some(n);
                }
                "--epoch-secs" => {
                    let v = next_value(&mut args, "--epoch-secs")?;
                    let n: u64 = parse_num(&v, "--epoch-secs")?;
                    // ShardedSession::new asserts a non-zero epoch; catch
                    // it here with a usage error like `--viewers 0`.
                    if n == 0 {
                        return Err("--epoch-secs must be positive".into());
                    }
                    out.epoch_secs = Some(n);
                }
                "--tenants" => {
                    let v = next_value(&mut args, "--tenants")?;
                    let n: u32 = parse_num(&v, "--tenants")?;
                    // Zero tenants is as meaningless as zero viewers —
                    // same parity check, same clean usage error.
                    if n == 0 {
                        return Err("--tenants must be positive".into());
                    }
                    out.tenants = Some(n);
                }
                "--zipf" => {
                    let v = next_value(&mut args, "--zipf")?;
                    let s: f64 = v
                        .parse()
                        .map_err(|_| format!("--zipf expects a number, got `{v}`"))?;
                    // A non-positive exponent inverts or degenerates the
                    // audience split; reject it here like `--churn-pct 0`.
                    if !(s > 0.0 && s.is_finite()) {
                        return Err(format!("--zipf must be a positive number: {s}"));
                    }
                    out.zipf = Some(s);
                }
                "--views" => {
                    let v = next_value(&mut args, "--views")?;
                    let n: usize = parse_num(&v, "--views")?;
                    // Zero views is as meaningless as zero viewers —
                    // same parity check, same clean usage error.
                    if n == 0 {
                        return Err("--views must be positive".into());
                    }
                    out.views = Some(n);
                }
                "--zipf-view" => {
                    let v = next_value(&mut args, "--zipf-view")?;
                    let s: f64 = v
                        .parse()
                        .map_err(|_| format!("--zipf-view expects a number, got `{v}`"))?;
                    // Unlike `--zipf` (an audience split, where 0
                    // degenerates), a 0 view exponent is the uniform
                    // choice — only negative or non-finite is invalid
                    // (ViewPopularity::validate would panic downstream).
                    if !(s >= 0.0 && s.is_finite()) {
                        return Err(format!("--zipf-view must be a non-negative number: {s}"));
                    }
                    out.zipf_view = Some(s);
                }
                "--refocus-pct" => {
                    let v = next_value(&mut args, "--refocus-pct")?;
                    let pct: f64 = v
                        .parse()
                        .map_err(|_| format!("--refocus-pct expects a number, got `{v}`"))?;
                    // RefocusEvent::validate rejects fractions outside
                    // [0, 1]; catch the percent form here. 0 is a valid
                    // storms-off setting (unlike `--churn-pct`, where a
                    // zero rate trips ChurnSpec's asserts).
                    if !(0.0..=100.0).contains(&pct) {
                        return Err(format!("--refocus-pct out of [0, 100]: {pct}"));
                    }
                    out.refocus_pct = Some(pct);
                }
                other => {
                    // Bare positional integer = viewer count (the original
                    // `flash_crowd <N>` interface). The same positivity
                    // check as `--viewers` applies — zero viewers would
                    // panic inside ChurnSpec downstream.
                    match other.parse::<usize>() {
                        Ok(0) => return Err("viewer count must be positive".into()),
                        Ok(n) => out.viewers = Some(n),
                        Err(_) => {
                            return Err(format!(
                                "unknown argument `{other}` \
                                 (expected --viewers N, --minutes M, \
                                 --backend dense|coordinate|auto, --seed S, \
                                 --churn-pct P, --pool-mbps N, --autoscale, \
                                 --predictive, --per-region, --threads N, \
                                 --epoch-secs E, --tenants M, --zipf S, \
                                 --views N, --zipf-view S, --refocus-pct P)"
                            ))
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Parses the process arguments, exiting with the usage message on
    /// error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }
}

fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} expects a value"))
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag} expects an integer, got `{value}`"))
}

fn parse_backend(value: &str) -> Result<DelayModelChoice, String> {
    match value {
        "dense" => Ok(DelayModelChoice::Dense),
        "coordinate" => Ok(DelayModelChoice::Coordinate),
        "auto" => Ok(DelayModelChoice::Auto),
        other => Err(format!(
            "--backend expects dense|coordinate|auto, got `{other}`"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<ScenarioArgs, String> {
        ScenarioArgs::parse(parts.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_all_flags() {
        let args = parse(&[
            "--viewers",
            "20000",
            "--minutes",
            "5",
            "--backend",
            "coordinate",
            "--seed",
            "9",
            "--churn-pct",
            "1.5",
            "--pool-mbps",
            "800",
            "--autoscale",
            "--predictive",
            "--per-region",
            "--threads",
            "4",
            "--epoch-secs",
            "30",
        ])
        .unwrap();
        assert_eq!(args.viewers, Some(20_000));
        assert_eq!(args.minutes, Some(5));
        assert_eq!(args.backend, Some(DelayModelChoice::Coordinate));
        assert_eq!(args.seed, Some(9));
        assert_eq!(args.churn_pct, Some(1.5));
        assert_eq!(args.pool_mbps, Some(800));
        assert!(args.autoscale);
        assert!(args.predictive);
        assert!(args.per_region);
        assert_eq!(args.threads, Some(4));
        assert_eq!(args.epoch_secs, Some(30));
    }

    #[test]
    fn epoch_secs_shares_the_viewers_validation_parity() {
        assert_eq!(parse(&["--epoch-secs", "2"]).unwrap().epoch_secs, Some(2));
        assert_eq!(parse(&[]).unwrap().epoch_secs, None);
        // `--epoch-secs 0` is rejected exactly like `--viewers 0` — a
        // zero epoch would trip ShardedSession::new's assert downstream.
        assert!(parse(&["--epoch-secs", "0"]).is_err());
        assert!(parse(&["--epoch-secs"]).is_err());
        assert!(parse(&["--epoch-secs", "soon"]).is_err());
    }

    #[test]
    fn predictive_implies_autoscale() {
        let args = parse(&["--predictive"]).unwrap();
        assert!(args.predictive);
        assert!(
            args.autoscale,
            "--predictive without the autoscaler is inert"
        );
        assert!(!parse(&["--autoscale"]).unwrap().predictive);
    }

    #[test]
    fn bare_integer_is_viewers() {
        assert_eq!(parse(&["2500"]).unwrap().viewers, Some(2_500));
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        assert!(parse(&["--wat"]).is_err());
        assert!(parse(&["--viewers"]).is_err());
        assert!(parse(&["--viewers", "lots"]).is_err());
        assert!(parse(&["--backend", "quantum"]).is_err());
        assert!(parse(&["--churn-pct", "250"]).is_err());
        assert!(parse(&["--pool-mbps", "0"]).is_err());
        // Zero rates/populations would panic inside ChurnSpec's
        // asserts; the parser must catch them first.
        assert!(parse(&["--churn-pct", "0"]).is_err());
        assert!(parse(&["--viewers", "0"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--threads"]).is_err());
    }

    #[test]
    fn tenant_flags_share_the_viewers_validation_parity() {
        let args = parse(&["--tenants", "8", "--zipf", "1.1"]).unwrap();
        assert_eq!(args.tenants, Some(8));
        assert_eq!(args.zipf, Some(1.1));
        // `--tenants 0` is rejected exactly like `--viewers 0`…
        assert!(parse(&["--tenants", "0"]).is_err());
        assert!(parse(&["--tenants"]).is_err());
        assert!(parse(&["--tenants", "many"]).is_err());
        // …and a non-positive (or non-finite) Zipf exponent like
        // `--churn-pct 0`.
        assert!(parse(&["--zipf", "0"]).is_err());
        assert!(parse(&["--zipf", "-0.5"]).is_err());
        assert!(parse(&["--zipf", "inf"]).is_err());
        assert!(parse(&["--zipf", "nan"]).is_err());
        assert!(parse(&["--zipf"]).is_err());
    }

    #[test]
    fn view_storm_flags_share_the_validation_parity() {
        let args = parse(&["--views", "8", "--zipf-view", "1.1", "--refocus-pct", "40"]).unwrap();
        assert_eq!(args.views, Some(8));
        assert_eq!(args.zipf_view, Some(1.1));
        assert_eq!(args.refocus_pct, Some(40.0));
        assert_eq!(parse(&[]).unwrap().views, None);
        // `--views 0` is rejected exactly like `--viewers 0`…
        assert!(parse(&["--views", "0"]).is_err());
        assert!(parse(&["--views"]).is_err());
        assert!(parse(&["--views", "several"]).is_err());
        // …`--zipf-view` allows the uniform 0 but nothing negative or
        // non-finite (ViewPopularity::validate panics downstream)…
        assert_eq!(parse(&["--zipf-view", "0"]).unwrap().zipf_view, Some(0.0));
        assert!(parse(&["--zipf-view", "-0.5"]).is_err());
        assert!(parse(&["--zipf-view", "inf"]).is_err());
        assert!(parse(&["--zipf-view", "nan"]).is_err());
        assert!(parse(&["--zipf-view"]).is_err());
        // …and `--refocus-pct` is a fraction of the audience: [0, 100],
        // with 0 a valid storms-off setting.
        assert_eq!(
            parse(&["--refocus-pct", "0"]).unwrap().refocus_pct,
            Some(0.0)
        );
        assert!(parse(&["--refocus-pct", "101"]).is_err());
        assert!(parse(&["--refocus-pct", "-1"]).is_err());
        assert!(parse(&["--refocus-pct", "nan"]).is_err());
        assert!(parse(&["--refocus-pct"]).is_err());
    }

    #[test]
    fn zero_viewers_rejected_in_both_spellings() {
        // The flag spelling…
        assert!(parse(&["--viewers", "0"]).is_err());
        // …and the backwards-compatible bare positional used to disagree:
        // `flash_crowd 0` slipped a zero through to ChurnSpec's asserts.
        assert!(parse(&["0"]).is_err());
        // Positive values still parse through both.
        assert_eq!(parse(&["--viewers", "7"]).unwrap().viewers, Some(7));
        assert_eq!(parse(&["7"]).unwrap().viewers, Some(7));
    }

    #[test]
    fn empty_args_are_all_defaults() {
        assert_eq!(parse(&[]).unwrap(), ScenarioArgs::default());
    }
}

//! The tenant-mix scenario: M concurrent broadcasts share the regional
//! CDN pools through one capacity broker, under per-tenant quotas and
//! deficit-fair retry arbitration.
//!
//! Audience sizes follow a Zipf split — one headline broadcast and a
//! long tail — and the *largest* tenant additionally bursts
//! (replayed-highlight spike windows on the shared diurnal baseline)
//! while every other tenant rides the plain wave. The claims the
//! conformance suite pins on this scenario:
//!
//! * **noisy-neighbour isolation** — the burster's overload degrades
//!   the other tenants' bad-join rate only within a bounded factor of
//!   what they'd see running solo, because the quota floors protect
//!   their entitlement and the weighted-fair arbitration splits retry
//!   headroom by floor weight rather than demand; and
//! * **consolidation efficiency** — the shared pools provision fewer
//!   Mbps-hours than M statically-split pools on the same seeds, since
//!   one shared controller absorbs the burst with capacity the quiet
//!   tenants are not using.
//!
//! Everything exported is a pure function of the seed; the JSON figure
//! is byte-identical across runs and machines.

use telecast::{DelayModelChoice, SessionConfig, TenantFleet};
use telecast_cdn::{CdnConfig, PoolScope, PredictivePolicy, TenantQuota};
use telecast_media::{ChurnSpec, RateProfile, SpikeWindow};
use telecast_net::{Bandwidth, BandwidthProfile};
use telecast_sim::{SimDuration, SimTime};

use crate::churn::autoscale_policy_for;
use crate::table::{FigureData, Series};

/// Salt mixed into each tenant's seed so sibling broadcasts draw
/// independent arrival/dwell streams from one master seed.
pub const TENANT_SEED_SALT: u64 = 0xA54F_F53A_5F1D_36F1;

/// Parameters of one tenant-mix run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantMixScenario {
    /// Total steady-state audience across every tenant (split by Zipf).
    pub viewers: usize,
    /// Number of concurrent tenant broadcasts.
    pub tenants: u32,
    /// Zipf exponent of the audience split (tenant `i` weighs
    /// `1/(i+1)^zipf`).
    pub zipf: f64,
    /// Simulated duration in minutes.
    pub minutes: u64,
    /// Fraction of each tenant's population leaving per minute.
    pub churn_per_minute: f64,
    /// Length of one compressed "day" in minutes.
    pub day_minutes: u64,
    /// Diurnal amplitude of the shared baseline, in `[0, 1]`.
    pub amplitude: f64,
    /// Rate multiplier of the headline tenant's burst windows.
    pub spike_multiplier: f64,
    /// Delay substrate.
    pub backend: DelayModelChoice,
    /// Master seed (each tenant derives its own via
    /// [`TENANT_SEED_SALT`]).
    pub seed: u64,
    /// Starting shared CDN pool in Mbps; `None` provisions
    /// `4 Mbps × viewers` (min 2000) — sized for the *aggregate*
    /// audience, not per tenant.
    pub pool_mbps: Option<u64>,
    /// Whether the fleet's shared autoscalers run at all.
    pub autoscale: bool,
    /// Whether they are predictive (forecast-driven) instead of
    /// reactive.
    pub predictive: bool,
}

impl Default for TenantMixScenario {
    fn default() -> Self {
        TenantMixScenario {
            viewers: 20_000,
            tenants: 4,
            zipf: 1.0,
            minutes: 20,
            churn_per_minute: 0.30,
            day_minutes: 20,
            amplitude: 0.5,
            spike_multiplier: 6.0,
            backend: DelayModelChoice::Coordinate,
            seed: 0x7E_4A47,
            pool_mbps: None,
            autoscale: true,
            predictive: true,
        }
    }
}

/// Splits `total` into `tenants` Zipf-weighted audience sizes by the
/// largest-remainder method: sizes sum to exactly `total`, are
/// non-increasing, and every tenant gets at least one viewer while
/// `total ≥ tenants`.
pub fn zipf_split(total: usize, tenants: usize, exponent: f64) -> Vec<usize> {
    assert!(tenants > 0, "zipf_split over zero tenants");
    assert!(
        exponent > 0.0 && exponent.is_finite(),
        "zipf exponent out of range: {exponent}"
    );
    let weights: Vec<f64> = (0..tenants)
        .map(|i| 1.0 / ((i + 1) as f64).powf(exponent))
        .collect();
    let weight_sum: f64 = weights.iter().sum();
    // Integer floors first, then hand the remainder out in descending
    // fractional order (ties by index — deterministic).
    let shares: Vec<f64> = weights
        .iter()
        .map(|w| total as f64 * w / weight_sum)
        .collect();
    let mut sizes: Vec<usize> = shares.iter().map(|s| s.floor() as usize).collect();
    let assigned: usize = sizes.iter().sum();
    let mut order: Vec<usize> = (0..tenants).collect();
    order.sort_by(|&a, &b| {
        let fa = shares[a] - shares[a].floor();
        let fb = shares[b] - shares[b].floor();
        fb.partial_cmp(&fa).unwrap().then(a.cmp(&b))
    });
    for &i in order.iter().cycle().take(total.saturating_sub(assigned)) {
        sizes[i] += 1;
    }
    // Floors of tiny tails can be zero; guarantee one viewer each by
    // taking from the head (which has the most to spare).
    for i in 0..tenants {
        if sizes[i] == 0 && sizes[0] > 1 {
            sizes[i] = 1;
            sizes[0] -= 1;
        }
    }
    sizes
}

/// The quota every tenant gets: a guaranteed floor of half an even
/// share and a burstable ceiling of four even shares (capped at the
/// whole pool) — enough slack for the headline burst, enough floor to
/// protect the tail. A single tenant owns the pool outright.
pub fn tenant_quota(tenants: u32) -> TenantQuota {
    if tenants <= 1 {
        return TenantQuota::FULL;
    }
    TenantQuota {
        floor_percent: (100 / (2 * tenants)).max(1),
        ceiling_percent: (400 / tenants).clamp(1, 100),
    }
}

impl TenantMixScenario {
    /// The headline tenant's burst schedule — same shape as the spike
    /// storm's: two windows at 40% and 70% of the horizon, the second
    /// half as tall again.
    pub fn spike_windows(&self) -> Vec<SpikeWindow> {
        let horizon_secs = self.minutes * 60;
        let duration = SimDuration::from_secs((horizon_secs / 10).max(60));
        vec![
            SpikeWindow {
                start: SimTime::from_secs(horizon_secs * 2 / 5),
                duration,
                multiplier: self.spike_multiplier,
            },
            SpikeWindow {
                start: SimTime::from_secs(horizon_secs * 7 / 10),
                duration,
                multiplier: self.spike_multiplier * 1.5,
            },
        ]
    }

    /// Tenant `index`'s arrival-rate profile: the shared diurnal wave,
    /// with the burst windows composed on top for the headline tenant.
    pub fn rate_profile(&self, index: usize) -> RateProfile {
        let day = SimDuration::from_secs(self.day_minutes.max(1) * 60);
        if index == 0 {
            RateProfile::diurnal_with_spikes(day, self.amplitude, &self.spike_windows())
        } else {
            RateProfile::diurnal_with_spikes(day, self.amplitude, &[])
        }
    }

    /// The shared starting pool.
    pub fn pool(&self) -> Bandwidth {
        Bandwidth::from_mbps(
            self.pool_mbps
                .unwrap_or((self.viewers as u64 * 4).max(2_000)),
        )
    }
}

/// Deterministic outcome of a tenant-mix run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMixOutcome {
    /// The exported figure (`results/tenant_mix.json`).
    pub figure: FigureData,
    /// Steady-state audience per tenant (the Zipf split).
    pub audiences: Vec<usize>,
    /// Stream acceptance ratio ρ per tenant at the horizon.
    pub acceptance_by_tenant: Vec<f64>,
    /// Bad-join rate per tenant: rejected / (admitted + rejected).
    pub bad_join_rate_by_tenant: Vec<f64>,
    /// Viewers rejected at admission per tenant.
    pub rejected_by_tenant: Vec<u64>,
    /// Parked joins retried per tenant (fleet-arbitrated drains).
    pub retries_by_tenant: Vec<u64>,
    /// Connected population per tenant at the horizon.
    pub final_population_by_tenant: Vec<usize>,
    /// Mbps-hours of CDN capacity actually served per tenant.
    pub served_mbps_hours_by_tenant: Vec<f64>,
    /// Max − min acceptance ratio across tenants — the fairness spread
    /// the bench gate pins.
    pub acceptance_spread: f64,
    /// Provisioned Mbps-hours billed across the shared pools.
    pub provisioned_mbps_hours: f64,
    /// The same bill in dollars at the committed rate.
    pub provisioned_dollars: f64,
    /// Shared-controller scale-ups applied.
    pub autoscale_ups: u64,
    /// Shared-controller scale-downs applied.
    pub autoscale_downs: u64,
    /// Mean absolute forecast error of the shared predictive
    /// controllers, in Mbps (stdout-only; not part of the figure).
    pub mean_abs_forecast_error_mbps: Option<f64>,
    /// Matured forecasts scored into the error above.
    pub forecasts_scored: usize,
}

/// Builds the per-tenant session config for `run_tenant_mix` — also
/// the config the conformance suite reuses to run a tenant *solo* on
/// the same seed (the isolation comparison's control arm).
pub fn tenant_config(scenario: &TenantMixScenario, index: usize) -> SessionConfig {
    SessionConfig::default()
        .with_outbound(BandwidthProfile::uniform_mbps(2, 14))
        .with_cdn(
            CdnConfig::default()
                .with_outbound(scenario.pool())
                .with_pool_scope(PoolScope::PerRegion),
        )
        .with_delay_model(scenario.backend)
        .with_monitor_period(SimDuration::from_secs(10))
        .with_seed(scenario.seed ^ TENANT_SEED_SALT.wrapping_mul(index as u64 + 1))
}

/// Runs the scenario. Pure in the seed: equal scenarios produce equal
/// (`==`, and byte-identical JSON) outcomes regardless of host or
/// repetition.
pub fn run_tenant_mix(scenario: &TenantMixScenario) -> TenantMixOutcome {
    let m = scenario.tenants as usize;
    let pool = scenario.pool();
    let horizon = SimTime::from_secs(scenario.minutes * 60);
    let audiences = zipf_split(scenario.viewers.max(m), m, scenario.zipf);

    // The fleet's shared controllers are sized for the aggregate
    // audience — the whole point of consolidation.
    let mut fleet_config = tenant_config(scenario, 0).with_seed(scenario.seed);
    if scenario.autoscale {
        fleet_config =
            fleet_config.with_autoscale(autoscale_policy_for(pool, scenario.viewers * 2));
    }
    if scenario.predictive {
        fleet_config = fleet_config.with_predictive(PredictivePolicy {
            horizon: SimDuration::from_secs(45),
            alpha: 0.5,
            target_utilisation: 0.95,
        });
    }
    let epoch = fleet_config
        .autoscale
        .as_ref()
        .map(|p| p.period)
        .unwrap_or(SimDuration::from_secs(15));

    let mut fleet = TenantFleet::new(&fleet_config, epoch);
    let quota = tenant_quota(scenario.tenants);
    for (i, &audience) in audiences.iter().enumerate() {
        // Twice the steady audience in provisioned gateways, like the
        // single-tenant storms: bursts add real viewers.
        let idx = fleet.add_tenant(&tenant_config(scenario, i), quota, (audience * 2).max(2));
        let spec = ChurnSpec::steady_state(audience, scenario.churn_per_minute)
            .with_rate_profile(scenario.rate_profile(i));
        fleet.session_mut(idx).start_churn(spec, horizon, audience);
    }
    fleet.run_until(horizon);

    let mut acceptance_by_tenant = Vec::with_capacity(m);
    let mut bad_join_rate_by_tenant = Vec::with_capacity(m);
    let mut rejected_by_tenant = Vec::with_capacity(m);
    let mut retries_by_tenant = Vec::with_capacity(m);
    let mut final_population_by_tenant = Vec::with_capacity(m);
    let mut served_mbps_hours_by_tenant = Vec::with_capacity(m);
    let mut population_series = Vec::with_capacity(m);
    for i in 0..m {
        let session = fleet.session(i);
        let metrics = session.metrics();
        acceptance_by_tenant.push(metrics.acceptance_ratio());
        bad_join_rate_by_tenant.push(bad_join_rate(
            metrics.admitted_viewers.value(),
            metrics.rejected_viewers.value(),
        ));
        rejected_by_tenant.push(metrics.rejected_viewers.value());
        retries_by_tenant.push(metrics.join_retries.value());
        final_population_by_tenant.push(session.connected_viewers());
        served_mbps_hours_by_tenant.push(fleet.served_mbps_hours(i));
        population_series.push((
            format!("population_tenant_{i}"),
            metrics
                .population
                .points()
                .iter()
                .map(|&(at, v)| (at.as_secs_f64(), v))
                .collect::<Vec<(f64, f64)>>(),
        ));
    }
    let acceptance_spread = acceptance_by_tenant
        .iter()
        .fold(f64::NEG_INFINITY, |a, &b| a.max(b))
        - acceptance_by_tenant
            .iter()
            .fold(f64::INFINITY, |a, &b| a.min(b));
    let provisioned_mbps_hours = fleet.provisioned_mbps_hours_at(horizon);
    let provisioned_dollars = fleet.provisioned_dollars_at(horizon);

    let per_tenant = |values: &[f64]| -> Vec<(f64, f64)> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64, v))
            .collect()
    };
    let x = scenario.viewers as f64;
    let mut series = Vec::new();
    for (label, points) in &population_series {
        series.push(Series::new(label.clone(), points.clone()));
    }
    series.extend([
        Series::new(
            "audience_by_tenant",
            per_tenant(&audiences.iter().map(|&a| a as f64).collect::<Vec<_>>()),
        ),
        Series::new("acceptance_by_tenant", per_tenant(&acceptance_by_tenant)),
        Series::new(
            "bad_join_rate_by_tenant",
            per_tenant(&bad_join_rate_by_tenant),
        ),
        Series::new(
            "served_mbps_hours_by_tenant",
            per_tenant(&served_mbps_hours_by_tenant),
        ),
        Series::new("acceptance_spread", vec![(x, acceptance_spread)]),
        Series::new("provisioned_mbps_hours", vec![(x, provisioned_mbps_hours)]),
        Series::new("provisioned_dollars", vec![(x, provisioned_dollars)]),
        Series::new("autoscale_ups", vec![(x, fleet.autoscale_ups() as f64)]),
        Series::new("autoscale_downs", vec![(x, fleet.autoscale_downs() as f64)]),
        Series::new(
            "final_population",
            vec![(x, final_population_by_tenant.iter().sum::<usize>() as f64)],
        ),
    ]);

    let figure = FigureData {
        id: "tenant_mix".into(),
        title: format!(
            "Tenant mix: {} tenants sharing {} over a Zipf({}) audience of {} for {} minutes \
             ({}, headline tenant bursts {}×)",
            scenario.tenants,
            pool,
            scenario.zipf,
            scenario.viewers,
            scenario.minutes,
            match (scenario.autoscale, scenario.predictive) {
                (true, true) => "predictive autoscale",
                (true, false) => "reactive autoscale",
                (false, _) => "static pools",
            },
            scenario.spike_multiplier,
        ),
        x_label: "seconds (population series) / tenant index (per-tenant) / viewers (scalars)"
            .into(),
        y_label: "per-metric value".into(),
        series,
    };
    TenantMixOutcome {
        figure,
        audiences,
        acceptance_by_tenant,
        bad_join_rate_by_tenant,
        rejected_by_tenant,
        retries_by_tenant,
        final_population_by_tenant,
        served_mbps_hours_by_tenant,
        acceptance_spread,
        provisioned_mbps_hours,
        provisioned_dollars,
        autoscale_ups: fleet.autoscale_ups(),
        autoscale_downs: fleet.autoscale_downs(),
        mean_abs_forecast_error_mbps: fleet.mean_abs_forecast_error_mbps(),
        forecasts_scored: fleet.forecast_errors().len(),
    }
}

/// Rejected / (admitted + rejected), 0 when nothing was attempted.
pub fn bad_join_rate(admitted: u64, rejected: u64) -> f64 {
    let attempts = admitted + rejected;
    if attempts == 0 {
        0.0
    } else {
        rejected as f64 / attempts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(tenants: u32) -> TenantMixScenario {
        TenantMixScenario {
            viewers: 600,
            tenants,
            zipf: 1.0,
            minutes: 10,
            churn_per_minute: 0.3,
            day_minutes: 10,
            amplitude: 0.5,
            spike_multiplier: 6.0,
            backend: DelayModelChoice::Dense,
            seed: 43,
            pool_mbps: Some(400),
            autoscale: true,
            predictive: true,
        }
    }

    #[test]
    fn zipf_split_conserves_and_orders() {
        let sizes = zipf_split(10_000, 8, 1.0);
        assert_eq!(sizes.iter().sum::<usize>(), 10_000);
        for pair in sizes.windows(2) {
            assert!(pair[0] >= pair[1], "split not non-increasing: {sizes:?}");
        }
        assert!(sizes.iter().all(|&s| s > 0));
        // Degenerate splits stay total-preserving.
        assert_eq!(zipf_split(3, 3, 2.0).iter().sum::<usize>(), 3);
        assert_eq!(zipf_split(100, 1, 1.0), vec![100]);
    }

    #[test]
    fn quotas_never_oversubscribe_floors() {
        for m in 1..=64u32 {
            let q = tenant_quota(m);
            q.validate();
            assert!(
                q.floor_percent * m <= 100,
                "floors oversubscribed at {m} tenants"
            );
        }
        assert_eq!(tenant_quota(1), TenantQuota::FULL);
    }

    #[test]
    fn mix_runs_and_exports_per_tenant_series() {
        let outcome = run_tenant_mix(&small(3));
        assert_eq!(outcome.audiences.len(), 3);
        assert!(outcome.final_population_by_tenant.iter().all(|&p| p > 0));
        assert!(outcome.acceptance_spread >= 0.0);
        assert!(outcome.provisioned_mbps_hours > 0.0);
        let labels: Vec<&str> = outcome
            .figure
            .series
            .iter()
            .map(|s| s.label.as_str())
            .collect();
        for wanted in [
            "population_tenant_0",
            "population_tenant_2",
            "acceptance_by_tenant",
            "bad_join_rate_by_tenant",
            "served_mbps_hours_by_tenant",
            "acceptance_spread",
            "provisioned_mbps_hours",
        ] {
            assert!(labels.contains(&wanted), "missing series {wanted}");
        }
    }

    #[test]
    fn outcome_is_seed_deterministic() {
        let a = run_tenant_mix(&small(3));
        let b = run_tenant_mix(&small(3));
        assert_eq!(a, b);
        assert_eq!(a.figure.to_json(), b.figure.to_json());
    }
}

//! The diurnal-wave elastic-CDN scale scenario.
//!
//! A flash-crowd kickoff (the full population joins at time zero) rolls
//! into several simulated days of sinusoidally-modulated churn: the
//! arrival rate waves between day and night around the steady-state
//! base, so the connected population — and with it the CDN demand —
//! rises and falls. With `--autoscale` the outbound pool tracks the wave
//! (growing per-region edges at the peaks, retiring them in the
//! troughs, billing provisioned Mbps-hours as it goes); without it the
//! starting pool is all there ever is.
//!
//! ```sh
//! cargo run --release -p telecast-bench --bin diurnal_wave -- --autoscale
//! cargo run --release -p telecast-bench --bin diurnal_wave -- \
//!     --viewers 20000 --minutes 10 --pool-mbps 5000 --autoscale
//! ```
//!
//! The compressed "day" defaults to a third of the simulated duration
//! (clamped to [4, 1440] minutes) so any `--minutes` setting covers
//! about three full cycles. All exported metrics are deterministic for a
//! fixed seed: two runs with the same flags write byte-identical
//! `results/diurnal_wave.json`. Only the wall-clock line varies between
//! machines.

use std::time::Instant;

use telecast_bench::{run_diurnal, DiurnalScenario, ScenarioArgs};

fn main() {
    let args = ScenarioArgs::from_env();
    if args.threads.is_some() {
        eprintln!(
            "warning: this scenario runs the legacy single-loop engine; \
             --threads only affects the sharded runtime (see mega_storm)."
        );
    }
    if args.predictive || args.per_region {
        eprintln!(
            "warning: diurnal_wave ignores --predictive/--per-region \
             (reactive autoscaling over the global pool only; \
             see spike_storm for per-region predictive scaling). \
             --predictive's implied --autoscale stays in effect."
        );
    }
    let defaults = DiurnalScenario::default();
    let minutes = args.minutes.unwrap_or(defaults.minutes);
    let scenario = DiurnalScenario {
        viewers: args.viewers.unwrap_or(defaults.viewers),
        minutes,
        churn_per_minute: args
            .churn_pct
            .map(|pct| pct / 100.0)
            .unwrap_or(defaults.churn_per_minute),
        day_minutes: (minutes / 3).clamp(4, 1_440),
        amplitude: defaults.amplitude,
        backend: args.backend.unwrap_or(defaults.backend),
        seed: args.seed.unwrap_or(defaults.seed),
        pool_mbps: args.pool_mbps,
        autoscale: args.autoscale,
    };

    println!(
        "== diurnal wave: {} viewers, {}-minute days over {} simulated minutes (autoscale {}) ==",
        scenario.viewers,
        scenario.day_minutes,
        scenario.minutes,
        if scenario.autoscale { "on" } else { "off" },
    );
    let start = Instant::now();
    let outcome = run_diurnal(&scenario);
    let wall = start.elapsed().as_secs_f64();

    println!("  wall clock           : {wall:.2}s");
    println!("  final population     : {}", outcome.final_population);
    println!("  acceptance ratio ρ   : {:.3}", outcome.acceptance_ratio);
    println!(
        "  scale ups/downs      : {}/{}",
        outcome.autoscale_ups, outcome.autoscale_downs
    );
    println!(
        "  join retries         : {} ({} still parked)",
        outcome.join_retries, outcome.retry_queue_len
    );
    println!(
        "  provisioned bill     : ${:.2} (Mbps-hours at the committed rate)",
        outcome.provisioned_dollars
    );
    telecast_bench::emit_with_wall(&outcome.figure, wall);
}

//! The 10k-viewer flash-crowd scale scenario.
//!
//! The whole audience requests the session at the same instant — a
//! broadcast kickoff — on the O(n) coordinate delay substrate, which is
//! the regime the dense matrix cannot reach (its tables would need
//! ≈ 3.2 GB at this population). The run reports simulator *throughput*
//! (joins processed per wall-clock second) alongside the protocol-cost
//! metrics the paper plots, and exports them through the standard
//! figure/JSON path as `results/flash_crowd.json`.
//!
//! ```sh
//! cargo run --release -p telecast-bench --bin flash_crowd              # 10,000 viewers
//! cargo run --release -p telecast-bench --bin flash_crowd -- 2000      # custom size
//! cargo run --release -p telecast-bench --bin flash_crowd -- \
//!     --viewers 2000 --backend dense --seed 7                          # full flags
//! ```
//!
//! All simulation metrics are deterministic for a fixed seed and viewer
//! count; only the wall-clock throughput line varies between machines.

use std::time::Instant;

use telecast::{DelayModelChoice, SessionConfig, TelecastSession};
use telecast_bench::{FigureData, ScenarioArgs, Series};
use telecast_cdn::CdnConfig;
use telecast_media::{ArrivalModel, ViewChoice, ViewerWorkload};
use telecast_net::{Bandwidth, BandwidthProfile};
use telecast_sim::SimRng;

fn main() {
    let args = ScenarioArgs::from_env();
    if args.threads.is_some() {
        eprintln!(
            "warning: this scenario runs the legacy single-loop engine; \
             --threads only affects the sharded runtime (see mega_storm)."
        );
    }
    if args.minutes.is_some() || args.churn_pct.is_some() {
        eprintln!(
            "warning: flash_crowd ignores --minutes/--churn-pct \
             (the kickoff is instantaneous; see churn_storm for sustained churn)"
        );
    }
    if args.autoscale || args.predictive || args.per_region {
        eprintln!(
            "warning: flash_crowd ignores --autoscale/--predictive/--per-region \
             (the kickoff completes before a scale tick; see churn_storm, \
             diurnal_wave and spike_storm)"
        );
    }
    let viewers = args.viewers.unwrap_or(10_000);
    let backend = args.backend.unwrap_or(DelayModelChoice::Coordinate);

    // Paper defaults, with the CDN pool scaled so admission reflects
    // overlay supply rather than an arbitrarily small pool: the flash
    // front is served from the CDN until the first trees grow slots.
    let pool = Bandwidth::from_mbps(args.pool_mbps.unwrap_or(48_000));
    let config = SessionConfig::default()
        .with_outbound(BandwidthProfile::uniform_mbps(2, 14))
        .with_cdn(CdnConfig::default().with_outbound(pool))
        .with_delay_model(backend)
        .with_seed(args.seed.unwrap_or(1_000 + viewers as u64));

    println!("== flash crowd: {viewers} simultaneous joins ==");
    let build_start = Instant::now();
    let mut session = TelecastSession::builder(config).viewers(viewers).build();
    println!(
        "  session built in {:.2}s ({} delay backend, {} nodes)",
        build_start.elapsed().as_secs_f64(),
        session.delay_backend().kind(),
        session.registry().len(),
    );

    let mut rng = SimRng::seed_from_u64(0xF1A5_4C20);
    let workload = ViewerWorkload::builder(viewers, session.catalog().len())
        .arrivals(ArrivalModel::Flash)
        .view_choice(ViewChoice::Zipf { s: 0.8 })
        .build(&mut rng);

    let run_start = Instant::now();
    session.run_workload(&workload);
    let wall = run_start.elapsed().as_secs_f64();

    let m = session.metrics();
    let admitted = m.admitted_viewers.value();
    let joins_per_sec = viewers as f64 / wall.max(1e-9);
    println!("  wall clock         : {wall:.2}s ({joins_per_sec:.0} joins/sec)");
    println!("  acceptance ratio ρ : {:.3}", m.acceptance_ratio());
    println!("  admitted viewers   : {admitted}");
    println!("  subscription msgs  : {}", m.subscription_messages.value());
    println!("  displacements      : {}", m.displacements.value());
    println!("  peak CDN usage     : {:.1} Mbps", m.peak_cdn_mbps());
    println!(
        "  join delay p50/p99 : {:.0}/{:.0} ms",
        m.join_delays_ms.percentile(50.0).unwrap_or(0.0),
        m.join_delays_ms.percentile(99.0).unwrap_or(0.0),
    );

    let x = viewers as f64;
    let figure = FigureData {
        id: "flash_crowd".into(),
        title: format!("Flash crowd, {viewers} simultaneous joins (coordinate delay model)"),
        x_label: "viewers".into(),
        y_label: "per-metric value".into(),
        series: vec![
            Series::new("acceptance_ratio", vec![(x, m.acceptance_ratio())]),
            Series::new("admitted_viewers", vec![(x, admitted as f64)]),
            Series::new(
                "subscription_messages",
                vec![(x, m.subscription_messages.value() as f64)],
            ),
            Series::new("displacements", vec![(x, m.displacements.value() as f64)]),
            Series::new("peak_cdn_mbps", vec![(x, m.peak_cdn_mbps())]),
            Series::new(
                "join_delay_p99_ms",
                vec![(x, m.join_delays_ms.percentile(99.0).unwrap_or(0.0))],
            ),
        ],
    };
    telecast_bench::emit_with_wall(&figure, wall);
}

//! The 100k-viewer continuous-churn scale scenario.
//!
//! The full population joins at time zero on the O(n) coordinate delay
//! substrate, then a steady-state churn process (Poisson arrivals,
//! lognormal dwell, 10% abrupt failures among the leavers) keeps 1% of
//! the audience per minute flowing through the overlay for a simulated
//! hour. Every join/leave/fail is an engine event interleaved with
//! victim recovery, repositioning, monitoring and adaptation — there are
//! no synchronous batches, and the per-level attach planner keeps every
//! placement free of O(n) tree traversals.
//!
//! ```sh
//! cargo run --release -p telecast-bench --bin churn_storm
//! cargo run --release -p telecast-bench --bin churn_storm -- \
//!     --viewers 20000 --minutes 5 --churn-pct 2 --backend coordinate
//! ```
//!
//! All exported metrics are deterministic for a fixed seed: two runs
//! with the same flags write byte-identical `results/churn_storm.json`.
//! Only the wall-clock lines vary between machines.

use std::time::Instant;

use telecast_bench::{run_churn, ChurnScenario, ScenarioArgs};

fn main() {
    let args = ScenarioArgs::from_env();
    if args.threads.is_some() {
        eprintln!(
            "warning: this scenario runs the legacy single-loop engine; \
             --threads only affects the sharded runtime (see mega_storm)."
        );
    }
    if args.predictive || args.per_region {
        eprintln!(
            "warning: churn_storm ignores --predictive/--per-region \
             (reactive autoscaling over the global pool only; \
             see spike_storm for per-region predictive scaling). \
             --predictive's implied --autoscale stays in effect."
        );
    }
    let defaults = ChurnScenario::default();
    let scenario = ChurnScenario {
        viewers: args.viewers.unwrap_or(defaults.viewers),
        minutes: args.minutes.unwrap_or(defaults.minutes),
        churn_per_minute: args
            .churn_pct
            .map(|pct| pct / 100.0)
            .unwrap_or(defaults.churn_per_minute),
        backend: args.backend.unwrap_or(defaults.backend),
        seed: args.seed.unwrap_or(defaults.seed),
        pool_mbps: args.pool_mbps,
        autoscale: args.autoscale,
    };

    println!(
        "== churn storm: {} viewers, {:.1}%/min for {} simulated minutes ==",
        scenario.viewers,
        scenario.churn_per_minute * 100.0,
        scenario.minutes,
    );
    let start = Instant::now();
    let outcome = run_churn(&scenario);
    let wall = start.elapsed().as_secs_f64();

    let churn_events = outcome.arrivals + outcome.departures + outcome.failures;
    println!(
        "  wall clock         : {wall:.2}s ({:.0} membership events/sec)",
        churn_events as f64 / wall.max(1e-9)
    );
    println!("  final population   : {}", outcome.final_population);
    println!(
        "  arrivals/departs/fails : {}/{}/{}",
        outcome.arrivals, outcome.departures, outcome.failures
    );
    println!(
        "  attach probes/stream   : {:.1}",
        outcome.attach_probes as f64 / outcome.accepted_streams.max(1) as f64
    );
    if scenario.autoscale {
        println!(
            "  autoscale ups/downs    : {}/{} ({} retries, {:.0} Mbps provisioned at horizon)",
            outcome.autoscale_ups,
            outcome.autoscale_downs,
            outcome.join_retries,
            outcome.final_provisioned_mbps,
        );
    }
    telecast_bench::emit_with_wall(&outcome.figure, wall);
}

//! The 1M-viewer sharded continuous-churn scale scenario.
//!
//! The population is split into five per-region shards, each running its
//! own event loop (churn, monitoring, adaptation, autoscaling) on a
//! worker pool; the shards advance in lock-step 10-second epochs, and
//! cross-shard effects — CDN spill into a foreign regional pool,
//! foreign-lease release on departure — merge deterministically in
//! `(time, shard, seq)` order at each barrier.
//!
//! ```sh
//! cargo run --release -p telecast-bench --bin mega_storm
//! cargo run --release -p telecast-bench --bin mega_storm -- \
//!     --viewers 100000 --minutes 10 --threads 4 --epoch-secs 10 --autoscale
//! ```
//!
//! All exported metrics are deterministic for a fixed seed, and
//! `--threads` cannot change them: runs with 1, 2, 4 or 8 threads write
//! byte-identical `results/mega_storm.json`. Only the wall-clock lines
//! (and the per-shard busy/barrier table) vary between runs.

use std::time::Instant;

use telecast_bench::{run_mega, MegaScenario, ScenarioArgs};

fn main() {
    let args = ScenarioArgs::from_env();
    if args.predictive || args.per_region {
        eprintln!(
            "warning: mega_storm ignores --predictive/--per-region \
             (the sharded runtime already runs one reactive autoscaler \
             per regional shard pool). \
             --predictive's implied --autoscale stays in effect."
        );
    }
    let defaults = MegaScenario::default();
    let scenario = MegaScenario {
        viewers: args.viewers.unwrap_or(defaults.viewers),
        minutes: args.minutes.unwrap_or(defaults.minutes),
        churn_per_minute: args
            .churn_pct
            .map(|pct| pct / 100.0)
            .unwrap_or(defaults.churn_per_minute),
        backend: args.backend.unwrap_or(defaults.backend),
        seed: args.seed.unwrap_or(defaults.seed),
        pool_mbps: args.pool_mbps,
        autoscale: args.autoscale,
        threads: args.threads.unwrap_or(defaults.threads),
        epoch_secs: args.epoch_secs.unwrap_or(defaults.epoch_secs),
    };

    println!(
        "== mega storm: {} viewers over 5 shards, {:.1}%/min for {} simulated minutes, {} threads ==",
        scenario.viewers,
        scenario.churn_per_minute * 100.0,
        scenario.minutes,
        scenario.threads,
    );
    let start = Instant::now();
    let outcome = run_mega(&scenario);
    let wall = start.elapsed().as_secs_f64();

    let churn_events = outcome.arrivals + outcome.departures + outcome.failures;
    println!(
        "  wall clock         : {wall:.2}s ({:.0} membership events/sec)",
        churn_events as f64 / wall.max(1e-9)
    );
    println!("  final population   : {}", outcome.final_population);
    println!(
        "  arrivals/departs/fails : {}/{}/{}",
        outcome.arrivals, outcome.departures, outcome.failures
    );
    println!(
        "  spills req/admit/deny  : {}/{}/{} ({} cross-shard messages)",
        outcome.spill_requests,
        outcome.spill_admits,
        outcome.spill_denied,
        outcome.cross_shard_messages,
    );
    println!("  peak event queue   : {}", outcome.peak_event_queue);
    if scenario.autoscale {
        println!(
            "  autoscale ups/downs    : {}/{}",
            outcome.autoscale_ups, outcome.autoscale_downs,
        );
    }
    // Wall-clock per-shard breakdown: observability only, never exported.
    println!("  shard  region         viewers   events     xshard  busy_s  barrier_s   util");
    for (i, s) in outcome.shard_stats.iter().enumerate() {
        println!(
            "  {i:>5}  {:<13} {:>8}  {:>9}  {:>7}  {:>6.2}  {:>9.2}  {:>4.0}%",
            format!("{:?}", s.region),
            s.viewers,
            s.events_processed,
            s.cross_shard_messages,
            s.busy_ns as f64 / 1e9,
            s.barrier_wait_ns as f64 / 1e9,
            s.utilization() * 100.0,
        );
    }
    telecast_bench::emit_with_wall(&outcome.figure, wall);
}

//! The bench-regression CI gate.
//!
//! Compares the scenario results under `results/` against the
//! checked-in `BENCH_baseline.json`: each baselined metric must sit
//! within its relative tolerance of the recorded value, and the run's
//! wall clock (from the gitignored `results/<id>.meta.json` side file)
//! must stay under the scenario's absolute budget. Exits non-zero on
//! any regression, so CI fails the job.
//!
//! ```sh
//! # check one scenario (CI runs this right after the scenario bin):
//! cargo run --release -p telecast-bench --bin bench_gate -- --scenario spike_storm
//! # check everything recorded in the baseline:
//! cargo run --release -p telecast-bench --bin bench_gate
//! # intentional change: re-record values, keep tolerances and budgets:
//! cargo run --release -p telecast-bench --bin bench_gate -- --update
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use telecast_bench::gate;
use telecast_bench::GateBaseline;

struct GateArgs {
    baseline: PathBuf,
    results: PathBuf,
    scenarios: Vec<String>,
    update: bool,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<GateArgs, String> {
    let mut out = GateArgs {
        baseline: PathBuf::from("BENCH_baseline.json"),
        results: PathBuf::from("results"),
        scenarios: Vec::new(),
        update: false,
    };
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => {
                let v = args.next().ok_or("--scenario expects a name")?;
                out.scenarios.push(v);
            }
            "--baseline" => {
                out.baseline = PathBuf::from(args.next().ok_or("--baseline expects a path")?);
            }
            "--results" => {
                out.results = PathBuf::from(args.next().ok_or("--results expects a directory")?);
            }
            "--update" => out.update = true,
            other => {
                return Err(format!(
                    "unknown argument `{other}` (expected --scenario NAME, \
                     --baseline PATH, --results DIR, --update)"
                ))
            }
        }
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let raw = match std::fs::read_to_string(&args.baseline) {
        Ok(raw) => raw,
        Err(err) => {
            eprintln!("error: cannot read {}: {err}", args.baseline.display());
            return ExitCode::from(2);
        }
    };
    let mut baseline = match GateBaseline::from_json(&raw) {
        Ok(doc) => doc,
        Err(msg) => {
            eprintln!("error: {}: {msg}", args.baseline.display());
            return ExitCode::from(2);
        }
    };
    let selected =
        |name: &str| args.scenarios.is_empty() || args.scenarios.iter().any(|s| s == name);
    for wanted in &args.scenarios {
        if baseline.scenario(wanted).is_none() {
            eprintln!(
                "error: scenario `{wanted}` is not in {}",
                args.baseline.display()
            );
            return ExitCode::from(2);
        }
    }

    if args.update {
        for scenario in baseline.scenarios.iter_mut().filter(|s| selected(&s.name)) {
            if let Err(msg) = gate::update_scenario(scenario, &args.results) {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
            println!(
                "re-recorded `{}` from {}",
                scenario.name,
                args.results.display()
            );
        }
        if let Err(err) = std::fs::write(&args.baseline, baseline.to_json()) {
            eprintln!("error: cannot write {}: {err}", args.baseline.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", args.baseline.display());
        return ExitCode::SUCCESS;
    }

    let mut regressions = 0usize;
    for scenario in baseline.scenarios.iter().filter(|s| selected(&s.name)) {
        println!("== bench gate: {} ({}) ==", scenario.name, scenario.args);
        match gate::evaluate_scenario(scenario, &args.results) {
            Ok((report, failures)) => {
                print!("{report}");
                if failures.is_empty() {
                    println!("  PASS\n");
                } else {
                    for f in &failures {
                        eprintln!("  FAIL {f}");
                    }
                    eprintln!();
                    regressions += failures.len();
                }
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        }
    }
    if regressions > 0 {
        eprintln!(
            "bench gate: {regressions} regression(s); re-record intentional changes with --update"
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! The spike-storm predictive-autoscaling scenario.
//!
//! Replayed-highlight bursts (6× and 9× the base arrival rate for a few
//! minutes each) land on a diurnal baseline while the CDN runs split
//! per-region pools. With `--predictive` each regional controller sees
//! the burst one forecast horizon ahead — through the churn rate
//! profile's phase plus an EWMA of its region's observed arrivals — and
//! pre-scales its pool before the first join is rejected; with plain
//! `--autoscale` the reactive utilisation band only reacts once the
//! burst is already rejecting.
//!
//! ```sh
//! cargo run --release -p telecast-bench --bin spike_storm -- --autoscale --predictive
//! cargo run --release -p telecast-bench --bin spike_storm -- \
//!     --viewers 20000 --minutes 30 --pool-mbps 10000 --autoscale   # reactive comparator
//! ```
//!
//! All exported metrics are deterministic for a fixed seed: two runs
//! with the same flags write byte-identical `results/spike_storm.json`.
//! Only the wall-clock line (and the gitignored `.meta.json` side file
//! the bench gate reads) varies between machines.

use std::time::Instant;

use telecast_bench::{run_spike, ScenarioArgs, SpikeScenario};

fn main() {
    let args = ScenarioArgs::from_env();
    if args.threads.is_some() {
        eprintln!(
            "warning: this scenario runs the legacy single-loop engine; \
             --threads only affects the sharded runtime (see mega_storm)."
        );
    }
    let defaults = SpikeScenario::default();
    let minutes = args.minutes.unwrap_or(defaults.minutes);
    let scenario = SpikeScenario {
        viewers: args.viewers.unwrap_or(defaults.viewers),
        minutes,
        churn_per_minute: args
            .churn_pct
            .map(|pct| pct / 100.0)
            .unwrap_or(defaults.churn_per_minute),
        day_minutes: minutes.clamp(4, 1_440),
        amplitude: defaults.amplitude,
        spike_multiplier: defaults.spike_multiplier,
        backend: args.backend.unwrap_or(defaults.backend),
        seed: args.seed.unwrap_or(defaults.seed),
        pool_mbps: args.pool_mbps,
        autoscale: args.autoscale,
        predictive: args.predictive,
        // Per-region pools are the scenario's point; `--per-region` is
        // accepted for symmetry with the other bins but already implied.
        per_region: true,
    };

    println!(
        "== spike storm: {} viewers, {}×/{}× bursts on {}-minute days over {} minutes \
         (per-region pools, {}) ==",
        scenario.viewers,
        scenario.spike_multiplier,
        scenario.spike_multiplier * 1.5,
        scenario.day_minutes,
        scenario.minutes,
        match (scenario.autoscale, scenario.predictive) {
            (true, true) => "predictive autoscale",
            (true, false) => "reactive autoscale",
            (false, _) => "static pools",
        },
    );
    let start = Instant::now();
    let outcome = run_spike(&scenario);
    let wall = start.elapsed().as_secs_f64();

    println!("  wall clock           : {wall:.2}s");
    println!("  final population     : {}", outcome.final_population);
    println!("  acceptance ratio ρ   : {:.3}", outcome.acceptance_ratio);
    println!(
        "  rejected + retried   : {} + {} ({} still parked)",
        outcome.rejected_joins, outcome.join_retries, outcome.retry_queue_len
    );
    println!(
        "  scale ups/downs      : {}/{}",
        outcome.autoscale_ups, outcome.autoscale_downs
    );
    println!(
        "  provisioned          : {:.0} Mbps-hours (${:.2} at the committed rate)",
        outcome.provisioned_mbps_hours, outcome.provisioned_dollars
    );
    telecast_bench::emit_with_wall(&outcome.figure, wall);
}

//! Epoch-length × thread-count sweep over the sharded mega-storm
//! workload.
//!
//! Runs the same deterministic workload at every grid point of
//! `{2, 10, 30}` simulated-second epochs × `{1, 2, 4, ...}` worker
//! threads (powers of two up to `--threads`, default 4) and exports the
//! wall-clock, barrier-utilization, and cross-shard merge-volume series
//! to `results/epoch_sweep.json`.
//!
//! ```sh
//! cargo run --release -p telecast-bench --bin epoch_sweep -- \
//!     --viewers 100000 --minutes 10 --threads 4
//! ```
//!
//! The merge-volume series are deterministic for a fixed seed (and
//! thread-count-independent — the same property the byte-identity tests
//! pin); wall-clock and utilization are machine-local.

use std::time::Instant;

use telecast_bench::{run_epoch_sweep, sweep_figure, ScenarioArgs, SweepScenario};

fn main() {
    let args = ScenarioArgs::from_env();
    if args.predictive || args.per_region || args.autoscale {
        eprintln!(
            "warning: epoch_sweep ignores --autoscale/--predictive/--per-region \
             (every grid point runs the plain sharded mega-storm workload)."
        );
    }
    let defaults = SweepScenario::default();
    let thread_cap = args.threads.unwrap_or(4).max(1);
    let mut threads = vec![1];
    while threads.last().copied().unwrap_or(1) * 2 <= thread_cap {
        threads.push(threads.last().unwrap() * 2);
    }
    let scenario = SweepScenario {
        viewers: args.viewers.unwrap_or(defaults.viewers),
        minutes: args.minutes.unwrap_or(defaults.minutes),
        churn_per_minute: args
            .churn_pct
            .map(|pct| pct / 100.0)
            .unwrap_or(defaults.churn_per_minute),
        backend: args.backend.unwrap_or(defaults.backend),
        seed: args.seed.unwrap_or(defaults.seed),
        epochs_secs: args
            .epoch_secs
            .map(|e| vec![e])
            .unwrap_or(defaults.epochs_secs),
        threads,
    };

    println!(
        "== epoch sweep: {} viewers, {:.1}%/min churn, {} simulated minutes; epochs {:?}s x threads {:?} ==",
        scenario.viewers,
        scenario.churn_per_minute * 100.0,
        scenario.minutes,
        scenario.epochs_secs,
        scenario.threads,
    );
    let start = Instant::now();
    let cells = run_epoch_sweep(&scenario);
    let wall = start.elapsed().as_secs_f64();

    println!("  epoch_s  threads   wall_s  pool_util  min_shard_util  merge_volume");
    for c in &cells {
        println!(
            "  {:>7}  {:>7}  {:>7.2}  {:>8.0}%  {:>13.0}%  {:>12}",
            c.epoch_secs,
            c.threads,
            c.wall_seconds,
            c.barrier_utilization * 100.0,
            c.min_shard_utilization * 100.0,
            c.merge_volume,
        );
    }
    println!(
        "  total wall clock   : {wall:.2}s over {} grid points",
        cells.len()
    );

    let figure = sweep_figure(&scenario, &cells);
    telecast_bench::emit_with_wall(&figure, wall);
}

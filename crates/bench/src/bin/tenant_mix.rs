//! The tenant-mix multi-tenancy scenario.
//!
//! M concurrent broadcasts share the regional CDN pools through one
//! capacity broker: Zipf-split audiences, per-tenant quota floors and
//! ceilings, shared (optionally predictive) autoscalers fed the
//! aggregate demand, and deficit-fair retry arbitration. The headline
//! tenant bursts mid-run; the figure records how far the other
//! tenants' acceptance drifts (the fairness spread) and what the
//! shared pools cost.
//!
//! ```sh
//! cargo run --release -p telecast-bench --bin tenant_mix -- --autoscale --predictive
//! cargo run --release -p telecast-bench --bin tenant_mix -- \
//!     --tenants 8 --viewers 40000 --minutes 10 --autoscale --predictive
//! ```
//!
//! All exported metrics are deterministic for a fixed seed: two runs
//! with the same flags write byte-identical `results/tenant_mix.json`.
//! Only the wall-clock line (and the gitignored `.meta.json` side file
//! the bench gate reads) varies between machines.

use std::time::Instant;

use telecast_bench::{run_tenant_mix, ScenarioArgs, TenantMixScenario};

fn main() {
    let args = ScenarioArgs::from_env();
    if args.threads.is_some() {
        eprintln!(
            "warning: this scenario advances tenants sequentially; \
             --threads only affects the sharded runtime (see mega_storm)."
        );
    }
    let defaults = TenantMixScenario::default();
    let minutes = args.minutes.unwrap_or(defaults.minutes);
    let scenario = TenantMixScenario {
        viewers: args.viewers.unwrap_or(defaults.viewers),
        tenants: args.tenants.unwrap_or(defaults.tenants),
        zipf: args.zipf.unwrap_or(defaults.zipf),
        minutes,
        churn_per_minute: args
            .churn_pct
            .map(|pct| pct / 100.0)
            .unwrap_or(defaults.churn_per_minute),
        day_minutes: minutes.clamp(4, 1_440),
        amplitude: defaults.amplitude,
        spike_multiplier: defaults.spike_multiplier,
        backend: args.backend.unwrap_or(defaults.backend),
        seed: args.seed.unwrap_or(defaults.seed),
        pool_mbps: args.pool_mbps,
        autoscale: args.autoscale,
        predictive: args.predictive,
    };

    println!(
        "== tenant mix: {} tenants over a Zipf({}) audience of {} for {} minutes \
         (shared per-region pools, {}) ==",
        scenario.tenants,
        scenario.zipf,
        scenario.viewers,
        scenario.minutes,
        match (scenario.autoscale, scenario.predictive) {
            (true, true) => "predictive autoscale",
            (true, false) => "reactive autoscale",
            (false, _) => "static pools",
        },
    );
    let start = Instant::now();
    let outcome = run_tenant_mix(&scenario);
    let wall = start.elapsed().as_secs_f64();

    println!("  wall clock           : {wall:.2}s");
    println!("  audiences (Zipf)     : {:?}", outcome.audiences);
    println!(
        "  final populations    : {:?} ({} total)",
        outcome.final_population_by_tenant,
        outcome.final_population_by_tenant.iter().sum::<usize>()
    );
    for i in 0..outcome.audiences.len() {
        println!(
            "  tenant {i:<2}           : ρ {:.3}, bad-join {:.3}, rejected {}, retried {}, \
             served {:.0} Mbps-h{}",
            outcome.acceptance_by_tenant[i],
            outcome.bad_join_rate_by_tenant[i],
            outcome.rejected_by_tenant[i],
            outcome.retries_by_tenant[i],
            outcome.served_mbps_hours_by_tenant[i],
            if i == 0 { "  (burster)" } else { "" },
        );
    }
    println!(
        "  acceptance spread    : {:.4} (max − min ρ across tenants)",
        outcome.acceptance_spread
    );
    println!(
        "  scale ups/downs      : {}/{}",
        outcome.autoscale_ups, outcome.autoscale_downs
    );
    println!(
        "  provisioned          : {:.0} Mbps-hours (${:.2} at the committed rate)",
        outcome.provisioned_mbps_hours, outcome.provisioned_dollars
    );
    match outcome.mean_abs_forecast_error_mbps {
        Some(err) => println!(
            "  forecast error       : {:.1} Mbps mean |forecast − realised| over {} matured forecasts",
            err, outcome.forecasts_scored
        ),
        None => println!("  forecast error       : n/a (no predictive forecasts matured)"),
    }
    telecast_bench::emit_with_wall(&outcome.figure, wall);
}

//! Regenerates every figure of the paper's evaluation plus the ablations,
//! printing each table and exporting `results/*.json`.
//!
//! Run at the paper's scale (default) or quickly with
//! `TELECAST_SCALE=smoke cargo run --release -p telecast-bench --bin reproduce`.

use std::time::Instant;

use telecast_bench::figures;

/// One deferred figure generator, keyed by the name printed with its timing.
type FigureGenerator = fn(telecast_bench::Scale) -> telecast_bench::FigureData;

fn main() {
    let scale = telecast_bench::Scale::from_env();
    println!("# 4D TeleCast reproduction — scale {scale:?}\n");
    // Figures 13(b) and (c) share one sweep; run it once.
    {
        let start = Instant::now();
        let (fig_b, fig_c) = figures::fig13bc_pair(scale);
        let a = figures::fig13a(scale);
        telecast_bench::emit(&a);
        telecast_bench::emit(&fig_b);
        telecast_bench::emit(&fig_c);
        println!(
            "# fig13(a,b,c) took {:.1}s\n",
            start.elapsed().as_secs_f64()
        );
    }
    let figures: Vec<(&str, FigureGenerator)> = vec![
        ("fig14a", figures::fig14a),
        ("fig14b", figures::fig14b),
        ("fig14c", figures::fig14c),
        ("fig15a", figures::fig15a),
        ("fig15b", figures::fig15b),
        ("ablation_outbound", figures::ablation_outbound),
        ("ablation_placement", figures::ablation_placement),
        ("ablation_kappa", figures::ablation_kappa),
        ("ablation_layering", figures::ablation_layering),
    ];
    for (name, generate) in figures {
        let start = Instant::now();
        let figure = generate(scale);
        telecast_bench::emit(&figure);
        println!("# {name} took {:.1}s\n", start.elapsed().as_secs_f64());
    }
}

//! Regenerates Fig14a of the paper. `TELECAST_SCALE=smoke` shrinks the run.

fn main() {
    let scale = telecast_bench::Scale::from_env();
    telecast_bench::emit(&telecast_bench::figures::fig14a(scale));
}

//! The 20k-viewer view-switching-storm scenario.
//!
//! A Zipf-skewed audience spreads over the view catalog during the
//! first simulated minute, then three correlated re-focus storms each
//! pull a configurable fraction of everyone onto one target view inside
//! a five-second window. Every switch tears the viewer out of the old
//! view's trees; the per-view prune pass folds the abandoned fragments
//! back under P2P parents, returns their CDN serves to the pool, and
//! retires fully drained groups. The figure gates switch latency,
//! wasted subtree bandwidth and the acceptance ratio.
//!
//! ```sh
//! cargo run --release -p telecast-bench --bin view_storm
//! cargo run --release -p telecast-bench --bin view_storm -- \
//!     --viewers 20000 --views 8 --zipf-view 1.1 --refocus-pct 40
//! ```
//!
//! All exported metrics are deterministic for a fixed seed: two runs
//! with the same flags write byte-identical `results/view_storm.json`.
//! Only the wall-clock lines vary between machines.

use std::time::Instant;

use telecast_bench::{run_view_storm, ScenarioArgs, ViewStormScenario};

fn main() {
    let args = ScenarioArgs::from_env();
    if args.threads.is_some() {
        eprintln!(
            "warning: this scenario runs the legacy single-loop engine; \
             --threads only affects the sharded runtime (see mega_storm)."
        );
    }
    if args.autoscale || args.predictive || args.per_region {
        eprintln!(
            "warning: view_storm ignores --autoscale/--predictive/--per-region \
             (static global pool only; see spike_storm for elastic scaling)."
        );
    }
    let defaults = ViewStormScenario::default();
    let scenario = ViewStormScenario {
        viewers: args.viewers.unwrap_or(defaults.viewers),
        minutes: args.minutes.unwrap_or(defaults.minutes),
        views: args.views.unwrap_or(defaults.views),
        zipf_view: args.zipf_view.unwrap_or(defaults.zipf_view),
        refocus_fraction: args
            .refocus_pct
            .map(|pct| pct / 100.0)
            .unwrap_or(defaults.refocus_fraction),
        backend: args.backend.unwrap_or(defaults.backend),
        seed: args.seed.unwrap_or(defaults.seed),
        pool_mbps: args.pool_mbps,
        prune_floor: defaults.prune_floor,
    };

    println!(
        "== view storm: {} viewers over {} views (Zipf {}), {:.0}% re-focus, {} simulated minutes ==",
        scenario.viewers,
        scenario.views,
        scenario.zipf_view,
        scenario.refocus_fraction * 100.0,
        scenario.minutes,
    );
    let start = Instant::now();
    let outcome = run_view_storm(&scenario);
    let wall = start.elapsed().as_secs_f64();

    println!(
        "  wall clock         : {wall:.2}s ({:.0} switches/sec)",
        outcome.switches as f64 / wall.max(1e-9)
    );
    println!("  final population   : {}", outcome.final_population);
    println!(
        "  switches (starved) : {} ({})",
        outcome.switches, outcome.switch_starved
    );
    println!("  switch p99         : {:.1} ms", outcome.switch_p99_ms);
    println!(
        "  wasted subtree bw  : {:.3} Mbps-hours",
        outcome.wasted_mbps_hours
    );
    println!(
        "  prune: merged/retired  : {}/{} ({:.0} Mbps reclaimed)",
        outcome.fragments_merged, outcome.groups_retired, outcome.reclaimed_mbps
    );
    println!(
        "  acceptance ratio   : {:.4} (peak CDN {:.0} Mbps)",
        outcome.acceptance_ratio, outcome.peak_cdn_mbps
    );
    telecast_bench::emit_with_wall(&outcome.figure, wall);
}

//! Regenerates the ablation studies DESIGN.md promises: outbound policy,
//! placement strategy, κ sweep, and layering on/off.
//! `TELECAST_SCALE=smoke` shrinks the runs.

use telecast_bench::figures;

fn main() {
    let scale = telecast_bench::Scale::from_env();
    telecast_bench::emit(&figures::ablation_outbound(scale));
    telecast_bench::emit(&figures::ablation_placement(scale));
    telecast_bench::emit(&figures::ablation_kappa(scale));
    telecast_bench::emit(&figures::ablation_layering(scale));
}

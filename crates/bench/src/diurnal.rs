//! The diurnal-wave elastic-CDN scenario: a flash-crowd kickoff into
//! multiple simulated days of sinusoidally-modulated churn, with the
//! outbound pool either statically provisioned or tracking the wave
//! through the autoscaler.
//!
//! The audience model composes the two population dynamics the other
//! scale bins exercise separately: the full population joins at time
//! zero (`flash_crowd`'s kickoff), then a [`ChurnSpec`] whose arrival
//! rate follows a [`RateProfile::diurnal_from_trough`] wave replays day
//! and night over the run. The interesting output is the *provisioned*
//! CDN capacity staircase: a static pool pays for the peak around the
//! clock (or rejects the peak if under-provisioned), while the
//! autoscaled pool follows the audience up and down and bills
//! accordingly in Mbps-hours.
//!
//! Everything the figure reports is a function of the seed alone, so the
//! JSON export is byte-identical across runs and machines.

use telecast::{DelayModelChoice, SessionConfig, TelecastSession};
use telecast_cdn::CdnConfig;
use telecast_media::{ChurnSpec, RateProfile};
use telecast_net::{Bandwidth, BandwidthProfile};
use telecast_sim::{SimDuration, SimTime};

use crate::churn::autoscale_policy_for;
use crate::table::{FigureData, Series};

/// Parameters of one diurnal-wave run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalScenario {
    /// Mean steady-state population (the wave oscillates around it);
    /// also the flash-kickoff prefill size.
    pub viewers: usize,
    /// Simulated duration in minutes.
    pub minutes: u64,
    /// Fraction of the population leaving per minute at the base rate.
    pub churn_per_minute: f64,
    /// Length of one compressed "day" (one full diurnal cycle) in
    /// minutes.
    pub day_minutes: u64,
    /// Diurnal amplitude in `[0, 1]` — the arrival rate swings between
    /// `(1 − a)` and `(1 + a)` times the base rate.
    pub amplitude: f64,
    /// Delay substrate.
    pub backend: DelayModelChoice,
    /// Master seed.
    pub seed: u64,
    /// Starting CDN outbound pool in Mbps; `None` provisions a
    /// deliberately tight `1 Mbps × viewers` (min 1000) so the wave's
    /// peaks exceed it without autoscaling.
    pub pool_mbps: Option<u64>,
    /// Whether the elastic-CDN autoscaler runs.
    pub autoscale: bool,
}

impl Default for DiurnalScenario {
    fn default() -> Self {
        DiurnalScenario {
            viewers: 20_000,
            minutes: 120,
            churn_per_minute: 0.10,
            day_minutes: 40,
            amplitude: 0.8,
            backend: DelayModelChoice::Coordinate,
            seed: 0xD1_0423,
            pool_mbps: None,
            autoscale: true,
        }
    }
}

/// Deterministic outcome of a diurnal-wave run.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalOutcome {
    /// The exported figure (`results/diurnal_wave.json`).
    pub figure: FigureData,
    /// Connected population at the horizon.
    pub final_population: usize,
    /// Stream acceptance ratio ρ at the horizon.
    pub acceptance_ratio: f64,
    /// Autoscale actions that grew the pool.
    pub autoscale_ups: u64,
    /// Autoscale actions that shrank the pool.
    pub autoscale_downs: u64,
    /// Parked CDN-rejected joins retried after scale-ups.
    pub join_retries: u64,
    /// Joins still parked for retry at the horizon.
    pub retry_queue_len: usize,
    /// Provisioned-capacity samples over the run (seconds, Mbps).
    pub provisioned_series: Vec<(f64, f64)>,
    /// Provisioned-capacity bill at the horizon, in dollars
    /// (Mbps-hours × tariff).
    pub provisioned_dollars: f64,
}

/// Runs the scenario. Pure in the seed: equal scenarios produce equal
/// (`==`, and byte-identical JSON) outcomes regardless of host, thread
/// count or repetition.
pub fn run_diurnal(scenario: &DiurnalScenario) -> DiurnalOutcome {
    let pool = Bandwidth::from_mbps(
        scenario
            .pool_mbps
            .unwrap_or((scenario.viewers as u64).max(1_000)),
    );
    let mut config = SessionConfig::default()
        .with_outbound(BandwidthProfile::uniform_mbps(2, 14))
        .with_cdn(CdnConfig::default().with_outbound(pool))
        .with_delay_model(scenario.backend)
        .with_monitor_period(SimDuration::from_secs(10))
        .with_seed(scenario.seed);
    if scenario.autoscale {
        config = config.with_autoscale(autoscale_policy_for(pool, scenario.viewers));
    }

    let mut session = TelecastSession::builder(config)
        .viewers(scenario.viewers)
        .build();
    let horizon = SimTime::from_secs(scenario.minutes * 60);
    let day = SimDuration::from_secs(scenario.day_minutes.max(1) * 60);
    let spec = ChurnSpec::steady_state(scenario.viewers, scenario.churn_per_minute)
        .with_rate_profile(RateProfile::diurnal_from_trough(day, scenario.amplitude));
    session.start_churn(spec, horizon, scenario.viewers);
    session.run_until(horizon);

    let m = session.metrics();
    let x = scenario.viewers as f64;
    let to_xy = |points: &[(SimTime, f64)]| -> Vec<(f64, f64)> {
        points
            .iter()
            .map(|&(at, v)| (at.as_secs_f64(), v))
            .collect()
    };
    let population_series = to_xy(m.population.points());
    let provisioned_series = to_xy(m.provisioned_cdn_mbps.points());
    let utilisation_series = to_xy(m.cdn_utilisation.points());
    let provisioned_dollars = session.cdn().provisioned_meter().dollars_at(horizon);
    let figure = FigureData {
        id: "diurnal_wave".into(),
        title: format!(
            "Diurnal wave: {} viewers, {:.0}% amplitude over {}-minute days for {} minutes \
             ({} pool, autoscale {})",
            scenario.viewers,
            scenario.amplitude * 100.0,
            scenario.day_minutes,
            scenario.minutes,
            pool,
            if scenario.autoscale { "on" } else { "off" },
        ),
        x_label: "seconds (series) / viewers (scalars)".into(),
        y_label: "per-metric value".into(),
        series: vec![
            Series::new("population_over_time", population_series),
            Series::new("provisioned_mbps_over_time", provisioned_series.clone()),
            Series::new("utilisation_over_time", utilisation_series),
            Series::new("acceptance_ratio", vec![(x, m.acceptance_ratio())]),
            Series::new(
                "final_population",
                vec![(x, session.connected_viewers() as f64)],
            ),
            Series::new("churn_arrivals", vec![(x, m.churn_arrivals.value() as f64)]),
            Series::new(
                "churn_departures",
                vec![(x, m.churn_departures.value() as f64)],
            ),
            Series::new("peak_cdn_mbps", vec![(x, m.peak_cdn_mbps())]),
            Series::new(
                "peak_provisioned_mbps",
                vec![(x, m.provisioned_cdn_mbps.peak())],
            ),
            Series::new("autoscale_ups", vec![(x, m.autoscale_ups.value() as f64)]),
            Series::new(
                "autoscale_downs",
                vec![(x, m.autoscale_downs.value() as f64)],
            ),
            Series::new("join_retries", vec![(x, m.join_retries.value() as f64)]),
            Series::new("provisioned_dollars", vec![(x, provisioned_dollars)]),
        ],
    };
    DiurnalOutcome {
        final_population: session.connected_viewers(),
        acceptance_ratio: m.acceptance_ratio(),
        autoscale_ups: m.autoscale_ups.value(),
        autoscale_downs: m.autoscale_downs.value(),
        join_retries: m.join_retries.value(),
        retry_queue_len: session.retry_queue_len(),
        provisioned_series,
        provisioned_dollars,
        figure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DiurnalScenario {
        DiurnalScenario {
            viewers: 300,
            minutes: 30,
            churn_per_minute: 0.3,
            day_minutes: 10,
            amplitude: 0.9,
            backend: DelayModelChoice::Dense,
            seed: 17,
            pool_mbps: Some(150),
            autoscale: true,
        }
    }

    #[test]
    fn wave_sustains_an_audience_and_scales_the_pool() {
        let outcome = run_diurnal(&small());
        assert!(outcome.final_population > 0, "audience collapsed");
        assert!(
            outcome.autoscale_ups > 0,
            "a 150 Mbps pool under a 300-viewer kickoff never scaled up"
        );
        assert!(
            outcome.provisioned_series.iter().any(|&(_, v)| v > 150.0),
            "provisioned capacity never rose above the starting pool"
        );
        assert!(outcome.provisioned_dollars > 0.0);
    }

    #[test]
    fn outcome_is_seed_deterministic() {
        let a = run_diurnal(&small());
        let b = run_diurnal(&small());
        assert_eq!(a, b);
        let c = run_diurnal(&DiurnalScenario {
            seed: 18,
            ..small()
        });
        assert_ne!(a.figure.to_json(), c.figure.to_json());
    }
}

//! Figure data containers, table printing, and JSON export.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::json::{self, JsonValue};

/// One plotted curve: a label plus `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label, e.g. `Cobw=6Mbps` or `TeleCast`.
    pub label: String,
    /// The curve's points in ascending x.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The y value at the given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }
}

/// Everything needed to regenerate one figure of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureData {
    /// Figure identifier, e.g. `fig13a`.
    pub id: String,
    /// Human title matching the paper's caption.
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// The plotted curves.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Renders the figure as an aligned text table (x column + one column
    /// per series), the form the `fig*` binaries print.
    pub fn to_table(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("x is never NaN"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = writeln!(out, "# y: {}", self.y_label);
        let width = 14usize;
        let _ = write!(out, "{:>width$}", self.x_label);
        for s in &self.series {
            let _ = write!(out, "{:>width$}", truncate(&s.label, width - 1));
        }
        let _ = writeln!(out);
        for &x in &xs {
            let _ = write!(out, "{:>width$}", format_num(x));
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, "{:>width$}", format_num(y));
                    }
                    None => {
                        let _ = write!(out, "{:>width$}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Serialises the figure to pretty JSON.
    ///
    /// The document is written by hand (see [`crate::json`]); numbers use
    /// the shortest round-trip-exact form, so [`FigureData::from_json`]
    /// reconstructs the figure bit for bit.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        for (i, (key, value)) in [
            ("id", &self.id),
            ("title", &self.title),
            ("x_label", &self.x_label),
            ("y_label", &self.y_label),
        ]
        .into_iter()
        .enumerate()
        {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("  ");
            json::write_escaped(&mut out, key);
            out.push_str(": ");
            json::write_escaped(&mut out, value);
        }
        out.push_str(",\n  \"series\": [");
        for (i, series) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n      \"label\": ");
            json::write_escaped(&mut out, &series.label);
            out.push_str(",\n      \"points\": [");
            for (j, &(x, y)) in series.points.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push('[');
                json::write_number(&mut out, x);
                out.push_str(", ");
                json::write_number(&mut out, y);
                out.push(']');
            }
            out.push_str("]\n    }");
        }
        if !self.series.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }

    /// Parses a document produced by [`FigureData::to_json`].
    ///
    /// # Errors
    ///
    /// Returns an error naming the malformed or missing element.
    pub fn from_json(input: &str) -> Result<FigureData, String> {
        let doc = json::parse(input).map_err(|e| e.to_string())?;
        let field = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{key}`"))
        };
        let mut series = Vec::new();
        for (i, entry) in doc
            .get("series")
            .and_then(JsonValue::as_array)
            .ok_or("missing array field `series`")?
            .iter()
            .enumerate()
        {
            let label = entry
                .get("label")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("series {i}: missing `label`"))?;
            let mut points = Vec::new();
            for point in entry
                .get("points")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| format!("series {i}: missing `points`"))?
            {
                match point.as_array() {
                    Some([x, y]) => match (x.as_f64(), y.as_f64()) {
                        (Some(x), Some(y)) => points.push((x, y)),
                        _ => return Err(format!("series {i}: non-numeric point")),
                    },
                    _ => return Err(format!("series {i}: point is not an [x, y] pair")),
                }
            }
            series.push(Series::new(label, points));
        }
        Ok(FigureData {
            id: field("id")?,
            title: field("title")?,
            x_label: field("x_label")?,
            y_label: field("y_label")?,
            series,
        })
    }

    /// Writes `<dir>/<id>.json`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating the directory or file.
    pub fn write_json(&self, dir: impl AsRef<Path>) -> std::io::Result<()> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{}.json", self.id)), self.to_json())
    }
}

/// Shortens a label to at most `max` characters, appending `…` when cut.
/// Operates on char boundaries, so multi-byte labels never split.
fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let keep: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{keep}…")
    }
}

fn format_num(v: f64) -> String {
    if (v.fract()).abs() < 1e-9 && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure() -> FigureData {
        FigureData {
            id: "fig0".into(),
            title: "test figure".into(),
            x_label: "viewers".into(),
            y_label: "ratio".into(),
            series: vec![
                Series::new("a", vec![(100.0, 0.5), (200.0, 0.75)]),
                Series::new("b", vec![(100.0, 1.0)]),
            ],
        }
    }

    #[test]
    fn table_aligns_and_fills_gaps() {
        let t = figure().to_table();
        assert!(t.contains("fig0"));
        assert!(t.contains("viewers"));
        assert!(t.contains("0.75"));
        // Missing point of series b at x=200 shows as '-'.
        let last = t.lines().last().unwrap();
        assert!(last.trim_end().ends_with('-'), "line was: {last}");
    }

    #[test]
    fn json_round_trips() {
        let f = figure();
        let parsed = FigureData::from_json(&f.to_json()).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn json_round_trips_non_ascii_and_empty_series() {
        let f = FigureData {
            id: "fig≤".into(),
            title: "τ — \"quoted\"\nmultiline".into(),
            x_label: "β".into(),
            y_label: "ρ".into(),
            series: vec![
                Series::new("Cobw≤6Mbps", vec![(0.1, -2.5)]),
                Series::new("∅", vec![]),
            ],
        };
        let parsed = FigureData::from_json(&f.to_json()).unwrap();
        assert_eq!(parsed, f);
        let none = FigureData {
            series: vec![],
            ..f
        };
        assert_eq!(FigureData::from_json(&none.to_json()).unwrap(), none);
    }

    #[test]
    fn from_json_reports_malformed_documents() {
        assert!(FigureData::from_json("{").is_err());
        assert!(FigureData::from_json("{}").is_err());
        assert!(FigureData::from_json(
            r#"{"id":"a","title":"b","x_label":"c","y_label":"d","series":[{"label":"s","points":[[1.0]]}]}"#
        )
        .is_err());
    }

    #[test]
    fn write_json_creates_results_dir_and_round_trips() {
        // Exercise the `results/` auto-creation path `emit` relies on:
        // point write_json at a tempdir subdirectory that does not exist.
        let dir = std::env::temp_dir().join(format!(
            "telecast-table-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let nested = dir.join("results");
        let _ = fs::remove_dir_all(&dir);
        assert!(!nested.exists());

        let f = figure();
        f.write_json(&nested).unwrap();
        let raw = fs::read_to_string(nested.join("fig0.json")).unwrap();
        assert_eq!(FigureData::from_json(&raw).unwrap(), f);

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_is_char_boundary_safe() {
        // A multi-byte label used to panic on the old byte-index slice.
        assert_eq!(truncate("Cobw≤6Mbps—Ω", 8), "Cobw≤6M…");
        assert_eq!(truncate("ασβγ", 8), "ασβγ");
        assert_eq!(truncate("日本語のラベル", 4), "日本語…");
        assert_eq!(truncate("ascii-label-that-is-long", 8), "ascii-l…");
    }

    #[test]
    fn y_at_finds_points() {
        let f = figure();
        assert_eq!(f.series[0].y_at(200.0), Some(0.75));
        assert_eq!(f.series[1].y_at(200.0), None);
    }

    #[test]
    fn integers_print_clean() {
        assert_eq!(format_num(1000.0), "1000");
        assert_eq!(format_num(0.55), "0.550");
    }
}

//! Figure data containers, table printing, and JSON export.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};

/// One plotted curve: a label plus `(x, y)` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label, e.g. `Cobw=6Mbps` or `TeleCast`.
    pub label: String,
    /// The curve's points in ascending x.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The y value at the given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }
}

/// Everything needed to regenerate one figure of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureData {
    /// Figure identifier, e.g. `fig13a`.
    pub id: String,
    /// Human title matching the paper's caption.
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// The plotted curves.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Renders the figure as an aligned text table (x column + one column
    /// per series), the form the `fig*` binaries print.
    pub fn to_table(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("x is never NaN"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = writeln!(out, "# y: {}", self.y_label);
        let width = 14usize;
        let _ = write!(out, "{:>width$}", self.x_label);
        for s in &self.series {
            let _ = write!(out, "{:>width$}", truncate(&s.label, width - 1));
        }
        let _ = writeln!(out);
        for &x in &xs {
            let _ = write!(out, "{:>width$}", format_num(x));
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, "{:>width$}", format_num(y));
                    }
                    None => {
                        let _ = write!(out, "{:>width$}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Serialises the figure to pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics if serialisation fails (it cannot for this type).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("FigureData serialises")
    }

    /// Writes `<dir>/<id>.json`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating the directory or file.
    pub fn write_json(&self, dir: impl AsRef<Path>) -> std::io::Result<()> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{}.json", self.id)), self.to_json())
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}…", &s[..max.saturating_sub(1)])
    }
}

fn format_num(v: f64) -> String {
    if (v.fract()).abs() < 1e-9 && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure() -> FigureData {
        FigureData {
            id: "fig0".into(),
            title: "test figure".into(),
            x_label: "viewers".into(),
            y_label: "ratio".into(),
            series: vec![
                Series::new("a", vec![(100.0, 0.5), (200.0, 0.75)]),
                Series::new("b", vec![(100.0, 1.0)]),
            ],
        }
    }

    #[test]
    fn table_aligns_and_fills_gaps() {
        let t = figure().to_table();
        assert!(t.contains("fig0"));
        assert!(t.contains("viewers"));
        assert!(t.contains("0.75"));
        // Missing point of series b at x=200 shows as '-'.
        let last = t.lines().last().unwrap();
        assert!(last.trim_end().ends_with('-'), "line was: {last}");
    }

    #[test]
    fn json_round_trips() {
        let f = figure();
        let parsed: FigureData = serde_json::from_str(&f.to_json()).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn y_at_finds_points() {
        let f = figure();
        assert_eq!(f.series[0].y_at(200.0), Some(0.75));
        assert_eq!(f.series[1].y_at(200.0), None);
    }

    #[test]
    fn integers_print_clean() {
        assert_eq!(format_num(1000.0), "1000");
        assert_eq!(format_num(0.55), "0.550");
    }
}

//! The epoch-length × worker-count sweep over the sharded mega-storm
//! workload.
//!
//! The barrier period is the sharded runtime's central trade-off: short
//! epochs tighten cross-shard spill latency but pay the barrier (and its
//! imbalance) more often, long epochs amortise the barrier but batch the
//! merge. This sweep runs the same mega-storm workload at every
//! `(epoch length, threads)` grid point and exports, per epoch length,
//! the wall-clock, pool barrier-utilization, and cross-shard
//! merge-volume series over the thread counts — making the
//! merge-latency/parallelism frontier a committed artifact
//! (`results/epoch_sweep.json`).
//!
//! Merge volume is deterministic per `(seed, epoch length)` and
//! thread-count-independent, which is what the bench gate pins; the
//! wall-clock and utilization series are machine-local measurements.

use std::time::Instant;

use crate::mega::{run_mega, MegaScenario};
use crate::table::{FigureData, Series};
use telecast::DelayModelChoice;

/// Parameters of one epoch sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepScenario {
    /// Target steady-state population per grid point.
    pub viewers: usize,
    /// Simulated minutes per grid point.
    pub minutes: u64,
    /// Fraction of the population churning per minute.
    pub churn_per_minute: f64,
    /// Delay substrate shared by every grid point.
    pub backend: DelayModelChoice,
    /// Master seed shared by every grid point.
    pub seed: u64,
    /// Barrier periods to sweep, in simulated seconds.
    pub epochs_secs: Vec<u64>,
    /// Worker counts to sweep.
    pub threads: Vec<usize>,
}

impl Default for SweepScenario {
    fn default() -> Self {
        SweepScenario {
            viewers: 100_000,
            minutes: 10,
            churn_per_minute: 0.01,
            backend: DelayModelChoice::Coordinate,
            seed: MegaScenario::default().seed,
            epochs_secs: vec![2, 10, 30],
            threads: vec![1, 2, 4],
        }
    }
}

/// One measured grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepCell {
    /// Barrier period in simulated seconds.
    pub epoch_secs: u64,
    /// Worker threads the five shards were mapped onto.
    pub threads: usize,
    /// Wall-clock seconds of the run (machine-local).
    pub wall_seconds: f64,
    /// Pool barrier utilization: total shard busy time over total shard
    /// epoch wall (busy + barrier wait), across all shards. 1.0 means no
    /// shard ever idled at a barrier (machine-local).
    pub barrier_utilization: f64,
    /// Utilization of the single most barrier-bound shard — the ~85%
    /// idle Oceania number the worker pool exists to shrink
    /// (machine-local).
    pub min_shard_utilization: f64,
    /// Cross-shard messages merged over the run. Deterministic per
    /// `(seed, epoch_secs)` and independent of `threads`.
    pub merge_volume: u64,
}

/// Runs every grid point sequentially (each point parallelises
/// internally over its own shard pool) and returns the cells in
/// epoch-major, thread-minor order.
pub fn run_epoch_sweep(scenario: &SweepScenario) -> Vec<SweepCell> {
    let mut cells = Vec::with_capacity(scenario.epochs_secs.len() * scenario.threads.len());
    for &epoch_secs in &scenario.epochs_secs {
        for &threads in &scenario.threads {
            let mega = MegaScenario {
                viewers: scenario.viewers,
                minutes: scenario.minutes,
                churn_per_minute: scenario.churn_per_minute,
                backend: scenario.backend,
                seed: scenario.seed,
                threads,
                epoch_secs,
                ..MegaScenario::default()
            };
            let started = Instant::now();
            let outcome = run_mega(&mega);
            let wall_seconds = started.elapsed().as_secs_f64();
            let busy: u64 = outcome.shard_stats.iter().map(|s| s.busy_ns).sum();
            let wall: u64 = outcome
                .shard_stats
                .iter()
                .map(|s| s.busy_ns + s.barrier_wait_ns)
                .sum();
            let barrier_utilization = if wall == 0 {
                0.0
            } else {
                busy as f64 / wall as f64
            };
            let min_shard_utilization = outcome
                .shard_stats
                .iter()
                .map(|s| s.utilization())
                .fold(f64::INFINITY, f64::min)
                .min(1.0);
            cells.push(SweepCell {
                epoch_secs,
                threads,
                wall_seconds,
                barrier_utilization,
                min_shard_utilization,
                merge_volume: outcome.cross_shard_messages,
            });
        }
    }
    cells
}

/// Collapses the sweep cells into the exported figure: per epoch length,
/// one wall-clock, one barrier-utilization, and one merge-volume series
/// over the swept thread counts (x = threads).
pub fn sweep_figure(scenario: &SweepScenario, cells: &[SweepCell]) -> FigureData {
    let mut series = Vec::new();
    for &epoch_secs in &scenario.epochs_secs {
        let of_epoch = |f: &dyn Fn(&SweepCell) -> f64| -> Vec<(f64, f64)> {
            cells
                .iter()
                .filter(|c| c.epoch_secs == epoch_secs)
                .map(|c| (c.threads as f64, f(c)))
                .collect()
        };
        series.push(Series::new(
            format!("wall_seconds_e{epoch_secs}s"),
            of_epoch(&|c| c.wall_seconds),
        ));
        series.push(Series::new(
            format!("barrier_utilization_e{epoch_secs}s"),
            of_epoch(&|c| c.barrier_utilization),
        ));
        series.push(Series::new(
            format!("min_shard_utilization_e{epoch_secs}s"),
            of_epoch(&|c| c.min_shard_utilization),
        ));
        series.push(Series::new(
            format!("merge_volume_e{epoch_secs}s"),
            of_epoch(&|c| c.merge_volume as f64),
        ));
    }
    FigureData {
        id: "epoch_sweep".into(),
        title: format!(
            "Epoch sweep: {} viewers, {:.1}%/min churn, {} simulated minutes; epochs {:?}s × threads {:?} ({:?} backend)",
            scenario.viewers,
            scenario.churn_per_minute * 100.0,
            scenario.minutes,
            scenario.epochs_secs,
            scenario.threads,
            scenario.backend,
        ),
        x_label: "worker threads".into(),
        y_label: "seconds (wall) / ratio (utilization) / messages (merge volume)".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SweepScenario {
        SweepScenario {
            viewers: 600,
            minutes: 2,
            churn_per_minute: 0.1,
            backend: DelayModelChoice::Dense,
            seed: 11,
            epochs_secs: vec![5, 30],
            threads: vec![1, 2],
        }
    }

    #[test]
    fn sweep_covers_the_grid_in_epoch_major_order() {
        let scenario = small();
        let cells = run_epoch_sweep(&scenario);
        let grid: Vec<(u64, usize)> = cells.iter().map(|c| (c.epoch_secs, c.threads)).collect();
        assert_eq!(grid, vec![(5, 1), (5, 2), (30, 1), (30, 2)]);
        for c in &cells {
            assert!(c.wall_seconds > 0.0);
            assert!((0.0..=1.0).contains(&c.barrier_utilization), "{c:?}");
            assert!(c.min_shard_utilization <= c.barrier_utilization + 1e-9);
        }
    }

    #[test]
    fn merge_volume_is_thread_independent_but_epoch_dependent() {
        let cells = run_epoch_sweep(&small());
        // Same epoch, different threads: identical (determinism).
        assert_eq!(cells[0].merge_volume, cells[1].merge_volume);
        assert_eq!(cells[2].merge_volume, cells[3].merge_volume);
    }

    #[test]
    fn figure_carries_one_series_set_per_epoch_length() {
        let scenario = small();
        let cells = run_epoch_sweep(&scenario);
        let figure = sweep_figure(&scenario, &cells);
        let labels: Vec<&str> = figure.series.iter().map(|s| s.label.as_str()).collect();
        for e in [5, 30] {
            for stem in [
                "wall_seconds",
                "barrier_utilization",
                "min_shard_utilization",
                "merge_volume",
            ] {
                let label = format!("{stem}_e{e}s");
                assert!(labels.contains(&label.as_str()), "missing {label}");
            }
        }
        // Each series has one point per swept thread count, x = threads.
        for s in &figure.series {
            let xs: Vec<f64> = s.points.iter().map(|&(x, _)| x).collect();
            assert_eq!(xs, vec![1.0, 2.0], "{}", s.label);
        }
    }
}

//! One generator per figure of the paper's evaluation (§VII), plus the
//! ablations DESIGN.md promises.
//!
//! Every generator returns a [`FigureData`] whose series mirror the
//! paper's plotted curves; absolute magnitudes depend on the synthetic
//! substrates (see `EXPERIMENTS.md`), but the comparative shape — who
//! wins, by how much, where curves flatten — is the reproduction target.

use telecast::{OutboundPolicy, PlacementStrategy, SessionConfig};
use telecast_baselines::{no_layering, random_dissemination};
use telecast_cdn::CdnConfig;
use telecast_net::{Bandwidth, BandwidthProfile};
use telecast_sim::SimDuration;

use crate::harness::{cdf_points, parallel_map, run_scenario, Scenario};
use crate::table::{FigureData, Series};

/// Experiment scale: the paper's full population or a fast smoke size
/// (used by `cargo bench` and CI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced population (≤ 200 viewers) — seconds per figure.
    Smoke,
    /// The paper's population (up to 1000 viewers).
    Paper,
}

impl Scale {
    /// Reads `TELECAST_SCALE` (`paper` or `smoke`; default `paper` for
    /// the binaries).
    pub fn from_env() -> Self {
        match std::env::var("TELECAST_SCALE").as_deref() {
            Ok("smoke") => Scale::Smoke,
            _ => Scale::Paper,
        }
    }

    /// The viewer-count sweep of Figures 13 and 15(b).
    pub fn viewer_counts(self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![10, 50, 100, 150, 200],
            Scale::Paper => vec![10, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000],
        }
    }

    /// The largest population (Fig. 14 and 15(a) run at this size).
    pub fn max_viewers(self) -> usize {
        *self.viewer_counts().last().expect("non-empty sweep")
    }

    /// The bounded CDN pool: the paper provisions 6000 Mbps for 1000
    /// viewers; the same 6 Mbps/viewer ratio keeps the shape at smoke
    /// scale.
    pub fn cdn_cap(self) -> Bandwidth {
        Bandwidth::from_mbps(6 * self.max_viewers() as u64)
    }
}

fn base_config(seed: u64) -> SessionConfig {
    SessionConfig::default().with_seed(seed)
}

/// The outbound profiles of Fig. 13(a): three fixed, three uniform.
fn fig13a_profiles() -> Vec<BandwidthProfile> {
    vec![
        BandwidthProfile::fixed_mbps(0),
        BandwidthProfile::fixed_mbps(6),
        BandwidthProfile::fixed_mbps(10),
        BandwidthProfile::uniform_mbps(0, 12),
        BandwidthProfile::uniform_mbps(2, 10),
        BandwidthProfile::uniform_mbps(4, 14),
    ]
}

/// The wider profile set of Fig. 13(b)/(c).
fn fig13bc_profiles() -> Vec<BandwidthProfile> {
    vec![
        BandwidthProfile::fixed_mbps(0),
        BandwidthProfile::fixed_mbps(2),
        BandwidthProfile::fixed_mbps(4),
        BandwidthProfile::fixed_mbps(6),
        BandwidthProfile::fixed_mbps(8),
        BandwidthProfile::fixed_mbps(10),
        BandwidthProfile::uniform_mbps(0, 12),
        BandwidthProfile::uniform_mbps(2, 10),
        BandwidthProfile::uniform_mbps(4, 14),
    ]
}

/// **Figure 13(a)** — CDN bandwidth required to accept every request
/// (ρ = 1, unbounded pool) vs number of viewers, per outbound profile.
pub fn fig13a(scale: Scale) -> FigureData {
    let counts = scale.viewer_counts();
    let profiles = fig13a_profiles();
    let jobs: Vec<(BandwidthProfile, usize)> = profiles
        .iter()
        .flat_map(|&p| counts.iter().map(move |&n| (p, n)))
        .collect();
    let results = parallel_map(jobs.clone(), |(profile, n)| {
        let config = base_config(100 + n as u64)
            .with_outbound(profile)
            .with_cdn(CdnConfig::unbounded());
        run_scenario(&Scenario::evaluation(config, n)).peak_cdn_mbps
    });
    let series = profiles
        .iter()
        .map(|&p| {
            let points = jobs
                .iter()
                .zip(results.iter())
                .filter(|((jp, _), _)| *jp == p)
                .map(|(&(_, n), &mbps)| (n as f64, mbps))
                .collect();
            Series::new(format!("Cobw={p}"), points)
        })
        .collect();
    FigureData {
        id: "fig13a".into(),
        title: "CDN bandwidth required for acceptance ratio 1".into(),
        x_label: "viewers".into(),
        y_label: "CDN bandwidth (Mbps)".into(),
        series,
    }
}

/// **Figure 13(b)** — fraction of accepted streams served by the CDN vs
/// number of viewers, CDN pool bounded at 6 Mbps per provisioned viewer.
pub fn fig13b(scale: Scale) -> FigureData {
    fig13bc_pair(scale).0
}

/// **Figure 13(c)** — acceptance ratio ρ vs number of viewers, CDN pool
/// bounded.
pub fn fig13c(scale: Scale) -> FigureData {
    fig13bc_pair(scale).1
}

/// Figures 13(b) and 13(c) share one parameter sweep; this runs it once
/// and produces both.
pub fn fig13bc_pair(scale: Scale) -> (FigureData, FigureData) {
    let counts = scale.viewer_counts();
    let profiles = fig13bc_profiles();
    let cap = scale.cdn_cap();
    let jobs: Vec<(BandwidthProfile, usize)> = profiles
        .iter()
        .flat_map(|&p| counts.iter().map(move |&n| (p, n)))
        .collect();
    let results = parallel_map(jobs.clone(), move |(profile, n)| {
        let config = base_config(200 + n as u64)
            .with_outbound(profile)
            .with_cdn(CdnConfig::default().with_outbound(cap));
        let r = run_scenario(&Scenario::evaluation(config, n));
        (r.cdn_fraction, r.acceptance_ratio)
    });
    let series = |acceptance: bool| {
        profiles
            .iter()
            .map(|&p| {
                let points = jobs
                    .iter()
                    .zip(results.iter())
                    .filter(|((jp, _), _)| *jp == p)
                    .map(|(&(_, n), &(frac, acc))| (n as f64, if acceptance { acc } else { frac }))
                    .collect();
                Series::new(format!("Cobw={p}"), points)
            })
            .collect()
    };
    (
        FigureData {
            id: "fig13b".into(),
            title: "Fraction of requests served by CDN (capacity bounded)".into(),
            x_label: "viewers".into(),
            y_label: "fraction served by CDN".into(),
            series: series(false),
        },
        FigureData {
            id: "fig13c".into(),
            title: "Request acceptance ratio (CDN capacity bounded)".into(),
            x_label: "viewers".into(),
            y_label: "acceptance ratio".into(),
            series: series(true),
        },
    )
}

fn fig14_scenario(scale: Scale, view_changes: f64) -> Scenario {
    let config = base_config(300)
        .with_outbound(BandwidthProfile::uniform_mbps(0, 12))
        .with_cdn(CdnConfig::default().with_outbound(scale.cdn_cap()));
    Scenario::evaluation(config, scale.max_viewers()).with_view_changes(view_changes)
}

/// **Figure 14(a)** — distribution (CDF) of the maximum delay layer of
/// the accepted streams at each viewer; `Cobw ~ U(0, 12)` Mbps.
pub fn fig14a(scale: Scale) -> FigureData {
    let result = run_scenario(&fig14_scenario(scale, 0.0));
    let layers: Vec<f64> = result.layers.iter().map(|&l| l as f64).collect();
    FigureData {
        id: "fig14a".into(),
        title: "Distribution of delay layers of accepted streams".into(),
        x_label: "max layer".into(),
        y_label: "fraction of viewers".into(),
        series: vec![Series::new("viewers", cdf_points(&layers))],
    }
}

/// **Figure 14(b)** — CDF of the number of accepted streams per viewer
/// (0 = rejected), CDN pool bounded.
pub fn fig14b(scale: Scale) -> FigureData {
    let result = run_scenario(&fig14_scenario(scale, 0.0));
    let counts: Vec<f64> = result
        .streams_per_viewer
        .iter()
        .map(|&c| c as f64)
        .collect();
    FigureData {
        id: "fig14b".into(),
        title: "Number of streams a viewer receives".into(),
        x_label: "streams received".into(),
        y_label: "fraction of viewers".into(),
        series: vec![Series::new("viewers", cdf_points(&counts))],
    }
}

/// **Figure 14(c)** — CDFs of viewer join delay and view-change delay.
pub fn fig14c(scale: Scale) -> FigureData {
    let result = run_scenario(&fig14_scenario(scale, 0.5));
    FigureData {
        id: "fig14c".into(),
        title: "4D TeleCast overhead: join and view change delay".into(),
        x_label: "delay (ms)".into(),
        y_label: "fraction of operations".into(),
        series: vec![
            Series::new("viewer join", cdf_points(&result.join_delays_ms)),
            Series::new("view change", cdf_points(&result.view_change_delays_ms)),
        ],
    }
}

/// **Figure 15(a)** — acceptance ratio vs per-viewer outbound bandwidth
/// (0–10 Mbps), TeleCast vs Random, at the full population.
pub fn fig15a(scale: Scale) -> FigureData {
    let n = scale.max_viewers();
    let cap = scale.cdn_cap();
    let mbps_steps: Vec<u64> = (0..=10).collect();
    let jobs: Vec<(bool, u64)> = [false, true]
        .iter()
        .flat_map(|&rnd| mbps_steps.iter().map(move |&m| (rnd, m)))
        .collect();
    let results = parallel_map(jobs.clone(), move |(random, mbps)| {
        let mut config = base_config(400 + mbps)
            .with_outbound(BandwidthProfile::fixed_mbps(mbps))
            .with_cdn(CdnConfig::default().with_outbound(cap));
        if random {
            config = random_dissemination(config);
        }
        run_scenario(&Scenario::evaluation(config, n)).acceptance_ratio
    });
    let pick = |random: bool| {
        jobs.iter()
            .zip(results.iter())
            .filter(|((r, _), _)| *r == random)
            .map(|(&(_, m), &y)| (m as f64, y))
            .collect()
    };
    FigureData {
        id: "fig15a".into(),
        title: "TeleCast vs Random: varying outbound bandwidth per viewer".into(),
        x_label: "outbound (Mbps)".into(),
        y_label: "acceptance ratio".into(),
        series: vec![
            Series::new("TeleCast", pick(false)),
            Series::new("Random", pick(true)),
        ],
    }
}

/// **Figure 15(b)** — acceptance ratio vs number of viewers with
/// `Cobw ~ U(2, 14)` Mbps, TeleCast vs Random.
pub fn fig15b(scale: Scale) -> FigureData {
    let counts: Vec<usize> = scale
        .viewer_counts()
        .into_iter()
        .filter(|&n| n >= 100 || scale == Scale::Smoke)
        .collect();
    let cap = scale.cdn_cap();
    let jobs: Vec<(bool, usize)> = [false, true]
        .iter()
        .flat_map(|&rnd| counts.iter().map(move |&n| (rnd, n)))
        .collect();
    let results = parallel_map(jobs.clone(), move |(random, n)| {
        let mut config = base_config(500 + n as u64)
            .with_outbound(BandwidthProfile::uniform_mbps(2, 14))
            .with_cdn(CdnConfig::default().with_outbound(cap));
        if random {
            config = random_dissemination(config);
        }
        run_scenario(&Scenario::evaluation(config, n)).acceptance_ratio
    });
    let pick = |random: bool| {
        jobs.iter()
            .zip(results.iter())
            .filter(|((r, _), _)| *r == random)
            .map(|(&(_, n), &y)| (n as f64, y))
            .collect()
    };
    FigureData {
        id: "fig15b".into(),
        title: "TeleCast vs Random: scaling the number of viewers".into(),
        x_label: "viewers".into(),
        y_label: "acceptance ratio".into(),
        series: vec![
            Series::new("TeleCast", pick(false)),
            Series::new("Random", pick(true)),
        ],
    }
}

/// Ablation: outbound allocation policy (Fig. 8's trade-off) — acceptance
/// ratio vs viewers under a tight CDN (4 Mbps/viewer).
pub fn ablation_outbound(scale: Scale) -> FigureData {
    let counts = scale.viewer_counts();
    let cap = Bandwidth::from_mbps(4 * scale.max_viewers() as u64);
    let policies = [
        ("round-robin", OutboundPolicy::RoundRobin),
        ("priority-first", OutboundPolicy::PriorityFirst),
        ("equal-split", OutboundPolicy::EqualSplit),
    ];
    let jobs: Vec<(usize, usize)> = (0..policies.len())
        .flat_map(|p| counts.iter().map(move |&n| (p, n)))
        .collect();
    let results = parallel_map(jobs.clone(), move |(p, n)| {
        let mut config = base_config(600 + n as u64)
            .with_outbound(BandwidthProfile::uniform_mbps(2, 10))
            .with_cdn(CdnConfig::default().with_outbound(cap));
        config.outbound_policy = policies[p].1;
        run_scenario(&Scenario::evaluation(config, n)).acceptance_ratio
    });
    let series = policies
        .iter()
        .enumerate()
        .map(|(p, (label, _))| {
            let points = jobs
                .iter()
                .zip(results.iter())
                .filter(|((jp, _), _)| *jp == p)
                .map(|(&(_, n), &y)| (n as f64, y))
                .collect();
            Series::new(*label, points)
        })
        .collect();
    FigureData {
        id: "ablation_outbound".into(),
        title: "Outbound allocation policy vs acceptance (tight CDN)".into(),
        x_label: "viewers".into(),
        y_label: "acceptance ratio".into(),
        series,
    }
}

/// Ablation: placement strategy — acceptance under a tight CDN
/// (2 Mbps/viewer, where placement quality decides admission) plus mean
/// tree depth, push-down vs first-fit.
pub fn ablation_placement(scale: Scale) -> FigureData {
    let counts = scale.viewer_counts();
    let cap = Bandwidth::from_mbps(2 * scale.max_viewers() as u64);
    let strategies = [
        ("push-down", PlacementStrategy::PushDown),
        ("first-fit", PlacementStrategy::Fifo),
    ];
    let jobs: Vec<(usize, usize)> = (0..strategies.len())
        .flat_map(|s| counts.iter().map(move |&n| (s, n)))
        .collect();
    let results = parallel_map(jobs.clone(), move |(s, n)| {
        let mut config = base_config(700 + n as u64)
            .with_outbound(BandwidthProfile::uniform_mbps(2, 14))
            .with_cdn(CdnConfig::default().with_outbound(cap));
        config.placement = strategies[s].1;
        let r = run_scenario(&Scenario::evaluation(config, n));
        (r.acceptance_ratio, r.mean_tree_depth)
    });
    let pick = |strategy: usize, depth: bool| {
        jobs.iter()
            .zip(results.iter())
            .filter(|((js, _), _)| *js == strategy)
            .map(|(&(_, n), &(acc, d))| (n as f64, if depth { d } else { acc }))
            .collect()
    };
    FigureData {
        id: "ablation_placement".into(),
        title: "Degree push-down vs first-fit (tight CDN)".into(),
        x_label: "viewers".into(),
        y_label: "acceptance ratio / mean depth".into(),
        series: vec![
            Series::new("push-down ρ", pick(0, false)),
            Series::new("first-fit ρ", pick(1, false)),
            Series::new("push-down depth", pick(0, true)),
            Series::new("first-fit depth", pick(1, true)),
        ],
    }
}

/// Ablation: κ sweep — how the layer-width divisor trades sync slack
/// against delayed receive (mean max layer and layer drops).
pub fn ablation_kappa(scale: Scale) -> FigureData {
    let n = scale.max_viewers().min(500);
    let kappas = [2u64, 3, 4, 6, 8];
    let results = parallel_map(kappas.to_vec(), move |kappa| {
        let mut config = SessionConfig::default()
            .with_seed(800 + kappa)
            .with_outbound(BandwidthProfile::uniform_mbps(0, 12))
            .with_cdn(CdnConfig::unbounded());
        config.kappa = kappa;
        let r = run_scenario(&Scenario::evaluation(config, n));
        let mean_layer = if r.layers.is_empty() {
            0.0
        } else {
            r.layers.iter().sum::<u64>() as f64 / r.layers.len() as f64
        };
        (mean_layer, r.layer_drops as f64, r.effective_bandwidth)
    });
    let xs: Vec<f64> = kappas.iter().map(|&k| k as f64).collect();
    FigureData {
        id: "ablation_kappa".into(),
        title: "κ sweep: layer geometry vs synchronisation outcome".into(),
        x_label: "kappa".into(),
        y_label: "mixed (see series)".into(),
        series: vec![
            Series::new(
                "mean max layer",
                xs.iter()
                    .zip(results.iter())
                    .map(|(&x, r)| (x, r.0))
                    .collect(),
            ),
            Series::new(
                "layer drops",
                xs.iter()
                    .zip(results.iter())
                    .map(|(&x, r)| (x, r.1))
                    .collect(),
            ),
            Series::new(
                "effective bw",
                xs.iter()
                    .zip(results.iter())
                    .map(|(&x, r)| (x, r.2))
                    .collect(),
            ),
        ],
    }
}

/// Ablation: layering on/off — effective bandwidth as hop processing
/// (and thus natural skew) grows.
pub fn ablation_layering(scale: Scale) -> FigureData {
    let n = scale.max_viewers().min(500);
    let hops_ms = [50u64, 100, 200, 400];
    let jobs: Vec<(bool, u64)> = [true, false]
        .iter()
        .flat_map(|&on| hops_ms.iter().map(move |&h| (on, h)))
        .collect();
    let results = parallel_map(jobs.clone(), move |(layering, hop)| {
        let mut config = SessionConfig::default()
            .with_seed(900 + hop)
            .with_outbound(BandwidthProfile::uniform_mbps(0, 12))
            .with_cdn(CdnConfig::unbounded());
        config.hop_processing = SimDuration::from_millis(hop);
        if !layering {
            config = no_layering(config);
        }
        run_scenario(&Scenario::evaluation(config, n)).effective_bandwidth
    });
    let pick = |on: bool| {
        jobs.iter()
            .zip(results.iter())
            .filter(|((o, _), _)| *o == on)
            .map(|(&(_, h), &y)| (h as f64, y))
            .collect()
    };
    FigureData {
        id: "ablation_layering".into(),
        title: "Delay layering vs effective bandwidth".into(),
        x_label: "hop processing (ms)".into(),
        y_label: "effective bandwidth fraction".into(),
        series: vec![
            Series::new("layering on", pick(true)),
            Series::new("layering off", pick(false)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_is_small() {
        assert_eq!(Scale::Smoke.max_viewers(), 200);
        assert_eq!(Scale::Smoke.cdn_cap(), Bandwidth::from_mbps(1_200));
        assert_eq!(Scale::Paper.max_viewers(), 1_000);
    }

    #[test]
    fn fig13a_zero_outbound_is_linear_in_viewers() {
        let fig = fig13a(Scale::Smoke);
        let zero = fig
            .series
            .iter()
            .find(|s| s.label.contains("Cobw=0"))
            .expect("zero profile present");
        // All streams from the CDN: 12 Mbps per viewer.
        for &(n, mbps) in &zero.points {
            assert!(
                (mbps - 12.0 * n).abs() < 1e-6,
                "expected {} Mbps at {n} viewers, got {mbps}",
                12.0 * n
            );
        }
    }

    #[test]
    fn fig15a_telecast_dominates_random() {
        let fig = fig15a(Scale::Smoke);
        let telecast = &fig.series[0];
        let random = &fig.series[1];
        // At mid-range outbound the gap is the paper's headline claim.
        let t6 = telecast.y_at(6.0).unwrap();
        let r6 = random.y_at(6.0).unwrap();
        assert!(t6 > r6, "TeleCast {t6} should beat Random {r6} at 6 Mbps");
    }
}

//! The mega-storm scale scenario: a million viewers on the sharded
//! per-region runtime.
//!
//! Where `churn_storm` drives one global event loop, `mega_storm` splits
//! the population into five per-region shards
//! ([`telecast::ShardedSession`]) advancing in lock-step 10-second
//! epochs on a worker pool, with CDN spill and foreign-lease release
//! merged deterministically at each barrier. The exported figure is a
//! function of the seed alone — `--threads` only maps shards onto OS
//! threads, so two runs with different thread counts write
//! byte-identical `results/mega_storm.json`.

use telecast::{DelayModelChoice, SessionConfig, ShardStats, ShardedSession};
use telecast_cdn::CdnConfig;
use telecast_net::{Bandwidth, BandwidthProfile};
use telecast_sim::{SimDuration, SimTime};

use crate::churn::autoscale_policy_for;
use crate::table::{FigureData, Series};

/// Parameters of one mega-storm run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MegaScenario {
    /// Target steady-state population across all shards (split by the
    /// region weights; also the prefill size).
    pub viewers: usize,
    /// Simulated duration in minutes.
    pub minutes: u64,
    /// Fraction of the population leaving (and, in equilibrium,
    /// arriving) per minute — `0.01` is the canonical 1%/min storm.
    pub churn_per_minute: f64,
    /// Delay substrate; coordinate is the only one that fits 1M nodes.
    pub backend: DelayModelChoice,
    /// Master seed (each shard forks its own stream from it).
    pub seed: u64,
    /// Starting CDN outbound pool in Mbps, split across the regional
    /// shard pools; `None` keeps the population-scaled provisioning
    /// (`5 Mbps × viewers`, min 3000).
    pub pool_mbps: Option<u64>,
    /// Whether the elastic-CDN autoscaler runs (the policy of
    /// [`autoscale_policy_for`], split per shard).
    pub autoscale: bool,
    /// Worker threads the five shards are mapped onto. Purely a
    /// wall-clock knob — the output never depends on it.
    pub threads: usize,
    /// Barrier period in seconds: shards run this much virtual time
    /// between cross-shard merges.
    pub epoch_secs: u64,
}

impl Default for MegaScenario {
    fn default() -> Self {
        MegaScenario {
            viewers: 1_000_000,
            minutes: 60,
            churn_per_minute: 0.01,
            backend: DelayModelChoice::Coordinate,
            seed: 0x4D_0607,
            pool_mbps: None,
            autoscale: false,
            threads: telecast_sim::default_parallelism(),
            epoch_secs: 10,
        }
    }
}

/// Deterministic outcome of a mega run plus the wall-clock shard stats
/// the binary prints (kept out of the exported figure).
#[derive(Debug, Clone)]
pub struct MegaOutcome {
    /// The exported figure (`results/mega_storm.json`).
    pub figure: FigureData,
    /// Connected population at the horizon, across all shards.
    pub final_population: usize,
    /// Churn arrivals admitted over the run.
    pub arrivals: u64,
    /// Graceful churn departures.
    pub departures: u64,
    /// Abrupt churn failures.
    pub failures: u64,
    /// Stream acceptance ratio ρ at the horizon.
    pub acceptance_ratio: f64,
    /// Cross-shard CDN spill requests emitted.
    pub spill_requests: u64,
    /// Spill requests a foreign pool admitted.
    pub spill_admits: u64,
    /// Spill requests no foreign pool could take.
    pub spill_denied: u64,
    /// Cross-shard messages merged over the run (spills + releases).
    pub cross_shard_messages: u64,
    /// Deepest any shard's event heap ever was.
    pub peak_event_queue: u64,
    /// Autoscale actions that grew a shard pool.
    pub autoscale_ups: u64,
    /// Autoscale actions that shrank a shard pool.
    pub autoscale_downs: u64,
    /// Per-shard observability, in region order. `busy_ns` and
    /// `barrier_wait_ns` are wall-clock — print them, never export them.
    pub shard_stats: Vec<ShardStats>,
}

/// Runs the scenario and collapses it into the exported figure. Pure in
/// the seed: equal scenarios produce equal figures (byte-identical
/// JSON) regardless of host, `threads`, or repetition.
pub fn run_mega(scenario: &MegaScenario) -> MegaOutcome {
    let pool = Bandwidth::from_mbps(
        scenario
            .pool_mbps
            .unwrap_or((scenario.viewers as u64 * 5).max(3_000)),
    );
    let mut config = SessionConfig::default()
        .with_outbound(BandwidthProfile::uniform_mbps(2, 14))
        .with_cdn(CdnConfig::default().with_outbound(pool))
        .with_delay_model(scenario.backend)
        .with_monitor_period(SimDuration::from_secs(10))
        .with_seed(scenario.seed);
    if scenario.autoscale {
        config = config.with_autoscale(autoscale_policy_for(pool, scenario.viewers));
    }

    let mut session = ShardedSession::new(
        config,
        scenario.viewers,
        scenario.threads,
        SimDuration::from_secs(scenario.epoch_secs),
    );
    let horizon = SimTime::from_secs(scenario.minutes * 60);
    session.start_churn(scenario.churn_per_minute, horizon);
    session.run_until(horizon);

    let m = session.merged_metrics();
    let stats = session.stats().to_vec();
    let cross_shard: u64 = stats.iter().map(|s| s.cross_shard_messages).sum();
    let x = scenario.viewers as f64;
    let population_series: Vec<(f64, f64)> = m
        .population
        .points()
        .iter()
        .map(|&(at, v)| (at.as_secs_f64(), v))
        .collect();
    let by_shard = |f: fn(&ShardStats) -> f64| -> Vec<(f64, f64)> {
        stats
            .iter()
            .enumerate()
            .map(|(i, s)| (i as f64, f(s)))
            .collect()
    };
    let figure = FigureData {
        id: "mega_storm".into(),
        title: format!(
            "Mega storm: {} viewers over 5 shards, {:.1}%/min churn, {} simulated minutes ({:?} backend)",
            scenario.viewers,
            scenario.churn_per_minute * 100.0,
            scenario.minutes,
            scenario.backend,
        ),
        x_label: "viewers (scalars) / seconds (population) / shard (per-shard)".into(),
        y_label: "per-metric value".into(),
        series: vec![
            Series::new("population_over_time", population_series),
            Series::new("acceptance_ratio", vec![(x, m.acceptance_ratio())]),
            Series::new(
                "final_population",
                vec![(x, session.connected_viewers() as f64)],
            ),
            Series::new("churn_arrivals", vec![(x, m.churn_arrivals.value() as f64)]),
            Series::new(
                "churn_departures",
                vec![(x, m.churn_departures.value() as f64)],
            ),
            Series::new("churn_failures", vec![(x, m.churn_failures.value() as f64)]),
            Series::new("peak_cdn_mbps", vec![(x, m.peak_cdn_mbps())]),
            Series::new(
                "peak_provisioned_mbps",
                vec![(x, m.provisioned_cdn_mbps.peak())],
            ),
            Series::new("autoscale_ups", vec![(x, m.autoscale_ups.value() as f64)]),
            Series::new(
                "autoscale_downs",
                vec![(x, m.autoscale_downs.value() as f64)],
            ),
            Series::new("join_retries", vec![(x, m.join_retries.value() as f64)]),
            Series::new(
                "spill_requests",
                vec![(x, m.spill_requests.value() as f64)],
            ),
            Series::new("spill_admits", vec![(x, m.spill_admits.value() as f64)]),
            Series::new("spill_releases", vec![(x, m.spill_releases.value() as f64)]),
            Series::new("spill_denied", vec![(x, session.spill_denied() as f64)]),
            Series::new("cross_shard_messages", vec![(x, cross_shard as f64)]),
            Series::new(
                "peak_event_queue",
                vec![(x, m.peak_event_queue as f64)],
            ),
            Series::new(
                "peak_retry_queue",
                vec![(x, m.peak_retry_queue as f64)],
            ),
            Series::new("viewers_by_shard", by_shard(|s| s.viewers as f64)),
            Series::new(
                "events_processed_by_shard",
                by_shard(|s| s.events_processed as f64),
            ),
            Series::new(
                "cross_shard_messages_by_shard",
                by_shard(|s| s.cross_shard_messages as f64),
            ),
            Series::new(
                "peak_event_queue_by_shard",
                by_shard(|s| s.peak_event_queue as f64),
            ),
        ],
    };
    MegaOutcome {
        final_population: session.connected_viewers(),
        arrivals: m.churn_arrivals.value(),
        departures: m.churn_departures.value(),
        failures: m.churn_failures.value(),
        acceptance_ratio: m.acceptance_ratio(),
        spill_requests: m.spill_requests.value(),
        spill_admits: m.spill_admits.value(),
        spill_denied: session.spill_denied(),
        cross_shard_messages: cross_shard,
        peak_event_queue: m.peak_event_queue,
        autoscale_ups: m.autoscale_ups.value(),
        autoscale_downs: m.autoscale_downs.value(),
        shard_stats: stats,
        figure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(threads: usize) -> MegaScenario {
        MegaScenario {
            viewers: 600,
            minutes: 2,
            churn_per_minute: 0.1,
            backend: DelayModelChoice::Dense,
            seed: 11,
            threads,
            epoch_secs: 5,
            ..MegaScenario::default()
        }
    }

    #[test]
    fn small_mega_storm_sustains_a_population() {
        let outcome = run_mega(&small(2));
        assert!(outcome.final_population > 0, "audience collapsed");
        assert!(outcome.arrivals >= 600, "prefill missing");
        assert!(
            outcome.departures + outcome.failures > 0,
            "nobody churned in 2 minutes at 10%/min"
        );
        assert_eq!(outcome.shard_stats.len(), 5);
    }

    #[test]
    fn figure_is_thread_count_independent() {
        let one = run_mega(&small(1));
        for threads in [2, 8] {
            let many = run_mega(&small(threads));
            assert_eq!(
                one.figure, many.figure,
                "figure diverged at {threads} threads"
            );
        }
    }
}

//! The spike-storm scenario: replayed-highlight bursts on a diurnal
//! baseline, served by per-region CDN pools under predictive (or
//! reactive) autoscaling.
//!
//! The audience model is [`RateProfile::diurnal_with_spikes`]: the
//! arrival rate follows a day/night wave and, at scheduled instants —
//! a kickoff replay, a contested finish — multiplies several-fold for a
//! few minutes. The pool is split per region
//! ([`PoolScope::PerRegion`] by default), so each region's controller
//! provisions for *its* share of the storm. The comparison the
//! conformance suite pins down: on the same seed, the predictive
//! controller (which sees the spike one forecast horizon ahead through
//! the rate profile and pre-scales each regional pool) admits more of
//! the burst — fewer rejected and retried joins — at no more provisioned
//! Mbps-hours than the reactive utilisation-band controller that only
//! reacts once rejections are already happening.
//!
//! Everything the figure reports is a function of the seed alone, so
//! the JSON export is byte-identical across runs and machines.

use telecast::{DelayModelChoice, SessionConfig, TelecastSession};
use telecast_cdn::{CdnConfig, PoolScope, PredictivePolicy};
use telecast_media::{ChurnSpec, RateProfile, SpikeWindow};
use telecast_net::{Bandwidth, BandwidthProfile};
use telecast_sim::{SimDuration, SimTime};

use crate::churn::autoscale_policy_for;
use crate::table::{FigureData, Series};

/// Parameters of one spike-storm run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeScenario {
    /// Mean steady-state population (the baseline wave oscillates around
    /// it); also the flash-kickoff prefill size.
    pub viewers: usize,
    /// Simulated duration in minutes.
    pub minutes: u64,
    /// Fraction of the population leaving per minute at the base rate.
    pub churn_per_minute: f64,
    /// Length of one compressed "day" (one diurnal cycle) in minutes.
    pub day_minutes: u64,
    /// Diurnal amplitude of the baseline, in `[0, 1]`.
    pub amplitude: f64,
    /// Rate multiplier of the replayed-highlight bursts.
    pub spike_multiplier: f64,
    /// Delay substrate.
    pub backend: DelayModelChoice,
    /// Master seed.
    pub seed: u64,
    /// Starting CDN outbound pool in Mbps; `None` provisions
    /// `4 Mbps × viewers` (min 2000) — enough for the steady audience
    /// once the trees carry their share, far short of a burst's front.
    pub pool_mbps: Option<u64>,
    /// Whether the elastic-CDN autoscaler runs at all.
    pub autoscale: bool,
    /// Whether the autoscaler is predictive (forecast-driven) instead of
    /// reactive (utilisation-band).
    pub predictive: bool,
    /// Whether the pool is split per region (the scenario's default) or
    /// kept global.
    pub per_region: bool,
}

impl Default for SpikeScenario {
    fn default() -> Self {
        SpikeScenario {
            viewers: 20_000,
            minutes: 30,
            churn_per_minute: 0.30,
            day_minutes: 30,
            amplitude: 0.5,
            spike_multiplier: 6.0,
            backend: DelayModelChoice::Coordinate,
            seed: 0x51_1735,
            pool_mbps: None,
            autoscale: true,
            predictive: true,
            per_region: true,
        }
    }
}

impl SpikeScenario {
    /// The scenario's burst schedule: two replayed-highlight windows at
    /// 40% and 70% of the horizon — the first `spike_multiplier`×, the
    /// second half as tall again — each lasting a tenth of the run (at
    /// least one minute).
    pub fn spike_windows(&self) -> Vec<SpikeWindow> {
        let horizon_secs = self.minutes * 60;
        let duration = SimDuration::from_secs((horizon_secs / 10).max(60));
        vec![
            SpikeWindow {
                start: SimTime::from_secs(horizon_secs * 2 / 5),
                duration,
                multiplier: self.spike_multiplier,
            },
            SpikeWindow {
                start: SimTime::from_secs(horizon_secs * 7 / 10),
                duration,
                multiplier: self.spike_multiplier * 1.5,
            },
        ]
    }

    /// The audience's arrival-rate profile: the diurnal baseline with
    /// the burst schedule composed on top.
    pub fn rate_profile(&self) -> RateProfile {
        let day = SimDuration::from_secs(self.day_minutes.max(1) * 60);
        RateProfile::diurnal_with_spikes(day, self.amplitude, &self.spike_windows())
    }
}

/// Deterministic outcome of a spike-storm run.
#[derive(Debug, Clone, PartialEq)]
pub struct SpikeOutcome {
    /// The exported figure (`results/spike_storm.json`).
    pub figure: FigureData,
    /// Connected population at the horizon.
    pub final_population: usize,
    /// Stream acceptance ratio ρ at the horizon.
    pub acceptance_ratio: f64,
    /// Viewers rejected at admission over the run.
    pub rejected_joins: u64,
    /// Parked CDN-rejected joins retried after scale-ups.
    pub join_retries: u64,
    /// Joins still parked for retry at the horizon.
    pub retry_queue_len: usize,
    /// Autoscale actions that grew a pool.
    pub autoscale_ups: u64,
    /// Autoscale actions that shrank a pool.
    pub autoscale_downs: u64,
    /// Provisioned Mbps-hours billed over the run, summed over every
    /// pool slot — the cost side of the predictive-vs-reactive bar.
    pub provisioned_mbps_hours: f64,
    /// The same bill in dollars at the committed rate.
    pub provisioned_dollars: f64,
    /// Aggregate provisioned-capacity samples (seconds, Mbps).
    pub provisioned_series: Vec<(f64, f64)>,
    /// Per-pool-slot provisioned series, labelled by region.
    pub provisioned_by_region: Vec<(String, Vec<(f64, f64)>)>,
    /// Mean absolute forecast error of the predictive controllers
    /// across every matured forecast, in Mbps (`None` for reactive or
    /// static runs). Reported on stdout — deliberately *not* part of
    /// the exported figure, whose bytes are pinned by the bench gate.
    pub mean_abs_forecast_error_mbps: Option<f64>,
    /// Matured forecasts scored into the error above.
    pub forecasts_scored: usize,
}

/// Runs the scenario. Pure in the seed: equal scenarios produce equal
/// (`==`, and byte-identical JSON) outcomes regardless of host, thread
/// count or repetition.
pub fn run_spike(scenario: &SpikeScenario) -> SpikeOutcome {
    let pool = Bandwidth::from_mbps(
        scenario
            .pool_mbps
            .unwrap_or((scenario.viewers as u64 * 4).max(2_000)),
    );
    let scope = if scenario.per_region {
        PoolScope::PerRegion
    } else {
        PoolScope::Global
    };
    // Twice the steady population in provisioned gateways: a burst has
    // real viewers to add, instead of merely re-admitting leavers.
    let gateways = scenario.viewers * 2;
    let mut config = SessionConfig::default()
        .with_outbound(BandwidthProfile::uniform_mbps(2, 14))
        .with_cdn(
            CdnConfig::default()
                .with_outbound(pool)
                .with_pool_scope(scope),
        )
        .with_delay_model(scenario.backend)
        .with_monitor_period(SimDuration::from_secs(10))
        .with_seed(scenario.seed);
    if scenario.autoscale {
        config = config.with_autoscale(autoscale_policy_for(pool, gateways));
    }
    if scenario.predictive {
        config = config.with_predictive(PredictivePolicy {
            horizon: SimDuration::from_secs(45),
            alpha: 0.5,
            // Run hotter than the reactive band's high watermark: the
            // forecast's trend and surge terms replace the standing
            // headroom a reactive controller needs, so the same service
            // is bought with less provisioned capacity.
            target_utilisation: 0.95,
        });
    }

    let mut session = TelecastSession::builder(config).viewers(gateways).build();
    let horizon = SimTime::from_secs(scenario.minutes * 60);
    let spec = ChurnSpec::steady_state(scenario.viewers, scenario.churn_per_minute)
        .with_rate_profile(scenario.rate_profile());
    session.start_churn(spec, horizon, scenario.viewers);
    session.run_until(horizon);

    let m = session.metrics();
    let x = scenario.viewers as f64;
    let to_xy = |points: &[(SimTime, f64)]| -> Vec<(f64, f64)> {
        points
            .iter()
            .map(|&(at, v)| (at.as_secs_f64(), v))
            .collect()
    };
    let provisioned_series = to_xy(m.provisioned_cdn_mbps.points());
    let provisioned_by_region: Vec<(String, Vec<(f64, f64)>)> = m
        .provisioned_by_slot
        .iter()
        .enumerate()
        .map(|(slot, series)| {
            let label = match session.cdn().slot_region(slot) {
                Some(region) => format!("provisioned_mbps_{region}"),
                None => "provisioned_mbps_global".to_string(),
            };
            (label, to_xy(series.points()))
        })
        .collect();
    let provisioned_mbps_hours = session.cdn().provisioned_mbps_hours_at(horizon);
    let provisioned_dollars = session.cdn().provisioned_dollars_at(horizon);

    let mut series = vec![
        Series::new("population_over_time", to_xy(m.population.points())),
        Series::new("provisioned_mbps_over_time", provisioned_series.clone()),
        Series::new("utilisation_over_time", to_xy(m.cdn_utilisation.points())),
    ];
    for (label, points) in &provisioned_by_region {
        series.push(Series::new(label.clone(), points.clone()));
    }
    series.extend([
        Series::new("acceptance_ratio", vec![(x, m.acceptance_ratio())]),
        Series::new(
            "final_population",
            vec![(x, session.connected_viewers() as f64)],
        ),
        Series::new("churn_arrivals", vec![(x, m.churn_arrivals.value() as f64)]),
        Series::new(
            "rejected_joins",
            vec![(x, m.rejected_viewers.value() as f64)],
        ),
        Series::new("join_retries", vec![(x, m.join_retries.value() as f64)]),
        Series::new("autoscale_ups", vec![(x, m.autoscale_ups.value() as f64)]),
        Series::new(
            "autoscale_downs",
            vec![(x, m.autoscale_downs.value() as f64)],
        ),
        Series::new("peak_cdn_mbps", vec![(x, m.peak_cdn_mbps())]),
        Series::new(
            "peak_provisioned_mbps",
            vec![(x, m.provisioned_cdn_mbps.peak())],
        ),
        Series::new("provisioned_mbps_hours", vec![(x, provisioned_mbps_hours)]),
        Series::new("provisioned_dollars", vec![(x, provisioned_dollars)]),
    ]);

    let figure = FigureData {
        id: "spike_storm".into(),
        title: format!(
            "Spike storm: {} viewers, {}× bursts on a {:.0}%-amplitude {}-minute-day baseline \
             for {} minutes ({} pool, {}, {})",
            scenario.viewers,
            scenario.spike_multiplier,
            scenario.amplitude * 100.0,
            scenario.day_minutes,
            scenario.minutes,
            pool,
            if scenario.per_region {
                "per-region"
            } else {
                "global"
            },
            match (scenario.autoscale, scenario.predictive) {
                (true, true) => "predictive autoscale",
                (true, false) => "reactive autoscale",
                (false, _) => "static",
            },
        ),
        x_label: "seconds (series) / viewers (scalars)".into(),
        y_label: "per-metric value".into(),
        series,
    };
    let mean_abs_forecast_error_mbps = m.mean_abs_forecast_error_mbps();
    let forecasts_scored = m
        .forecast_error_by_slot
        .iter()
        .map(|series| series.points().len())
        .sum();
    SpikeOutcome {
        mean_abs_forecast_error_mbps,
        forecasts_scored,
        final_population: session.connected_viewers(),
        acceptance_ratio: m.acceptance_ratio(),
        rejected_joins: m.rejected_viewers.value(),
        join_retries: m.join_retries.value(),
        retry_queue_len: session.retry_queue_len(),
        autoscale_ups: m.autoscale_ups.value(),
        autoscale_downs: m.autoscale_downs.value(),
        provisioned_mbps_hours,
        provisioned_dollars,
        provisioned_series,
        provisioned_by_region,
        figure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(predictive: bool) -> SpikeScenario {
        SpikeScenario {
            viewers: 300,
            minutes: 20,
            churn_per_minute: 0.3,
            day_minutes: 10,
            amplitude: 0.5,
            spike_multiplier: 6.0,
            backend: DelayModelChoice::Dense,
            seed: 41,
            pool_mbps: Some(200),
            autoscale: true,
            predictive,
            per_region: true,
        }
    }

    #[test]
    fn storm_sustains_an_audience_on_per_region_pools() {
        let outcome = run_spike(&small(true));
        assert!(outcome.final_population > 0, "audience collapsed");
        assert!(outcome.autoscale_ups > 0, "the bursts never scaled a pool");
        assert_eq!(
            outcome.provisioned_by_region.len(),
            telecast_net::Region::ALL.len(),
            "expected one provisioned series per region"
        );
        assert!(outcome.provisioned_mbps_hours > 0.0);
    }

    #[test]
    fn outcome_is_seed_deterministic() {
        let a = run_spike(&small(true));
        let b = run_spike(&small(true));
        assert_eq!(a, b);
        let c = run_spike(&SpikeScenario {
            seed: 42,
            ..small(true)
        });
        assert_ne!(a.figure.to_json(), c.figure.to_json());
    }

    #[test]
    fn spike_windows_sit_inside_the_horizon() {
        let s = SpikeScenario::default();
        let horizon = SimTime::from_secs(s.minutes * 60);
        for w in s.spike_windows() {
            assert!(w.start + w.duration <= horizon, "burst past the horizon");
            assert!(w.multiplier > 1.0);
        }
        assert!(s.rate_profile().validate().is_ok());
    }
}

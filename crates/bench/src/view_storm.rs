//! The view-switching-storm scenario: a Zipf-skewed multi-view audience
//! hit by correlated re-focus events, with per-view tree prune/merge
//! shrinking the abandoned views' overlays.
//!
//! The audience arrives over the first simulated minute, picks views by
//! a Zipf popularity model, and drifts with a Poisson baseline of
//! per-viewer view changes. Three correlated re-focus storms then each
//! pull a configurable fraction of *everyone* onto one target view
//! inside a five-second window — the flash-crowd analogue of a director
//! cut. Every switch tears the viewer out of the old view's trees; the
//! prune pass folds the abandoned fragments back under P2P parents and
//! returns their CDN serves to the pool, retiring fully drained groups.
//!
//! Everything the figure reports is a function of the seed alone —
//! wall-clock numbers are returned separately so the JSON export stays
//! byte-identical across runs and machines.

use telecast::{DelayModelChoice, SessionConfig, TelecastSession};
use telecast_cdn::CdnConfig;
use telecast_media::{
    ArrivalModel, ProducerSite, RefocusEvent, SiteId, ViewId, ViewPopularity, ViewerWorkload,
};
use telecast_net::{Bandwidth, BandwidthProfile};
use telecast_sim::{SimDuration, SimRng, SimTime};

use crate::table::{FigureData, Series};

/// Parameters of one view-storm run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViewStormScenario {
    /// Audience size (every viewer arrives during the first minute).
    pub viewers: usize,
    /// Simulated duration in minutes.
    pub minutes: u64,
    /// Selectable views (camera count per producer site).
    pub views: usize,
    /// Zipf exponent of view popularity (0 = uniform).
    pub zipf_view: f64,
    /// Fraction of the audience hopping to the target view during each
    /// re-focus storm (0 disables the storms).
    pub refocus_fraction: f64,
    /// Delay substrate; coordinate is the scale-friendly default.
    pub backend: DelayModelChoice,
    /// Master seed (config and workload).
    pub seed: u64,
    /// Starting CDN outbound pool in Mbps; `None` keeps the
    /// population-scaled provisioning shared with the churn bins.
    pub pool_mbps: Option<u64>,
    /// Member floor of the per-view prune pass
    /// ([`SessionConfig::prune_member_floor`]).
    pub prune_floor: usize,
}

impl Default for ViewStormScenario {
    fn default() -> Self {
        ViewStormScenario {
            viewers: 20_000,
            minutes: 10,
            views: 8,
            zipf_view: 1.1,
            refocus_fraction: 0.4,
            backend: DelayModelChoice::Coordinate,
            seed: 0x4D_F0C5,
            pool_mbps: None,
            // Groups are scoped per (region, view): 5 regions x 8 views
            // spread 20k viewers ~500 per group, and the coldest
            // Zipf-1.1 views (~4% share) drop to a few dozen members
            // per region after a 40% storm — below this floor, so the
            // prune pass visibly fires in the committed smoke run.
            prune_floor: 64,
        }
    }
}

/// Deterministic outcome of a view-storm run (everything the JSON
/// reports, plus the raw counters the binary prints).
#[derive(Debug, Clone, PartialEq)]
pub struct ViewStormOutcome {
    /// The exported figure (`results/view_storm.json`).
    pub figure: FigureData,
    /// Connected population at the horizon.
    pub final_population: usize,
    /// View changes processed (switch-latency samples plus starved
    /// switches).
    pub switches: u64,
    /// p99 switch latency (leave-old-tree → first-frame-on-new-tree).
    pub switch_p99_ms: f64,
    /// Switches whose CDN fast path granted no temporary lease.
    pub switch_starved: u64,
    /// Wasted subtree bandwidth in Mbps·hours.
    pub wasted_mbps_hours: f64,
    /// CDN-rooted fragments folded under P2P parents by the prune pass.
    pub fragments_merged: u64,
    /// Drained view groups retired by the prune pass.
    pub groups_retired: u64,
    /// CDN capacity returned by prune merges, in Mbps.
    pub reclaimed_mbps: f64,
    /// Stream acceptance ratio ρ at the horizon.
    pub acceptance_ratio: f64,
    /// Peak CDN outbound usage in Mbps.
    pub peak_cdn_mbps: f64,
}

/// The scenario's session configuration: the paper's setup with the
/// camera ring widened to `views` views per site, the CDN pool scaled
/// to the population, and the prune pass armed at the scenario's floor.
fn storm_config(scenario: &ViewStormScenario) -> SessionConfig {
    let pool = Bandwidth::from_mbps(
        scenario
            .pool_mbps
            .unwrap_or((scenario.viewers as u64 * 5).max(3_000)),
    );
    let cameras = u16::try_from(scenario.views).expect("--views fits a camera ring");
    SessionConfig {
        sites: vec![
            ProducerSite::ring(SiteId::new(0), cameras, 2_000, 10),
            ProducerSite::ring(SiteId::new(1), cameras, 2_000, 10),
        ],
        streams_per_local_view: scenario.views.min(3),
        ..SessionConfig::default()
    }
    .with_outbound(BandwidthProfile::uniform_mbps(2, 14))
    .with_cdn(CdnConfig::default().with_outbound(pool))
    .with_delay_model(scenario.backend)
    .with_monitor_period(SimDuration::from_secs(10))
    .with_prune_floor(scenario.prune_floor)
    .with_seed(scenario.seed)
}

/// The audience script: staggered arrivals over the first minute, Zipf
/// view choice, one baseline view change per viewer on average, and
/// three re-focus storms at 40/60/80% of the horizon targeting views
/// 1, 2 and 3 (mod the catalog) with the configured audience fraction.
fn storm_workload(scenario: &ViewStormScenario, catalog_len: usize) -> ViewerWorkload {
    let horizon_secs = scenario.minutes * 60;
    let gap = SimDuration::from_micros(60_000_000 / scenario.viewers.max(1) as u64);
    let mut popularity = ViewPopularity::zipf(scenario.zipf_view);
    if scenario.refocus_fraction > 0.0 {
        for (i, pct) in [40u64, 60, 80].into_iter().enumerate() {
            popularity = popularity.with_refocus(RefocusEvent {
                at: SimTime::from_secs(horizon_secs * pct / 100),
                window: SimDuration::from_secs(5),
                target: ViewId::new(((i + 1) % catalog_len.max(1)) as u32),
                fraction: scenario.refocus_fraction,
            });
        }
    }
    let mut rng = SimRng::seed_from_u64(scenario.seed);
    ViewerWorkload::builder(scenario.viewers, catalog_len)
        .arrivals(ArrivalModel::Staggered { gap })
        .popularity(&popularity)
        .view_changes(1.0, SimDuration::from_secs(horizon_secs * 3 / 4))
        .build(&mut rng)
}

/// Runs the scenario and collapses it into the exported figure. Pure in
/// the seed: equal scenarios produce equal (`==`, and byte-identical
/// JSON) outcomes regardless of host, thread count or repetition.
pub fn run_view_storm(scenario: &ViewStormScenario) -> ViewStormOutcome {
    let config = storm_config(scenario);
    let catalog_len = {
        let probe = TelecastSession::builder(config.clone()).viewers(0).build();
        probe.catalog().len()
    };
    assert_eq!(
        catalog_len, scenario.views,
        "canonical catalog does not match --views"
    );
    let mut session = TelecastSession::builder(config)
        .viewers(scenario.viewers)
        .build();
    let workload = storm_workload(scenario, catalog_len);
    session.run_workload(&workload);

    let m = session.metrics();
    let x = scenario.viewers as f64;
    let population_series: Vec<(f64, f64)> = m
        .population
        .points()
        .iter()
        .map(|&(at, v)| (at.as_secs_f64(), v))
        .collect();
    let switches = m.switch_latency_ms.samples().len() as u64 + m.switch_starved.value();
    let figure = FigureData {
        id: "view_storm".into(),
        title: format!(
            "View storm: {} viewers over {} views (Zipf {}), {:.0}% re-focus storms, \
             {} simulated minutes ({:?} backend)",
            scenario.viewers,
            scenario.views,
            scenario.zipf_view,
            scenario.refocus_fraction * 100.0,
            scenario.minutes,
            scenario.backend,
        ),
        x_label: "viewers (scalars) / seconds (population)".into(),
        y_label: "per-metric value".into(),
        series: vec![
            Series::new("population_over_time", population_series),
            Series::new("acceptance_ratio", vec![(x, m.acceptance_ratio())]),
            Series::new(
                "final_population",
                vec![(x, session.connected_viewers() as f64)],
            ),
            Series::new("view_changes", vec![(x, switches as f64)]),
            Series::new(
                "switch_latency_p50_ms",
                vec![(x, m.switch_latency_ms.percentile(50.0).unwrap_or(0.0))],
            ),
            Series::new(
                "switch_latency_p99_ms",
                vec![(x, m.switch_latency_ms.percentile(99.0).unwrap_or(0.0))],
            ),
            Series::new("switch_starved", vec![(x, m.switch_starved.value() as f64)]),
            Series::new("wasted_mbps_hours", vec![(x, m.wasted_mbps_hours())]),
            Series::new(
                "fragments_merged",
                vec![(x, m.fragments_merged.value() as f64)],
            ),
            Series::new("groups_retired", vec![(x, m.groups_retired.value() as f64)]),
            Series::new(
                "prune_reclaimed_mbps",
                vec![(x, m.prune_reclaimed_kbps.value() as f64 / 1_000.0)],
            ),
            Series::new("victims", vec![(x, m.victims.value() as f64)]),
            Series::new("displacements", vec![(x, m.displacements.value() as f64)]),
            Series::new("peak_cdn_mbps", vec![(x, m.peak_cdn_mbps())]),
            Series::new(
                "view_change_delay_p99_ms",
                vec![(x, m.view_change_delays_ms.percentile(99.0).unwrap_or(0.0))],
            ),
        ],
    };
    ViewStormOutcome {
        final_population: session.connected_viewers(),
        switches,
        switch_p99_ms: m.switch_latency_ms.percentile(99.0).unwrap_or(0.0),
        switch_starved: m.switch_starved.value(),
        wasted_mbps_hours: m.wasted_mbps_hours(),
        fragments_merged: m.fragments_merged.value(),
        groups_retired: m.groups_retired.value(),
        reclaimed_mbps: m.prune_reclaimed_kbps.value() as f64 / 1_000.0,
        acceptance_ratio: m.acceptance_ratio(),
        peak_cdn_mbps: m.peak_cdn_mbps(),
        figure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ViewStormScenario {
        ViewStormScenario {
            viewers: 300,
            minutes: 4,
            backend: DelayModelChoice::Dense,
            seed: 7,
            refocus_fraction: 0.5,
            ..ViewStormScenario::default()
        }
    }

    /// A small storm actually switches views, measures the switches,
    /// and prunes the abandoned trees.
    #[test]
    fn small_storm_switches_and_prunes() {
        let outcome = run_view_storm(&small());
        assert!(outcome.final_population > 0, "audience collapsed");
        assert!(
            outcome.switches > 300,
            "three 50% storms over 300 viewers produced only {} switches",
            outcome.switches
        );
        assert!(
            outcome.switch_p99_ms > 0.0 || outcome.switch_starved == outcome.switches,
            "switches happened but no latency was measured"
        );
        assert!(
            outcome.wasted_mbps_hours > 0.0,
            "switching away wasted no subtree bandwidth"
        );
        assert!(
            outcome.fragments_merged > 0,
            "storms fragmented trees but nothing merged"
        );
    }

    /// Equal scenarios produce equal outcomes (the JSON byte-identity
    /// check lives in the conformance suite).
    #[test]
    fn outcome_is_deterministic() {
        let a = run_view_storm(&small());
        let b = run_view_storm(&small());
        assert_eq!(a, b);
    }
}

//! The churn-storm scale scenario: a sustained population under
//! continuous join/leave/fail churn, driven end-to-end by the
//! discrete-event engine.
//!
//! The scenario prefills the target population at time zero (a flash
//! kickoff), installs a [`ChurnSpec`] steady-state churn process
//! (Poisson arrivals, lognormal dwell, a fraction of abrupt failures)
//! and runs the engine to the simulated horizon. Everything the figure
//! reports is a function of the seed alone — wall-clock numbers are
//! returned separately so the JSON export stays byte-identical across
//! runs and machines.

use telecast::{DelayModelChoice, SessionConfig, TelecastSession};
use telecast_cdn::{AutoscalePolicy, CdnConfig};
use telecast_media::ChurnSpec;
use telecast_net::{Bandwidth, BandwidthProfile};
use telecast_sim::{SimDuration, SimTime};

use crate::table::{FigureData, Series};

/// Parameters of one churn-storm run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnScenario {
    /// Target steady-state population (also the prefill size).
    pub viewers: usize,
    /// Simulated duration in minutes.
    pub minutes: u64,
    /// Fraction of the population leaving (and, in equilibrium,
    /// arriving) per minute — `0.01` is the canonical 1%/min storm.
    pub churn_per_minute: f64,
    /// Delay substrate; coordinate is the only one that fits 100k nodes.
    pub backend: DelayModelChoice,
    /// Master seed.
    pub seed: u64,
    /// Starting CDN outbound pool in Mbps; `None` keeps the historical
    /// population-scaled provisioning (`5 Mbps × viewers`, min 3000).
    pub pool_mbps: Option<u64>,
    /// Whether the elastic-CDN autoscaler runs (see
    /// [`crate::autoscale_policy_for`]).
    pub autoscale: bool,
}

impl Default for ChurnScenario {
    fn default() -> Self {
        ChurnScenario {
            viewers: 100_000,
            minutes: 60,
            churn_per_minute: 0.01,
            backend: DelayModelChoice::Coordinate,
            seed: 0xC4_0211,
            pool_mbps: None,
            autoscale: false,
        }
    }
}

/// The autoscale policy the scenario bins share: min = the starting
/// pool, ceiling = the population-scaled provisioning (`8 Mbps ×
/// viewers`, min 6000 Mbps), step = a quarter of the starting pool.
pub fn autoscale_policy_for(pool: Bandwidth, viewers: usize) -> AutoscalePolicy {
    let ceiling = Bandwidth::from_mbps((viewers as u64 * 8).max(6_000));
    AutoscalePolicy::for_pool(pool, ceiling)
}

/// Deterministic outcome of a churn run (everything the JSON reports,
/// plus the raw counters the binary prints).
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnOutcome {
    /// The exported figure (`results/churn_storm.json`).
    pub figure: FigureData,
    /// Connected population at the horizon.
    pub final_population: usize,
    /// Churn arrivals admitted over the run.
    pub arrivals: u64,
    /// Graceful churn departures.
    pub departures: u64,
    /// Abrupt churn failures.
    pub failures: u64,
    /// Total attach-planner level probes across all trees.
    pub attach_probes: u64,
    /// Streams accepted at admission over the run.
    pub accepted_streams: u64,
    /// Stream acceptance ratio ρ at the horizon.
    pub acceptance_ratio: f64,
    /// Autoscale actions that grew the pool.
    pub autoscale_ups: u64,
    /// Autoscale actions that shrank the pool.
    pub autoscale_downs: u64,
    /// Parked CDN-rejected joins retried after scale-ups.
    pub join_retries: u64,
    /// Joins still parked for retry at the horizon.
    pub retry_queue_len: usize,
    /// Provisioned CDN capacity at the horizon, in Mbps.
    pub final_provisioned_mbps: f64,
}

/// Runs the scenario and collapses it into the exported figure. Pure in
/// the seed: equal scenarios produce equal (`==`, and byte-identical
/// JSON) outcomes regardless of host, thread count or repetition.
pub fn run_churn(scenario: &ChurnScenario) -> ChurnOutcome {
    // Paper defaults with the CDN pool scaled to the population (the
    // prefill front is CDN-served until the first trees grow slots) and
    // periodic monitoring + adaptation as engine events. `pool_mbps`
    // overrides the provisioning (deliberately under-provisioned pools
    // are the autoscaler's test bed).
    let pool = Bandwidth::from_mbps(
        scenario
            .pool_mbps
            .unwrap_or((scenario.viewers as u64 * 5).max(3_000)),
    );
    let mut config = SessionConfig::default()
        .with_outbound(BandwidthProfile::uniform_mbps(2, 14))
        .with_cdn(CdnConfig::default().with_outbound(pool))
        .with_delay_model(scenario.backend)
        .with_monitor_period(SimDuration::from_secs(10))
        .with_seed(scenario.seed);
    if scenario.autoscale {
        config = config.with_autoscale(autoscale_policy_for(pool, scenario.viewers));
    }

    let mut session = TelecastSession::builder(config)
        .viewers(scenario.viewers)
        .build();
    let horizon = SimTime::from_secs(scenario.minutes * 60);
    let spec = ChurnSpec::steady_state(scenario.viewers, scenario.churn_per_minute);
    session.start_churn(spec, horizon, scenario.viewers);
    session.run_until(horizon);

    let m = session.metrics();
    let x = scenario.viewers as f64;
    let population_series: Vec<(f64, f64)> = m
        .population
        .points()
        .iter()
        .map(|&(at, v)| (at.as_secs_f64(), v))
        .collect();
    let figure = FigureData {
        id: "churn_storm".into(),
        title: format!(
            "Churn storm: {} viewers, {:.1}%/min churn over {} simulated minutes ({:?} backend)",
            scenario.viewers,
            scenario.churn_per_minute * 100.0,
            scenario.minutes,
            scenario.backend,
        ),
        x_label: "viewers (scalars) / seconds (population)".into(),
        y_label: "per-metric value".into(),
        series: vec![
            Series::new("population_over_time", population_series),
            Series::new("acceptance_ratio", vec![(x, m.acceptance_ratio())]),
            Series::new(
                "final_population",
                vec![(x, session.connected_viewers() as f64)],
            ),
            Series::new("churn_arrivals", vec![(x, m.churn_arrivals.value() as f64)]),
            Series::new(
                "churn_departures",
                vec![(x, m.churn_departures.value() as f64)],
            ),
            Series::new("churn_failures", vec![(x, m.churn_failures.value() as f64)]),
            Series::new("victims", vec![(x, m.victims.value() as f64)]),
            Series::new(
                "victims_repositioned",
                vec![(x, m.victims_repositioned.value() as f64)],
            ),
            Series::new("displacements", vec![(x, m.displacements.value() as f64)]),
            Series::new("peak_cdn_mbps", vec![(x, m.peak_cdn_mbps())]),
            Series::new(
                "join_delay_p99_ms",
                vec![(x, m.join_delays_ms.percentile(99.0).unwrap_or(0.0))],
            ),
            Series::new(
                "attach_probes_per_accepted_stream",
                vec![(
                    x,
                    session.attach_probe_total() as f64
                        / (m.accepted_streams.value().max(1)) as f64,
                )],
            ),
            Series::new(
                "depth_shift_ops_per_accepted_stream",
                vec![(
                    x,
                    session.depth_shift_total() as f64 / (m.accepted_streams.value().max(1)) as f64,
                )],
            ),
            Series::new(
                "peak_provisioned_mbps",
                vec![(x, m.provisioned_cdn_mbps.peak())],
            ),
            Series::new("autoscale_ups", vec![(x, m.autoscale_ups.value() as f64)]),
            Series::new(
                "autoscale_downs",
                vec![(x, m.autoscale_downs.value() as f64)],
            ),
            Series::new("join_retries", vec![(x, m.join_retries.value() as f64)]),
        ],
    };
    ChurnOutcome {
        final_population: session.connected_viewers(),
        arrivals: m.churn_arrivals.value(),
        departures: m.churn_departures.value(),
        failures: m.churn_failures.value(),
        attach_probes: session.attach_probe_total(),
        accepted_streams: m.accepted_streams.value(),
        acceptance_ratio: m.acceptance_ratio(),
        autoscale_ups: m.autoscale_ups.value(),
        autoscale_downs: m.autoscale_downs.value(),
        join_retries: m.join_retries.value(),
        retry_queue_len: session.retry_queue_len(),
        final_provisioned_mbps: session.cdn().outbound().total().as_mbps_f64(),
        figure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small storm sustains a population and actually churns.
    #[test]
    fn small_storm_reaches_steady_state() {
        let outcome = run_churn(&ChurnScenario {
            viewers: 300,
            minutes: 4,
            churn_per_minute: 0.05,
            backend: DelayModelChoice::Dense,
            seed: 5,
            ..ChurnScenario::default()
        });
        assert!(outcome.final_population > 0, "audience collapsed");
        assert!(
            outcome.arrivals >= 300,
            "prefill missing: {} arrivals",
            outcome.arrivals
        );
        assert!(
            outcome.departures + outcome.failures > 0,
            "nobody left during 4 minutes of 5%/min churn"
        );
        // The population series was sampled by the monitor event.
        let pop = outcome
            .figure
            .series
            .iter()
            .find(|s| s.label == "population_over_time")
            .expect("population series");
        assert!(pop.points.len() >= 10, "monitor barely sampled");
    }
}

//! Scenario plumbing: one simulated session run → one [`RunResult`],
//! with parallel sweeps for the figure generators.

use telecast::{SessionConfig, TelecastSession};
use telecast_media::{ArrivalModel, ViewChoice, ViewerWorkload};
use telecast_sim::{SimDuration, SimRng};

/// One experiment run: a configuration plus a scripted audience.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Session configuration (placement, bandwidth profiles, CDN, seed).
    pub config: SessionConfig,
    /// Number of viewers to provision and script.
    pub viewers: usize,
    /// How the audience arrives (default: 50 ms staggered ramp, which
    /// keeps joins ordered without synchronising them artificially).
    pub arrivals: ArrivalModel,
    /// How viewers pick views (default: Zipf 0.8 over the catalog — a
    /// popular-view-skewed audience).
    pub view_choice: ViewChoice,
    /// Mean number of view changes per viewer.
    pub view_changes_per_viewer: f64,
    /// Fraction of viewers that depart during the run.
    pub departure_fraction: f64,
    /// Workload seed (independent of the config seed).
    pub workload_seed: u64,
}

impl Scenario {
    /// The standard §VII audience for `viewers` viewers under `config`.
    pub fn evaluation(config: SessionConfig, viewers: usize) -> Self {
        Scenario {
            config,
            viewers,
            arrivals: ArrivalModel::Staggered {
                gap: SimDuration::from_millis(50),
            },
            view_choice: ViewChoice::Zipf { s: 0.8 },
            view_changes_per_viewer: 0.0,
            departure_fraction: 0.0,
            workload_seed: 0x7e1e_ca57,
        }
    }

    /// Adds view-change churn.
    pub fn with_view_changes(mut self, per_viewer: f64) -> Self {
        self.view_changes_per_viewer = per_viewer;
        self
    }

    /// Adds departures.
    pub fn with_departures(mut self, fraction: f64) -> Self {
        self.departure_fraction = fraction;
        self
    }
}

/// Everything the figures read out of one finished run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Acceptance ratio ρ.
    pub acceptance_ratio: f64,
    /// Fraction of served streams with a CDN upstream at steady state.
    pub cdn_fraction: f64,
    /// Peak CDN outbound usage in Mbps.
    pub peak_cdn_mbps: f64,
    /// Final CDN outbound usage in Mbps.
    pub final_cdn_mbps: f64,
    /// Max delay layer per connected viewer.
    pub layers: Vec<u64>,
    /// Streams received per viewer (0 = rejected).
    pub streams_per_viewer: Vec<usize>,
    /// Join delays in ms.
    pub join_delays_ms: Vec<f64>,
    /// View-change delays in ms.
    pub view_change_delays_ms: Vec<f64>,
    /// Effective (renderable) fraction of delivered bandwidth.
    pub effective_bandwidth: f64,
    /// Mean stream-tree depth.
    pub mean_tree_depth: f64,
    /// Count of layer-bound stream drops.
    pub layer_drops: u64,
    /// Count of subscription protocol messages.
    pub subscription_messages: u64,
    /// Count of victims produced by churn.
    pub victims: u64,
}

/// Runs one scenario to completion and snapshots its metrics.
pub fn run_scenario(scenario: &Scenario) -> RunResult {
    let catalog_len = {
        // The catalog size equals the first site's camera count for
        // canonical views; build cheaply via a probe session of 0 viewers.
        let probe = TelecastSession::builder(scenario.config.clone())
            .viewers(0)
            .build();
        probe.catalog().len()
    };
    let mut session = TelecastSession::builder(scenario.config.clone())
        .viewers(scenario.viewers)
        .build();
    let mut rng = SimRng::seed_from_u64(scenario.workload_seed);
    let workload = ViewerWorkload::builder(scenario.viewers, catalog_len)
        .arrivals(scenario.arrivals)
        .view_choice(scenario.view_choice)
        .view_changes(scenario.view_changes_per_viewer, SimDuration::from_secs(60))
        .departures(scenario.departure_fraction, SimDuration::from_secs(120))
        .build(&mut rng);
    session.run_workload(&workload);

    let m = session.metrics();
    RunResult {
        acceptance_ratio: m.acceptance_ratio(),
        cdn_fraction: session.cdn_stream_fraction(),
        peak_cdn_mbps: m.peak_cdn_mbps(),
        final_cdn_mbps: session.cdn().outbound().used().as_mbps_f64(),
        layers: session.layer_snapshot(),
        streams_per_viewer: session.streams_per_viewer(),
        join_delays_ms: m.join_delays_ms.samples().to_vec(),
        view_change_delays_ms: m.view_change_delays_ms.samples().to_vec(),
        effective_bandwidth: session.effective_bandwidth_ratio(),
        mean_tree_depth: session.mean_tree_depth(),
        layer_drops: m.layer_drops.value(),
        subscription_messages: m.subscription_messages.value(),
        victims: m.victims.value(),
    }
}

// Sweep execution is the shared deterministic executor in `telecast-sim`;
// re-exported here so figure generators and downstream callers keep one
// import path for "run these independent simulations in parallel".
pub use telecast_sim::{parallel_map, parallel_map_with};

/// Builds an empirical CDF as `(value, fraction ≤ value)` points from
/// integer-valued samples — the shape of Figures 14(a)–(c). Thin
/// adapter over the one shared implementation in `telecast_sim::stats`.
pub fn cdf_points(samples: &[f64]) -> Vec<(f64, f64)> {
    telecast_sim::empirical_cdf(samples)
        .points()
        .iter()
        .map(|p| (p.value, p.fraction))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use telecast_net::BandwidthProfile;

    #[test]
    fn scenario_runs_end_to_end() {
        let config = SessionConfig::default()
            .with_outbound(BandwidthProfile::fixed_mbps(8))
            .with_seed(1);
        let result = run_scenario(&Scenario::evaluation(config, 30));
        assert!(result.acceptance_ratio > 0.9);
        assert_eq!(result.streams_per_viewer.len(), 30);
        assert_eq!(result.join_delays_ms.len() as u64, 30);
        assert!(result.final_cdn_mbps > 0.0);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_is_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn cdf_points_accumulate() {
        let pts = cdf_points(&[1.0, 1.0, 2.0, 4.0]);
        assert_eq!(pts, vec![(1.0, 0.5), (2.0, 0.75), (4.0, 1.0)]);
        assert!(cdf_points(&[]).is_empty());
    }
}

#![warn(missing_docs)]

//! Experiment harness reproducing the 4D TeleCast evaluation (§VII).
//!
//! Each figure of the paper has a generator in [`figures`] producing a
//! [`FigureData`] with the same series the paper plots; the `fig*`
//! binaries print them as aligned tables and export JSON next to the
//! terminal output. Scenario plumbing lives in [`harness`]; independent
//! simulation runs of a sweep execute in parallel on the deterministic,
//! order-preserving executor shared through [`telecast_sim::parallel_map`].

pub mod churn;
pub mod cli;
pub mod diurnal;
pub mod figures;
pub mod gate;
pub mod harness;
pub mod json;
pub mod mega;
pub mod spike;
pub mod sweep;
pub mod table;
pub mod tenancy;
pub mod view_storm;

pub use churn::{autoscale_policy_for, run_churn, ChurnOutcome, ChurnScenario};
pub use cli::ScenarioArgs;
pub use diurnal::{run_diurnal, DiurnalOutcome, DiurnalScenario};
pub use figures::Scale;
pub use gate::{GateBaseline, MetricCheck, ScenarioBaseline};
pub use harness::{run_scenario, RunResult, Scenario};
pub use mega::{run_mega, MegaOutcome, MegaScenario};
pub use spike::{run_spike, SpikeOutcome, SpikeScenario};
pub use sweep::{run_epoch_sweep, sweep_figure, SweepCell, SweepScenario};
pub use table::{FigureData, Series};
pub use tenancy::{
    run_tenant_mix, tenant_config, tenant_quota, zipf_split, TenantMixOutcome, TenantMixScenario,
};
pub use view_storm::{run_view_storm, ViewStormOutcome, ViewStormScenario};

/// Prints a figure's table to stdout and writes `results/<id>.json`.
///
/// The binaries call this once per figure; JSON export failures are
/// reported but do not abort the run (the table already printed).
pub fn emit(figure: &FigureData) {
    println!("{}", figure.to_table());
    match figure.write_json("results") {
        Ok(()) => println!("# wrote results/{}.json\n", figure.id),
        Err(err) => eprintln!("# could not write results/{}.json: {err}\n", figure.id),
    }
}

/// [`emit`], plus the machine-local side channel the bench-regression
/// gate reads: `results/<id>.meta.json` carrying the run's wall-clock
/// seconds and the exact invocation arguments (so the gate can refuse
/// to compare results produced by a different invocation than the
/// baseline records). The meta file is *not* part of the deterministic
/// figure export (and is gitignored) — wall clock is the one number
/// that varies between machines.
pub fn emit_with_wall(figure: &FigureData, wall_seconds: f64) {
    emit(figure);
    let invocation: Vec<String> = std::env::args().skip(1).collect();
    let mut meta = String::new();
    meta.push_str("{\n  \"scenario\": ");
    json::write_escaped(&mut meta, &figure.id);
    meta.push_str(",\n  \"args\": ");
    json::write_escaped(&mut meta, &invocation.join(" "));
    meta.push_str(",\n  \"wall_seconds\": ");
    json::write_number(&mut meta, wall_seconds);
    meta.push_str("\n}\n");
    let path = format!("results/{}.meta.json", figure.id);
    if let Err(err) = std::fs::write(&path, meta) {
        eprintln!("# could not write {path}: {err}\n");
    }
}

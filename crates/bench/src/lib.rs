#![warn(missing_docs)]

//! Experiment harness reproducing the 4D TeleCast evaluation (§VII).
//!
//! Each figure of the paper has a generator in [`figures`] producing a
//! [`FigureData`] with the same series the paper plots; the `fig*`
//! binaries print them as aligned tables and export JSON next to the
//! terminal output. Scenario plumbing lives in [`harness`]; independent
//! simulation runs of a sweep execute in parallel on the deterministic,
//! order-preserving executor shared through [`telecast_sim::parallel_map`].

pub mod churn;
pub mod cli;
pub mod diurnal;
pub mod figures;
pub mod harness;
pub mod json;
pub mod table;

pub use churn::{autoscale_policy_for, run_churn, ChurnOutcome, ChurnScenario};
pub use cli::ScenarioArgs;
pub use diurnal::{run_diurnal, DiurnalOutcome, DiurnalScenario};
pub use figures::Scale;
pub use harness::{run_scenario, RunResult, Scenario};
pub use table::{FigureData, Series};

/// Prints a figure's table to stdout and writes `results/<id>.json`.
///
/// The binaries call this once per figure; JSON export failures are
/// reported but do not abort the run (the table already printed).
pub fn emit(figure: &FigureData) {
    println!("{}", figure.to_table());
    match figure.write_json("results") {
        Ok(()) => println!("# wrote results/{}.json\n", figure.id),
        Err(err) => eprintln!("# could not write results/{}.json: {err}\n", figure.id),
    }
}

//! The bench-regression gate: compares key scenario metrics against a
//! checked-in baseline (`BENCH_baseline.json`) with per-metric
//! tolerances, and fails CI on regression.
//!
//! Every scenario bin exports two files: the deterministic figure
//! (`results/<id>.json`, byte-identical per seed) and a machine-local
//! side channel (`results/<id>.meta.json`) carrying the wall-clock
//! seconds of the run. The gate checks
//!
//! * each baselined **metric** (a scalar series of the figure, e.g.
//!   `acceptance_ratio`, `rejected_joins`, `provisioned_mbps_hours`)
//!   against its recorded value within a relative tolerance, and
//! * the **wall clock** against an absolute per-scenario ceiling (CI
//!   machines vary, so the budget is a ceiling, not a tolerance band).
//!
//! Intentional behaviour changes re-record the baseline through
//! [`update_scenario`] (`bench_gate --update`), which refreshes the
//! recorded values while keeping tolerances and wall ceilings.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::json::{self, JsonValue};
use crate::table::FigureData;

/// One baselined metric: a scalar series label, its recorded value, and
/// the relative tolerance the current value may drift within.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricCheck {
    /// The figure series the metric lives in (its last point's y).
    pub label: String,
    /// The recorded baseline value.
    pub value: f64,
    /// Allowed relative drift: the check passes while
    /// `|current − value| ≤ tolerance × max(|value|, 1)`.
    pub tolerance: f64,
}

impl MetricCheck {
    /// Whether `current` is inside this metric's tolerance band.
    pub fn accepts(&self, current: f64) -> bool {
        (current - self.value).abs() <= self.tolerance * self.value.abs().max(1.0)
    }
}

/// The baseline of one scenario: its name (figure id and bin name), the
/// CI invocation it was recorded under, a wall-clock ceiling, and the
/// metric checks.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioBaseline {
    /// Scenario name — the figure id, the binary name, and the
    /// `results/<name>.json` stem.
    pub name: String,
    /// The arguments the baseline was recorded under (documentation;
    /// the gate does not re-run the scenario).
    pub args: String,
    /// Absolute wall-clock budget in seconds for the recorded
    /// invocation; `0` disables the wall check.
    pub max_wall_seconds: f64,
    /// The baselined metrics.
    pub metrics: Vec<MetricCheck>,
}

/// The whole checked-in baseline document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GateBaseline {
    /// Baselines in file order.
    pub scenarios: Vec<ScenarioBaseline>,
}

impl GateBaseline {
    /// Parses a baseline document.
    ///
    /// # Errors
    ///
    /// Returns an error naming the malformed or missing element.
    pub fn from_json(input: &str) -> Result<GateBaseline, String> {
        let doc = json::parse(input).map_err(|e| e.to_string())?;
        let mut scenarios = Vec::new();
        for (i, entry) in doc
            .get("scenarios")
            .and_then(JsonValue::as_array)
            .ok_or("missing array field `scenarios`")?
            .iter()
            .enumerate()
        {
            let string = |key: &str| -> Result<String, String> {
                entry
                    .get(key)
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("scenario {i}: missing string `{key}`"))
            };
            let number = |key: &str| -> Result<f64, String> {
                entry
                    .get(key)
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("scenario {i}: missing number `{key}`"))
            };
            let mut metrics = Vec::new();
            for (j, m) in entry
                .get("metrics")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| format!("scenario {i}: missing array `metrics`"))?
                .iter()
                .enumerate()
            {
                let label = m
                    .get("label")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("scenario {i} metric {j}: missing `label`"))?;
                let value = m
                    .get("value")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("scenario {i} metric {j}: missing `value`"))?;
                let tolerance = m
                    .get("tolerance")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("scenario {i} metric {j}: missing `tolerance`"))?;
                metrics.push(MetricCheck {
                    label: label.to_string(),
                    value,
                    tolerance,
                });
            }
            scenarios.push(ScenarioBaseline {
                name: string("name")?,
                args: string("args").unwrap_or_default(),
                max_wall_seconds: number("max_wall_seconds").unwrap_or(0.0),
                metrics,
            });
        }
        Ok(GateBaseline { scenarios })
    }

    /// Serialises the baseline to the checked-in pretty-JSON form
    /// (round-trip-exact numbers, stable ordering).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"scenarios\": [");
        for (i, s) in self.scenarios.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n      \"name\": ");
            json::write_escaped(&mut out, &s.name);
            out.push_str(",\n      \"args\": ");
            json::write_escaped(&mut out, &s.args);
            out.push_str(",\n      \"max_wall_seconds\": ");
            json::write_number(&mut out, s.max_wall_seconds);
            out.push_str(",\n      \"metrics\": [");
            for (j, m) in s.metrics.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n        {\"label\": ");
                json::write_escaped(&mut out, &m.label);
                out.push_str(", \"value\": ");
                json::write_number(&mut out, m.value);
                out.push_str(", \"tolerance\": ");
                json::write_number(&mut out, m.tolerance);
                out.push('}');
            }
            if !s.metrics.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("]\n    }");
        }
        if !self.scenarios.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// The baseline entry for `name`, if recorded.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioBaseline> {
        self.scenarios.iter().find(|s| s.name == name)
    }
}

/// The y of the last point of the series labelled `label`.
fn metric_value(figure: &FigureData, label: &str) -> Option<f64> {
    figure
        .series
        .iter()
        .find(|s| s.label == label)
        .and_then(|s| s.points.last())
        .map(|&(_, y)| y)
}

/// The machine-local side channel a scenario run leaves next to its
/// figure: wall-clock seconds plus the exact invocation arguments.
struct RunMeta {
    wall_seconds: Option<f64>,
    args: Option<String>,
}

/// Reads `results/<name>.meta.json`; `Ok(None)` when the file does not
/// exist (the scenario was not run on this machine).
///
/// # Errors
///
/// Returns an error only for a present-but-malformed file.
fn read_meta(results_dir: &Path, name: &str) -> Result<Option<RunMeta>, String> {
    let path = results_dir.join(format!("{name}.meta.json"));
    let raw = match fs::read_to_string(&path) {
        Ok(raw) => raw,
        Err(_) => return Ok(None),
    };
    let doc = json::parse(&raw).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(Some(RunMeta {
        wall_seconds: doc.get("wall_seconds").and_then(JsonValue::as_f64),
        args: doc
            .get("args")
            .and_then(JsonValue::as_str)
            .map(str::to_string),
    }))
}

/// Refuses to compare results whose recorded invocation differs from
/// the baseline's — three hand-synchronised copies (CI args, baseline
/// args, the local command line) otherwise drift into misleading
/// "regressions".
fn verify_invocation(baseline: &ScenarioBaseline, meta: &RunMeta) -> Result<(), String> {
    if let Some(args) = &meta.args {
        if args.trim() != baseline.args.trim() {
            return Err(format!(
                "{}: results were produced by `{}` but the baseline records `{}`; \
                 re-run the scenario with the baseline invocation (or --update after \
                 changing the baseline's args)",
                baseline.name,
                args.trim(),
                baseline.args.trim()
            ));
        }
    }
    Ok(())
}

/// Loads `results/<name>.json` as a figure.
fn read_figure(results_dir: &Path, name: &str) -> Result<FigureData, String> {
    let path = results_dir.join(format!("{name}.json"));
    let raw = fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read {} ({e}); run the scenario first",
            path.display()
        )
    })?;
    FigureData::from_json(&raw).map_err(|e| format!("{}: {e}", path.display()))
}

/// Evaluates one scenario's current results against its baseline in a
/// single pass over the inputs: returns the rendered per-metric report
/// and the list of regression messages (empty = the gate passes).
///
/// # Errors
///
/// Returns an error when the inputs are missing or malformed, or when
/// the results were produced by a different invocation than the
/// baseline records (as opposed to a regression, which is a non-empty
/// failure list).
pub fn evaluate_scenario(
    baseline: &ScenarioBaseline,
    results_dir: &Path,
) -> Result<(String, Vec<String>), String> {
    let figure = read_figure(results_dir, &baseline.name)?;
    let meta = read_meta(results_dir, &baseline.name)?;
    if let Some(meta) = &meta {
        verify_invocation(baseline, meta)?;
    }
    let mut report = String::new();
    let mut failures = Vec::new();
    for m in &baseline.metrics {
        let current = metric_value(&figure, &m.label);
        let verdict = match current {
            Some(c) if m.accepts(c) => "ok",
            Some(_) => "REGRESSED",
            None => "MISSING",
        };
        let _ = writeln!(
            report,
            "  {:<28} current {:>14} baseline {:>14} ±{:>4.0}%  {}",
            m.label,
            current.map_or("-".to_string(), |c| format!("{c:.4}")),
            format!("{:.4}", m.value),
            m.tolerance * 100.0,
            verdict
        );
        match current {
            None => failures.push(format!(
                "{}: metric `{}` missing from results",
                baseline.name, m.label
            )),
            Some(current) if !m.accepts(current) => failures.push(format!(
                "{}: `{}` regressed — current {current} vs baseline {} (±{:.0}%)",
                baseline.name,
                m.label,
                m.value,
                m.tolerance * 100.0
            )),
            Some(_) => {}
        }
    }
    if baseline.max_wall_seconds > 0.0 {
        let wall = meta.and_then(|m| m.wall_seconds).ok_or_else(|| {
            format!(
                "cannot read {}.meta.json wall seconds; run the scenario first",
                results_dir.join(&baseline.name).display()
            )
        })?;
        if wall > baseline.max_wall_seconds {
            failures.push(format!(
                "{}: wall clock {wall:.1}s exceeds the {:.0}s budget",
                baseline.name, baseline.max_wall_seconds
            ));
        }
    }
    Ok((report, failures))
}

/// [`evaluate_scenario`]'s failure list alone.
///
/// # Errors
///
/// See [`evaluate_scenario`].
pub fn check_scenario(
    baseline: &ScenarioBaseline,
    results_dir: &Path,
) -> Result<Vec<String>, String> {
    evaluate_scenario(baseline, results_dir).map(|(_, failures)| failures)
}

/// Re-records one scenario's baseline values from the current results,
/// keeping tolerances and the wall ceiling — the update path for
/// intentional behaviour changes.
///
/// # Errors
///
/// Returns an error when the current results are missing a baselined
/// metric (stale baselines should be pruned explicitly, not silently),
/// when the results carry no run metadata (nothing proves what produced
/// them — run the scenario first), or when they were produced by a
/// different invocation than the baseline records.
pub fn update_scenario(baseline: &mut ScenarioBaseline, results_dir: &Path) -> Result<(), String> {
    let figure = read_figure(results_dir, &baseline.name)?;
    let meta = read_meta(results_dir, &baseline.name)?.ok_or_else(|| {
        format!(
            "{}: no run metadata next to the results; run the scenario \
             (with the baseline's args) before --update",
            baseline.name
        )
    })?;
    verify_invocation(baseline, &meta)?;
    for m in &mut baseline.metrics {
        m.value = metric_value(&figure, &m.label).ok_or_else(|| {
            format!(
                "{}: metric `{}` missing from current results",
                baseline.name, m.label
            )
        })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Series;

    fn dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "telecast-gate-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn figure(id: &str, ratio: f64) -> FigureData {
        FigureData {
            id: id.into(),
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series::new("acceptance_ratio", vec![(100.0, ratio)])],
        }
    }

    fn baseline(name: &str, value: f64, tol: f64, wall: f64) -> ScenarioBaseline {
        ScenarioBaseline {
            name: name.into(),
            args: "--viewers 100".into(),
            max_wall_seconds: wall,
            metrics: vec![MetricCheck {
                label: "acceptance_ratio".into(),
                value,
                tolerance: tol,
            }],
        }
    }

    #[test]
    fn baseline_json_round_trips() {
        let doc = GateBaseline {
            scenarios: vec![baseline("spike_storm", 0.95, 0.05, 240.0)],
        };
        let parsed = GateBaseline::from_json(&doc.to_json()).unwrap();
        assert_eq!(parsed, doc);
        assert!(parsed.scenario("spike_storm").is_some());
        assert!(parsed.scenario("nope").is_none());
        assert!(GateBaseline::from_json("{}").is_err());
    }

    #[test]
    fn gate_passes_inside_tolerance_and_fails_outside() {
        let d = dir();
        figure("s", 0.93).write_json(&d).unwrap();
        fs::write(d.join("s.meta.json"), "{\"wall_seconds\": 12.5}").unwrap();
        let b = baseline("s", 0.95, 0.05, 240.0);
        assert!(check_scenario(&b, &d).unwrap().is_empty());
        // 0.93 vs 0.95 at 1% of max(0.95,1)=1 → |Δ|=0.02 > 0.01: fail.
        let tight = baseline("s", 0.95, 0.01, 240.0);
        let failures = check_scenario(&tight, &d).unwrap();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("regressed"), "{failures:?}");
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn gate_enforces_the_wall_budget_and_missing_inputs() {
        let d = dir();
        figure("s", 0.95).write_json(&d).unwrap();
        // No meta file yet: the wall check reports an actionable error.
        let b = baseline("s", 0.95, 0.05, 100.0);
        assert!(check_scenario(&b, &d)
            .unwrap_err()
            .contains("run the scenario first"));
        fs::write(d.join("s.meta.json"), "{\"wall_seconds\": 150.0}").unwrap();
        let failures = check_scenario(&b, &d).unwrap();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("wall clock"), "{failures:?}");
        // A zero ceiling disables the wall check.
        let no_wall = baseline("s", 0.95, 0.05, 0.0);
        assert!(check_scenario(&no_wall, &d).unwrap().is_empty());
        // Missing results are an error, not a silent pass.
        let missing = baseline("absent", 1.0, 0.1, 0.0);
        assert!(check_scenario(&missing, &d).is_err());
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn gate_flags_metrics_missing_from_results() {
        let d = dir();
        figure("s", 0.95).write_json(&d).unwrap();
        let mut b = baseline("s", 0.95, 0.05, 0.0);
        b.metrics.push(MetricCheck {
            label: "no_such_series".into(),
            value: 1.0,
            tolerance: 0.1,
        });
        let failures = check_scenario(&b, &d).unwrap();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("missing"), "{failures:?}");
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn update_re_records_values_but_keeps_tolerances() {
        let d = dir();
        figure("s", 0.80).write_json(&d).unwrap();
        let mut b = baseline("s", 0.95, 0.05, 240.0);
        // No run metadata: nothing proves what produced the results, so
        // the update path refuses instead of silently re-recording.
        assert!(update_scenario(&mut b, &d)
            .unwrap_err()
            .contains("no run metadata"));
        fs::write(
            d.join("s.meta.json"),
            "{\"args\": \"--viewers 100\", \"wall_seconds\": 9.0}",
        )
        .unwrap();
        update_scenario(&mut b, &d).unwrap();
        assert_eq!(b.metrics[0].value, 0.80);
        assert_eq!(b.metrics[0].tolerance, 0.05);
        assert_eq!(b.max_wall_seconds, 240.0);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn gate_refuses_results_from_a_different_invocation() {
        let d = dir();
        figure("s", 0.95).write_json(&d).unwrap();
        fs::write(
            d.join("s.meta.json"),
            "{\"args\": \"--viewers 9999\", \"wall_seconds\": 1.0}",
        )
        .unwrap();
        let b = baseline("s", 0.95, 0.05, 240.0); // records --viewers 100
        let err = check_scenario(&b, &d).unwrap_err();
        assert!(err.contains("different invocation") || err.contains("baseline records"));
        let mut b2 = baseline("s", 0.95, 0.05, 240.0);
        assert!(update_scenario(&mut b2, &d).is_err());
        assert_eq!(b2.metrics[0].value, 0.95, "mismatch must not re-record");
        fs::remove_dir_all(&d).unwrap();
    }
}

//! Figure 14 bench: the view-synchronization workload (delay-layer
//! subscription at join, and the join/view-change protocol overhead).
//! Full-scale figures come from the `fig14a/b/c` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use telecast::SessionConfig;
use telecast_bench::{run_scenario, Scenario};
use telecast_cdn::CdnConfig;
use telecast_net::{Bandwidth, BandwidthProfile};

fn bench_fig14(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14");
    group.sample_size(10);
    group.bench_function("layer_subscription_100_viewers", |b| {
        b.iter(|| {
            let config = SessionConfig::default()
                .with_seed(14)
                .with_outbound(BandwidthProfile::uniform_mbps(0, 12))
                .with_cdn(CdnConfig::default().with_outbound(Bandwidth::from_mbps(600)));
            let r = run_scenario(&Scenario::evaluation(config, 100));
            (r.layers.len(), r.streams_per_viewer.len())
        })
    });
    group.bench_function("join_plus_view_changes_100_viewers", |b| {
        b.iter(|| {
            let config = SessionConfig::default()
                .with_seed(14)
                .with_outbound(BandwidthProfile::uniform_mbps(0, 12))
                .with_cdn(CdnConfig::default().with_outbound(Bandwidth::from_mbps(600)));
            let r = run_scenario(&Scenario::evaluation(config, 100).with_view_changes(0.5));
            r.view_change_delays_ms.len()
        })
    });
    group.finish();
}

criterion_group!(fig14, bench_fig14);
criterion_main!(fig14);

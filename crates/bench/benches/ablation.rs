//! Ablation bench: the design-choice comparisons of DESIGN.md (outbound
//! policy, placement rule, layering) timed at a reduced population. The
//! full sweeps come from the `ablations` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use telecast::{OutboundPolicy, PlacementStrategy, SessionConfig};
use telecast_baselines::no_layering;
use telecast_bench::{run_scenario, Scenario};
use telecast_cdn::CdnConfig;
use telecast_net::{Bandwidth, BandwidthProfile};

fn config() -> SessionConfig {
    SessionConfig::default()
        .with_seed(99)
        .with_outbound(BandwidthProfile::uniform_mbps(2, 10))
        .with_cdn(CdnConfig::default().with_outbound(Bandwidth::from_mbps(400)))
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for (name, policy) in [
        ("round_robin", OutboundPolicy::RoundRobin),
        ("priority_first", OutboundPolicy::PriorityFirst),
        ("equal_split", OutboundPolicy::EqualSplit),
    ] {
        group.bench_with_input(BenchmarkId::new("outbound", name), &policy, |b, &policy| {
            b.iter(|| {
                let mut cfg = config();
                cfg.outbound_policy = policy;
                run_scenario(&Scenario::evaluation(cfg, 100)).acceptance_ratio
            })
        });
    }
    for (name, placement) in [
        ("push_down", PlacementStrategy::PushDown),
        ("first_fit", PlacementStrategy::Fifo),
    ] {
        group.bench_with_input(
            BenchmarkId::new("placement", name),
            &placement,
            |b, &placement| {
                b.iter(|| {
                    let mut cfg = config();
                    cfg.placement = placement;
                    run_scenario(&Scenario::evaluation(cfg, 100)).mean_tree_depth
                })
            },
        );
    }
    group.bench_function("layering_off", |b| {
        b.iter(|| {
            run_scenario(&Scenario::evaluation(no_layering(config()), 100)).effective_bandwidth
        })
    });
    group.finish();
}

criterion_group!(ablation, bench_ablation);
criterion_main!(ablation);

//! Micro-benchmarks of the building blocks: event engine, degree
//! push-down, bandwidth allocation, layer arithmetic, latency synthesis.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use telecast::alloc::{allocate_inbound, allocate_outbound};
use telecast::{LayerScheme, OutboundPolicy};
use telecast_media::{PrioritizedStream, ProducerSite, SiteId, StreamId, ViewCatalog, ViewId};
use telecast_net::{Bandwidth, NodeKind, NodeRegistry, Region, SyntheticPlanetLab};
use telecast_overlay::StreamTree;
use telecast_sim::{Engine, SimDuration, SimTime};

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine/schedule_pop_10k", |b| {
        b.iter(|| {
            let mut engine = Engine::new();
            for i in 0..10_000u64 {
                engine.schedule_at(SimTime::from_micros(i * 37 % 10_000), i);
            }
            let mut sum = 0u64;
            while let Some(f) = engine.pop() {
                sum = sum.wrapping_add(f.payload);
            }
            sum
        })
    });
}

fn bench_push_down(c: &mut Criterion) {
    let mut reg = NodeRegistry::new();
    let ids: Vec<_> = (0..1_000)
        .map(|_| reg.add(NodeKind::Viewer, Region::NorthAmerica))
        .collect();
    c.bench_function("overlay/push_down_insert_1000", |b| {
        b.iter_batched(
            || StreamTree::new(StreamId::new(SiteId::new(0), 0)),
            |mut tree| {
                for (i, &v) in ids.iter().enumerate() {
                    let deg = (i % 5) as u32;
                    let cap = Bandwidth::from_mbps(2 * deg as u64);
                    if tree.insert(v, deg, cap).is_none() {
                        tree.attach_to_cdn(v, deg, cap);
                    }
                }
                tree.len()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_allocation(c: &mut Criterion) {
    let streams: Vec<PrioritizedStream> = (0..6)
        .map(|i| PrioritizedStream {
            stream: StreamId::new(SiteId::new((i % 2) as u16), i as u16),
            df: 1.0 - 0.1 * i as f64,
            eta: i as u32 / 2 + 1,
            bitrate_kbps: 2_000,
        })
        .collect();
    c.bench_function("alloc/inbound_plus_outbound", |b| {
        b.iter(|| {
            let plan = allocate_inbound(&streams, Bandwidth::from_mbps(12), |_, _| true);
            allocate_outbound(
                &plan.accepted,
                Bandwidth::from_mbps(10),
                OutboundPolicy::RoundRobin,
            )
            .outbound_used
        })
    });
}

fn bench_layers(c: &mut Criterion) {
    let scheme = LayerScheme::new(
        SimDuration::from_secs(60),
        SimDuration::from_millis(300),
        2,
        SimDuration::from_secs(65),
    );
    c.bench_function("layers/push_down_6_streams", |b| {
        b.iter(|| {
            let mut layers = [0u64, 3, 1, 7, 2, 5];
            scheme.push_down(&mut layers);
            layers
        })
    });
}

fn bench_catalog(c: &mut Criterion) {
    let sites = ProducerSite::teeve_pair();
    c.bench_function("media/canonical_catalog", |b| {
        b.iter(|| ViewCatalog::canonical(&sites, 3))
    });
    let catalog = ViewCatalog::canonical(&sites, 3);
    c.bench_function("media/streams_by_priority", |b| {
        b.iter(|| catalog.view(ViewId::new(0)).streams_by_priority())
    });
}

fn bench_planetlab(c: &mut Criterion) {
    let mut reg = NodeRegistry::new();
    for i in 0..200 {
        reg.add(NodeKind::Viewer, Region::ALL[i % 5]);
    }
    c.bench_function("net/synthetic_planetlab_200", |b| {
        b.iter(|| SyntheticPlanetLab::generate(&reg, 42).len())
    });
}

criterion_group!(
    micro,
    bench_engine,
    bench_push_down,
    bench_allocation,
    bench_layers,
    bench_catalog,
    bench_planetlab
);
criterion_main!(micro);

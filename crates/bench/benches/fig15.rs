//! Figure 15 bench: TeleCast vs the Random dissemination baseline on the
//! same workload. Full-scale curves come from the `fig15a/b` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use telecast::SessionConfig;
use telecast_baselines::random_dissemination;
use telecast_bench::{run_scenario, Scenario};
use telecast_cdn::CdnConfig;
use telecast_net::{Bandwidth, BandwidthProfile};

fn config() -> SessionConfig {
    SessionConfig::default()
        .with_seed(15)
        .with_outbound(BandwidthProfile::uniform_mbps(2, 14))
        .with_cdn(CdnConfig::default().with_outbound(Bandwidth::from_mbps(600)))
}

fn bench_fig15(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15");
    group.sample_size(10);
    group.bench_function("telecast_100_viewers", |b| {
        b.iter(|| run_scenario(&Scenario::evaluation(config(), 100)).acceptance_ratio)
    });
    group.bench_function("random_100_viewers", |b| {
        b.iter(|| {
            run_scenario(&Scenario::evaluation(random_dissemination(config()), 100))
                .acceptance_ratio
        })
    });
    group.finish();
}

criterion_group!(fig15, bench_fig15);
criterion_main!(fig15);

//! Property tests of the session routing table: it behaves as a map from
//! (stream, parent) to a duplicate-free fan-out under arbitrary add /
//! update / remove sequences.

use proptest::prelude::*;
use telecast_media::{FrameNumber, SiteId, StreamId};
use telecast_net::{NodeId, NodeKind, NodeRegistry, Region};
use telecast_overlay::{SessionRoutingTable, SubscriptionPoint};

#[derive(Debug, Clone)]
enum Op {
    Add {
        stream: u16,
        parent: u8,
        child: u8,
        frame: Option<u64>,
    },
    Update {
        stream: u16,
        parent: u8,
        child: u8,
        frame: u64,
    },
    Remove {
        stream: u16,
        parent: u8,
        child: u8,
    },
    RemoveStream {
        stream: u16,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..4, 0u8..6, 0u8..6, proptest::option::of(0u64..1000)).prop_map(
            |(stream, parent, child, frame)| Op::Add {
                stream,
                parent,
                child,
                frame
            }
        ),
        (0u16..4, 0u8..6, 0u8..6, 0u64..1000).prop_map(|(stream, parent, child, frame)| {
            Op::Update {
                stream,
                parent,
                child,
                frame,
            }
        }),
        (0u16..4, 0u8..6, 0u8..6).prop_map(|(stream, parent, child)| Op::Remove {
            stream,
            parent,
            child
        }),
        (0u16..4).prop_map(|stream| Op::RemoveStream { stream }),
    ]
}

fn nodes() -> Vec<NodeId> {
    let mut reg = NodeRegistry::new();
    (0..6)
        .map(|_| reg.add(NodeKind::Viewer, Region::Europe))
        .collect()
}

fn sid(stream: u16) -> StreamId {
    StreamId::new(SiteId::new(0), stream)
}

proptest! {
    /// The table agrees with a reference model (map of sets) after any
    /// operation sequence, and fan-outs never contain duplicates.
    #[test]
    fn routing_table_matches_reference_model(ops in proptest::collection::vec(arb_op(), 0..200)) {
        let ids = nodes();
        let mut table = SessionRoutingTable::new();
        let mut model: std::collections::BTreeMap<(StreamId, NodeId),
            std::collections::BTreeMap<NodeId, SubscriptionPoint>> = Default::default();
        for op in ops {
            match op {
                Op::Add { stream, parent, child, frame } => {
                    let point = match frame {
                        Some(n) => SubscriptionPoint::Frame(FrameNumber::new(n)),
                        None => SubscriptionPoint::Live,
                    };
                    table.add_forward(sid(stream), ids[parent as usize], ids[child as usize], point);
                    model
                        .entry((sid(stream), ids[parent as usize]))
                        .or_default()
                        .insert(ids[child as usize], point);
                }
                Op::Update { stream, parent, child, frame } => {
                    let point = SubscriptionPoint::Frame(FrameNumber::new(frame));
                    let updated = table.update_subscription(
                        sid(stream), ids[parent as usize], ids[child as usize], point);
                    let exists = model
                        .get(&(sid(stream), ids[parent as usize]))
                        .map(|m| m.contains_key(&ids[child as usize]))
                        .unwrap_or(false);
                    prop_assert_eq!(updated, exists);
                    if exists {
                        model
                            .get_mut(&(sid(stream), ids[parent as usize]))
                            .expect("checked")
                            .insert(ids[child as usize], point);
                    }
                }
                Op::Remove { stream, parent, child } => {
                    let removed = table.remove_forward(
                        sid(stream), ids[parent as usize], ids[child as usize]);
                    let key = (sid(stream), ids[parent as usize]);
                    let existed = model
                        .get_mut(&key)
                        .map(|m| m.remove(&ids[child as usize]).is_some())
                        .unwrap_or(false);
                    if model.get(&key).map(|m| m.is_empty()).unwrap_or(false) {
                        model.remove(&key);
                    }
                    prop_assert_eq!(removed, existed);
                }
                Op::RemoveStream { stream } => {
                    let removed = table.remove_stream(sid(stream));
                    let keys: Vec<_> = model
                        .keys()
                        .filter(|(s, _)| *s == sid(stream))
                        .copied()
                        .collect();
                    prop_assert_eq!(removed, keys.len());
                    for k in keys {
                        model.remove(&k);
                    }
                }
            }
            // Full-state comparison.
            prop_assert_eq!(table.len(), model.len());
            for (key, fanout) in &model {
                let entry = table.matching(key.0, key.1).expect("model says present");
                prop_assert_eq!(entry.forwards().len(), fanout.len(), "duplicate fan-out");
                for (child, action, point) in entry.forwards() {
                    prop_assert_eq!(fanout.get(child), Some(point));
                    let _ = action;
                }
            }
        }
    }
}

//! Property tests of the degree push-down trees: structural invariants
//! hold under arbitrary join/leave sequences, and the push-down edge
//! property (parents are never weaker than their children) holds for
//! join-only histories.

use proptest::prelude::*;
use telecast_media::{SiteId, StreamId};
use telecast_net::{Bandwidth, NodeId, NodeKind, NodeRegistry, Region};
use telecast_overlay::{StreamTree, TreeParent};

fn ids(n: usize) -> Vec<NodeId> {
    let mut reg = NodeRegistry::new();
    (0..n)
        .map(|_| reg.add(NodeKind::Viewer, Region::NorthAmerica))
        .collect()
}

fn stream() -> StreamId {
    StreamId::new(SiteId::new(0), 0)
}

/// What a reference breadth-first scan would decide for one attach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefPlan {
    /// Attach to a free slot under this member.
    Free(NodeId),
    /// Displace this member.
    Displace(NodeId),
}

/// A from-scratch reference of Algorithm 1's breadth-first scan, built
/// only from the tree's public getters (members, depths, free slots,
/// strengths) with no access to the maintained planner indexes: walking
/// depths shallow-to-deep, free child slots of level-`d−1` parents are
/// offered before displacement of level-`d` members; candidates order by
/// ascending `(out_degree, C_obw, id)`, and displacement requires the
/// joiner to be strictly stronger in `(out_degree, C_obw)`.
fn reference_bfs_plan(
    tree: &StreamTree,
    deg: u32,
    cap: Bandwidth,
    can_displace: bool,
) -> Option<RefPlan> {
    let mut levels: std::collections::BTreeMap<usize, Vec<(u32, Bandwidth, NodeId)>> =
        Default::default();
    for m in tree.members() {
        let d = tree.depth_of(m).expect("member has a depth");
        levels.entry(d).or_default().push((
            tree.out_degree_of(m).expect("member"),
            tree.outbound_capacity_of(m).expect("member"),
            m,
        ));
    }
    let deepest = levels.keys().next_back().copied()?;
    for set in levels.values_mut() {
        set.sort_unstable();
    }
    for d in 0..=deepest + 1 {
        if d > 0 {
            if let Some(above) = levels.get(&(d - 1)) {
                if let Some(&(_, _, parent)) =
                    above.iter().find(|&&(_, _, id)| tree.free_slots_of(id) > 0)
                {
                    return Some(RefPlan::Free(parent));
                }
            }
        }
        if can_displace {
            if let Some(level) = levels.get(&d) {
                let &(wdeg, wcap, victim) = level.first().expect("levels are non-empty");
                if deg > wdeg || (deg == wdeg && cap > wcap) {
                    return Some(RefPlan::Displace(victim));
                }
            }
        }
    }
    None
}

/// Recomputes a member's depth by walking its parent chain.
fn fresh_depth(tree: &StreamTree, member: NodeId) -> usize {
    let mut depth = 0;
    let mut cursor = member;
    loop {
        match tree.parent_of(cursor).expect("member chain stays in tree") {
            TreeParent::Cdn => return depth,
            TreeParent::Viewer(p) => {
                depth += 1;
                cursor = p;
            }
        }
    }
}

proptest! {
    /// Join-only histories: invariants hold, every join lands somewhere
    /// (tree or CDN), and the lexicographic (degree, capacity) edge
    /// property of the paper's Overlay Property holds.
    #[test]
    fn joins_maintain_invariants(degrees in proptest::collection::vec(0u32..8, 1..80)) {
        let viewers = ids(degrees.len());
        let mut tree = StreamTree::new(stream());
        for (i, &deg) in degrees.iter().enumerate() {
            let cap = Bandwidth::from_mbps(2 * deg as u64);
            match tree.insert(viewers[i], deg, cap) {
                Some(_) => {}
                None => tree.attach_to_cdn(viewers[i], deg, cap),
            }
            prop_assert!(tree.check_invariants().is_ok(),
                "{:?}", tree.check_invariants());
        }
        prop_assert_eq!(tree.len(), degrees.len());
        // Edge property: a viewer parent is never lexicographically weaker
        // than its child.
        for m in tree.members().collect::<Vec<_>>() {
            if let Some(TreeParent::Viewer(p)) = tree.parent_of(m) {
                let dm = tree.out_degree_of(m).unwrap();
                let dp = tree.out_degree_of(p).unwrap();
                prop_assert!(dp >= dm, "parent degree {dp} < child degree {dm}");
            }
        }
    }

    /// Mixed join/leave histories keep the tree structurally sound;
    /// victims are re-rooted at the CDN and stay members.
    #[test]
    fn churn_maintains_invariants(
        ops in proptest::collection::vec((any::<bool>(), 0u32..6), 1..120),
    ) {
        let viewers = ids(ops.len());
        let mut tree = StreamTree::new(stream());
        let mut present: Vec<NodeId> = Vec::new();
        for (i, &(is_join, deg)) in ops.iter().enumerate() {
            if is_join || present.is_empty() {
                let v = viewers[i];
                let cap = Bandwidth::from_mbps(deg as u64);
                if tree.insert(v, deg, cap).is_none() {
                    tree.attach_to_cdn(v, deg, cap);
                }
                present.push(v);
            } else {
                // Deterministic pseudo-random pick.
                let idx = (i * 7919) % present.len();
                let v = present.swap_remove(idx);
                let victims = tree.remove(v);
                for victim in victims {
                    prop_assert!(tree.contains(victim));
                    prop_assert_eq!(tree.parent_of(victim), Some(TreeParent::Cdn));
                }
            }
            prop_assert!(tree.check_invariants().is_ok(),
                "{:?}", tree.check_invariants());
        }
        prop_assert_eq!(tree.len(), present.len());
    }

    /// The per-level attach planner reproduces the reference BFS
    /// decision of Algorithm 1: across random insert/remove/reposition
    /// sequences, every insert lands exactly where a from-scratch
    /// breadth-first scan over the current tree would put it.
    #[test]
    fn planner_matches_reference_bfs(
        ops in proptest::collection::vec((0u8..4, 0u32..5, 0u32..8), 1..100),
    ) {
        let viewers = ids(ops.len());
        let mut tree = StreamTree::new(stream());
        let mut present: Vec<NodeId> = Vec::new();
        for (i, &(op, deg, cap_mbps)) in ops.iter().enumerate() {
            let cap = Bandwidth::from_mbps(cap_mbps as u64);
            match op {
                // Three in four ops insert, so trees grow deep enough to
                // exercise multi-level planning.
                0..=2 => {
                    let v = viewers[i];
                    let expected = reference_bfs_plan(&tree, deg, cap, deg > 0);
                    let got = tree.insert(v, deg, cap);
                    match expected {
                        None => {
                            prop_assert_eq!(got, None, "planner found a position BFS rejects");
                            tree.attach_to_cdn(v, deg, cap);
                        }
                        Some(RefPlan::Free(parent)) => {
                            prop_assert_eq!(got, Some(TreeParent::Viewer(parent)),
                                "planner picked a different free slot than the BFS");
                        }
                        Some(RefPlan::Displace(victim)) => {
                            // The insert returns the victim's old parent;
                            // the victim must now hang under the joiner.
                            prop_assert!(got.is_some());
                            prop_assert_eq!(tree.parent_of(victim), Some(TreeParent::Viewer(v)),
                                "planner displaced a different victim than the BFS");
                        }
                    }
                    present.push(v);
                }
                3 if !present.is_empty() => {
                    let idx = (i * 2654435761) % present.len();
                    let v = present.swap_remove(idx);
                    tree.remove(v);
                }
                _ => {
                    // Reposition a random CDN child (if any) instead.
                    let cdn: Vec<NodeId> = tree.cdn_children().collect();
                    if !cdn.is_empty() {
                        let v = cdn[(i * 7919) % cdn.len()];
                        let _ = tree.reposition_from_cdn(v);
                    }
                }
            }
            prop_assert!(tree.check_invariants().is_ok(),
                "{:?}", tree.check_invariants());
        }
    }

    /// Interleaved remove/reattach sequences keep the maintained depth
    /// bookkeeping (`metrics().max_depth`, `depth_of`) consistent with a
    /// fresh recomputation from the parent pointers.
    #[test]
    fn remove_reattach_keeps_depth_metrics_fresh(
        ops in proptest::collection::vec((any::<bool>(), 1u32..5), 1..80),
    ) {
        let viewers = ids(ops.len());
        let mut tree = StreamTree::new(stream());
        let mut present: Vec<NodeId> = Vec::new();
        for (i, &(is_join, deg)) in ops.iter().enumerate() {
            if is_join || present.len() < 2 {
                let v = viewers[i];
                let cap = Bandwidth::from_mbps(deg as u64);
                if tree.insert(v, deg, cap).is_none() {
                    tree.attach_to_cdn(v, deg, cap);
                }
                present.push(v);
            } else {
                let idx = (i * 7919) % present.len();
                let v = present.swap_remove(idx);
                let victims = tree.remove(v);
                // Reattach one victim P2P, mirroring §VI recovery.
                if let Some(&victim) = victims.first() {
                    let _ = tree.reposition_from_cdn(victim);
                }
            }
            prop_assert_eq!(tree.len(), present.len());
            let fresh: Vec<usize> = tree
                .members()
                .map(|m| fresh_depth(&tree, m))
                .collect();
            let fresh_max = fresh.iter().copied().max().unwrap_or(0);
            let metrics = tree.metrics();
            prop_assert_eq!(metrics.max_depth, fresh_max,
                "maintained max_depth diverged from recomputation");
            prop_assert_eq!(metrics.members, present.len());
            for (m, d) in tree.members().collect::<Vec<_>>().into_iter().zip(fresh) {
                prop_assert_eq!(tree.depth_of(m), Some(d));
            }
        }
    }

    /// The prune/merge pass preserves every structural invariant and
    /// never strands a connected viewer: after arbitrary churn leaves a
    /// forest of CDN-rooted fragments, repeated `merge_cdn_fragments`
    /// passes keep the member set identical (check_invariants
    /// re-verifies reachability from the roots, so identical membership
    /// means nobody is cut off), keep at least one CDN root in a
    /// non-empty tree, and converge — every pass that reports a change
    /// folded at least one root away, so the pass count is bounded by
    /// the initial root count.
    #[test]
    fn prune_merge_preserves_invariants_and_strands_nobody(
        ops in proptest::collection::vec((0u8..4, 0u32..6, 0u32..8), 1..120),
    ) {
        let viewers = ids(ops.len());
        let mut tree = StreamTree::new(stream());
        let mut present: Vec<NodeId> = Vec::new();
        for (i, &(op, deg, cap_mbps)) in ops.iter().enumerate() {
            let cap = Bandwidth::from_mbps(cap_mbps as u64);
            if op != 3 || present.is_empty() {
                let v = viewers[i];
                if tree.insert(v, deg, cap).is_none() {
                    tree.attach_to_cdn(v, deg, cap);
                }
                present.push(v);
            } else {
                let idx = (i * 7919) % present.len();
                let v = present.swap_remove(idx);
                tree.remove(v);
            }
        }
        let before: std::collections::BTreeSet<NodeId> = tree.members().collect();
        let mut passes = 0usize;
        loop {
            let root_count = tree.cdn_children().count();
            let merged = tree.merge_cdn_fragments();
            prop_assert!(tree.check_invariants().is_ok(),
                "{:?}", tree.check_invariants());
            let after: std::collections::BTreeSet<NodeId> = tree.members().collect();
            prop_assert_eq!(&before, &after, "merge changed the member set");
            if !tree.is_empty() {
                prop_assert!(tree.cdn_children().count() >= 1,
                    "merge lost the last CDN root");
            }
            for &(root, parent) in &merged {
                prop_assert_eq!(tree.parent_of(root), Some(parent),
                    "reported merge target is not the root's parent");
            }
            if merged.is_empty() {
                break;
            }
            // Both merge outcomes — a root folded under a P2P parent, or
            // a root displacing a weaker root off its CDN slot — shrink
            // the forest, so convergence is bounded by the root count.
            prop_assert!(tree.cdn_children().count() < root_count,
                "a reported merge pass did not shrink the CDN forest");
            passes += 1;
            prop_assert!(passes <= ops.len(), "merge failed to converge");
        }
    }

    /// Depth never exceeds member count, and with all-equal degrees ≥ 1
    /// the tree accepts everyone P2P after the first CDN seed.
    #[test]
    fn equal_degree_viewers_all_fit(count in 1usize..60, degree in 1u32..4) {
        let viewers = ids(count);
        let mut tree = StreamTree::new(stream());
        let cap = Bandwidth::from_mbps(2);
        tree.attach_to_cdn(viewers[0], degree, cap);
        let mut rejected = 0;
        for &v in &viewers[1..] {
            if tree.insert(v, degree, cap).is_none() {
                rejected += 1;
            }
        }
        // With degree ≥ 1 every member adds at least one slot: capacity
        // grows at least as fast as membership, so nobody is rejected.
        prop_assert_eq!(rejected, 0);
        for v in tree.members().collect::<Vec<_>>() {
            prop_assert!(tree.depth_of(v).unwrap() < count);
        }
    }
}

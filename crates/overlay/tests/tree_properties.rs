//! Property tests of the degree push-down trees: structural invariants
//! hold under arbitrary join/leave sequences, and the push-down edge
//! property (parents are never weaker than their children) holds for
//! join-only histories.

use proptest::prelude::*;
use telecast_media::{SiteId, StreamId};
use telecast_net::{Bandwidth, NodeId, NodeKind, NodeRegistry, Region};
use telecast_overlay::{StreamTree, TreeParent};

fn ids(n: usize) -> Vec<NodeId> {
    let mut reg = NodeRegistry::new();
    (0..n)
        .map(|_| reg.add(NodeKind::Viewer, Region::NorthAmerica))
        .collect()
}

fn stream() -> StreamId {
    StreamId::new(SiteId::new(0), 0)
}

proptest! {
    /// Join-only histories: invariants hold, every join lands somewhere
    /// (tree or CDN), and the lexicographic (degree, capacity) edge
    /// property of the paper's Overlay Property holds.
    #[test]
    fn joins_maintain_invariants(degrees in proptest::collection::vec(0u32..8, 1..80)) {
        let viewers = ids(degrees.len());
        let mut tree = StreamTree::new(stream());
        for (i, &deg) in degrees.iter().enumerate() {
            let cap = Bandwidth::from_mbps(2 * deg as u64);
            match tree.insert(viewers[i], deg, cap) {
                Some(_) => {}
                None => tree.attach_to_cdn(viewers[i], deg, cap),
            }
            prop_assert!(tree.check_invariants().is_ok(),
                "{:?}", tree.check_invariants());
        }
        prop_assert_eq!(tree.len(), degrees.len());
        // Edge property: a viewer parent is never lexicographically weaker
        // than its child.
        for m in tree.members().collect::<Vec<_>>() {
            if let Some(TreeParent::Viewer(p)) = tree.parent_of(m) {
                let dm = tree.out_degree_of(m).unwrap();
                let dp = tree.out_degree_of(p).unwrap();
                prop_assert!(dp >= dm, "parent degree {dp} < child degree {dm}");
            }
        }
    }

    /// Mixed join/leave histories keep the tree structurally sound;
    /// victims are re-rooted at the CDN and stay members.
    #[test]
    fn churn_maintains_invariants(
        ops in proptest::collection::vec((any::<bool>(), 0u32..6), 1..120),
    ) {
        let viewers = ids(ops.len());
        let mut tree = StreamTree::new(stream());
        let mut present: Vec<NodeId> = Vec::new();
        for (i, &(is_join, deg)) in ops.iter().enumerate() {
            if is_join || present.is_empty() {
                let v = viewers[i];
                let cap = Bandwidth::from_mbps(deg as u64);
                if tree.insert(v, deg, cap).is_none() {
                    tree.attach_to_cdn(v, deg, cap);
                }
                present.push(v);
            } else {
                // Deterministic pseudo-random pick.
                let idx = (i * 7919) % present.len();
                let v = present.swap_remove(idx);
                let victims = tree.remove(v);
                for victim in victims {
                    prop_assert!(tree.contains(victim));
                    prop_assert_eq!(tree.parent_of(victim), Some(TreeParent::Cdn));
                }
            }
            prop_assert!(tree.check_invariants().is_ok(),
                "{:?}", tree.check_invariants());
        }
        prop_assert_eq!(tree.len(), present.len());
    }

    /// Depth never exceeds member count, and with all-equal degrees ≥ 1
    /// the tree accepts everyone P2P after the first CDN seed.
    #[test]
    fn equal_degree_viewers_all_fit(count in 1usize..60, degree in 1u32..4) {
        let viewers = ids(count);
        let mut tree = StreamTree::new(stream());
        let cap = Bandwidth::from_mbps(2);
        tree.attach_to_cdn(viewers[0], degree, cap);
        let mut rejected = 0;
        for &v in &viewers[1..] {
            if tree.insert(v, degree, cap).is_none() {
                rejected += 1;
            }
        }
        // With degree ≥ 1 every member adds at least one slot: capacity
        // grows at least as fast as membership, so nobody is rejected.
        prop_assert_eq!(rejected, 0);
        for v in tree.members().collect::<Vec<_>>() {
            prop_assert!(tree.depth_of(v).unwrap() < count);
        }
    }
}

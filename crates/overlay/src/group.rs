//! View groups: the unit of overlay sharing.
//!
//! "Topologies are formed separately for each view group, i.e., the
//! topology formation component groups the viewers depending on the view
//! request." A [`ViewGroup`] owns one [`StreamTree`] per stream of its
//! view; the [`GroupTable`] maps views to groups and viewers to the group
//! they are in.

use std::collections::BTreeSet;

use telecast_sim::FxHashMap;

use serde::{Deserialize, Serialize};
use telecast_media::{StreamId, ViewId};
use telecast_net::NodeId;

use crate::tree::StreamTree;

/// All per-view overlay state: membership plus one tree per stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewGroup {
    view: ViewId,
    members: BTreeSet<NodeId>,
    trees: FxHashMap<StreamId, StreamTree>,
}

impl ViewGroup {
    /// Creates an empty group for `view` covering `streams`.
    pub fn new(view: ViewId, streams: impl IntoIterator<Item = StreamId>) -> Self {
        ViewGroup {
            view,
            members: BTreeSet::new(),
            trees: streams
                .into_iter()
                .map(|s| (s, StreamTree::new(s)))
                .collect(),
        }
    }

    /// The view this group serves.
    pub fn view(&self) -> ViewId {
        self.view
    }

    /// Member viewers (those admitted into the group, whether or not every
    /// stream was accepted for them).
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().copied()
    }

    /// Number of member viewers.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Whether `viewer` belongs to this group.
    pub fn contains(&self, viewer: NodeId) -> bool {
        self.members.contains(&viewer)
    }

    /// Adds a member (idempotent).
    pub fn add_member(&mut self, viewer: NodeId) {
        self.members.insert(viewer);
    }

    /// Removes a member (idempotent). Tree removal is separate — the
    /// caller decides victim handling per stream.
    pub fn remove_member(&mut self, viewer: NodeId) {
        self.members.remove(&viewer);
    }

    /// The tree for `stream`, if this view includes it.
    pub fn tree(&self, stream: StreamId) -> Option<&StreamTree> {
        self.trees.get(&stream)
    }

    /// Mutable access to the tree for `stream`.
    pub fn tree_mut(&mut self, stream: StreamId) -> Option<&mut StreamTree> {
        self.trees.get_mut(&stream)
    }

    /// Iterates over all `(stream, tree)` pairs.
    pub fn trees(&self) -> impl Iterator<Item = (&StreamId, &StreamTree)> {
        self.trees.iter()
    }

    /// The streams covered by this group.
    pub fn streams(&self) -> impl Iterator<Item = StreamId> + '_ {
        self.trees.keys().copied()
    }

    /// Total tree members across all streams. An abandoned view's trees
    /// can outlive its registered membership (victims parked at the CDN
    /// mid-recovery), so the prune pass checks both.
    pub fn tree_population(&self) -> usize {
        self.trees.values().map(|t| t.len()).sum()
    }

    /// Whether nothing is left to serve: no registered members and every
    /// stream tree empty. A drained group is eligible for retirement
    /// (see [`GroupTable::retire_if_drained`]).
    pub fn is_drained(&self) -> bool {
        self.members.is_empty() && self.trees.values().all(|t| t.is_empty())
    }

    /// Runs [`StreamTree::merge_cdn_fragments`] over every stream tree,
    /// in ascending stream order for determinism. Returns the total
    /// number of fragments folded under P2P parents.
    pub fn merge_fragments(&mut self) -> usize {
        let mut streams: Vec<StreamId> = self.trees.keys().copied().collect();
        streams.sort_unstable();
        let mut merged = 0;
        for stream in streams {
            let tree = self.trees.get_mut(&stream).expect("stream is covered");
            merged += tree
                .merge_cdn_fragments()
                .iter()
                .filter(|(_, parent)| matches!(parent, crate::tree::TreeParent::Viewer(_)))
                .count();
        }
        merged
    }
}

/// The LSC's table of view groups.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroupTable {
    groups: FxHashMap<ViewId, ViewGroup>,
    membership: FxHashMap<NodeId, ViewId>,
}

impl GroupTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The group for `view`, creating it (covering `streams`) on first
    /// use.
    pub fn group_for(
        &mut self,
        view: ViewId,
        streams: impl IntoIterator<Item = StreamId>,
    ) -> &mut ViewGroup {
        self.groups
            .entry(view)
            .or_insert_with(|| ViewGroup::new(view, streams))
    }

    /// The group for `view`, if it exists.
    pub fn group(&self, view: ViewId) -> Option<&ViewGroup> {
        self.groups.get(&view)
    }

    /// Mutable access to the group for `view`.
    pub fn group_mut(&mut self, view: ViewId) -> Option<&mut ViewGroup> {
        self.groups.get_mut(&view)
    }

    /// Records that `viewer` now belongs to `view`'s group.
    ///
    /// # Panics
    ///
    /// Panics if the group does not exist yet.
    pub fn join(&mut self, viewer: NodeId, view: ViewId) {
        let group = self
            .groups
            .get_mut(&view)
            .expect("joining a group that was never created");
        group.add_member(viewer);
        self.membership.insert(viewer, view);
    }

    /// Removes `viewer` from its group, returning the view it was in.
    pub fn leave(&mut self, viewer: NodeId) -> Option<ViewId> {
        let view = self.membership.remove(&viewer)?;
        if let Some(group) = self.groups.get_mut(&view) {
            group.remove_member(viewer);
        }
        Some(view)
    }

    /// The view `viewer` currently belongs to.
    pub fn view_of(&self, viewer: NodeId) -> Option<ViewId> {
        self.membership.get(&viewer).copied()
    }

    /// Retires `view`'s group if it is fully drained (no members, every
    /// tree empty), freeing its per-stream tree state; returns whether
    /// it was removed. A later request for the view recreates the group
    /// lazily through [`GroupTable::group_for`].
    pub fn retire_if_drained(&mut self, view: ViewId) -> bool {
        match self.groups.get(&view) {
            Some(group) if group.is_drained() => {
                self.groups.remove(&view);
                true
            }
            _ => false,
        }
    }

    /// Retires every drained group, returning the retired views in
    /// ascending id order (the backing map iterates in hash order, so
    /// the sweep sorts before removing to stay deterministic).
    pub fn retire_drained(&mut self) -> Vec<ViewId> {
        let mut drained: Vec<ViewId> = self
            .groups
            .iter()
            .filter(|(_, g)| g.is_drained())
            .map(|(&v, _)| v)
            .collect();
        drained.sort_unstable();
        for view in &drained {
            self.groups.remove(view);
        }
        drained
    }

    /// Iterates over all groups.
    pub fn iter(&self) -> impl Iterator<Item = (&ViewId, &ViewGroup)> {
        self.groups.iter()
    }

    /// Number of groups (views ever requested).
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no groups exist.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telecast_media::SiteId;
    use telecast_net::{NodeKind, NodeRegistry, Region};

    fn streams(n: u16) -> Vec<StreamId> {
        (0..n).map(|c| StreamId::new(SiteId::new(0), c)).collect()
    }

    fn viewer(reg: &mut NodeRegistry) -> NodeId {
        reg.add(NodeKind::Viewer, Region::Europe)
    }

    #[test]
    fn group_covers_its_streams() {
        let group = ViewGroup::new(ViewId::new(0), streams(3));
        assert_eq!(group.streams().count(), 3);
        assert!(group.tree(StreamId::new(SiteId::new(0), 2)).is_some());
        assert!(group.tree(StreamId::new(SiteId::new(0), 3)).is_none());
    }

    #[test]
    fn join_and_leave_round_trip() {
        let mut reg = NodeRegistry::new();
        let v = viewer(&mut reg);
        let mut table = GroupTable::new();
        table.group_for(ViewId::new(1), streams(2));
        table.join(v, ViewId::new(1));
        assert_eq!(table.view_of(v), Some(ViewId::new(1)));
        assert!(table.group(ViewId::new(1)).unwrap().contains(v));
        assert_eq!(table.leave(v), Some(ViewId::new(1)));
        assert_eq!(table.view_of(v), None);
        assert!(!table.group(ViewId::new(1)).unwrap().contains(v));
    }

    #[test]
    fn groups_are_created_lazily_and_reused() {
        let mut table = GroupTable::new();
        table.group_for(ViewId::new(0), streams(2));
        table.group_for(ViewId::new(0), streams(5)); // ignored: exists
        assert_eq!(table.len(), 1);
        assert_eq!(
            table.group(ViewId::new(0)).unwrap().streams().count(),
            2,
            "existing group keeps its stream set"
        );
    }

    #[test]
    fn leave_unknown_viewer_is_none() {
        let mut reg = NodeRegistry::new();
        let v = viewer(&mut reg);
        let mut table = GroupTable::new();
        assert_eq!(table.leave(v), None);
    }

    #[test]
    #[should_panic(expected = "never created")]
    fn join_without_group_panics() {
        let mut reg = NodeRegistry::new();
        let v = viewer(&mut reg);
        let mut table = GroupTable::new();
        table.join(v, ViewId::new(9));
    }

    #[test]
    fn drained_groups_retire_and_recreate_lazily() {
        let mut reg = NodeRegistry::new();
        let a = viewer(&mut reg);
        let mut table = GroupTable::new();
        table.group_for(ViewId::new(0), streams(2));
        table.group_for(ViewId::new(1), streams(2));
        table.join(a, ViewId::new(0));
        // A group with a registered member is not drained.
        assert!(!table.retire_if_drained(ViewId::new(0)));
        // A group with a tree member but no registered member is not
        // drained either (a victim parked mid-recovery still receives).
        let tree = table
            .group_mut(ViewId::new(1))
            .unwrap()
            .tree_mut(StreamId::new(SiteId::new(0), 0))
            .unwrap();
        tree.attach_to_cdn(a, 2, telecast_net::Bandwidth::from_mbps(4));
        assert!(!table.retire_if_drained(ViewId::new(1)));
        // Draining both sides retires the group; a sweep reports the
        // retired views in ascending order.
        table
            .group_mut(ViewId::new(1))
            .unwrap()
            .tree_mut(StreamId::new(SiteId::new(0), 0))
            .unwrap()
            .remove(a);
        table.leave(a);
        assert_eq!(table.retire_drained(), vec![ViewId::new(0), ViewId::new(1)]);
        assert!(table.is_empty());
        // The next request recreates the group lazily.
        table.group_for(ViewId::new(0), streams(3));
        assert_eq!(table.group(ViewId::new(0)).unwrap().streams().count(), 3);
    }

    #[test]
    fn merge_fragments_counts_p2p_folds() {
        let mut reg = NodeRegistry::new();
        let strong = viewer(&mut reg);
        let weak = viewer(&mut reg);
        let mut group = ViewGroup::new(ViewId::new(0), streams(1));
        let sid = StreamId::new(SiteId::new(0), 0);
        let tree = group.tree_mut(sid).unwrap();
        // Two CDN-rooted fragments: the weak one folds under the strong.
        tree.attach_to_cdn(strong, 4, telecast_net::Bandwidth::from_mbps(8));
        tree.attach_to_cdn(weak, 0, telecast_net::Bandwidth::ZERO);
        assert_eq!(group.tree_population(), 2);
        assert_eq!(group.merge_fragments(), 1);
        let tree = group.tree(sid).unwrap();
        assert_eq!(tree.cdn_children().count(), 1);
        assert_eq!(
            tree.parent_of(weak),
            Some(crate::tree::TreeParent::Viewer(strong))
        );
    }

    #[test]
    fn membership_is_exclusive_per_viewer() {
        let mut reg = NodeRegistry::new();
        let v = viewer(&mut reg);
        let mut table = GroupTable::new();
        table.group_for(ViewId::new(0), streams(1));
        table.group_for(ViewId::new(1), streams(1));
        table.join(v, ViewId::new(0));
        // A view change leaves the old group first in the real flow; the
        // table reflects the latest join.
        table.leave(v);
        table.join(v, ViewId::new(1));
        assert_eq!(table.view_of(v), Some(ViewId::new(1)));
        assert!(!table.group(ViewId::new(0)).unwrap().contains(v));
    }
}

//! The session overlay routing table (Table I of the paper).
//!
//! Each viewer's data plane holds one entry per *forwarded* stream. The
//! match field is `(parent, stream)`; a matching inbound frame is fanned
//! out to the forwarding addresses, each with its own action and
//! subscription point (the position in the local buffer/cache from which
//! that child is fed).

use telecast_sim::FxHashMap;

use serde::{Deserialize, Serialize};
use telecast_media::{FrameNumber, StreamId};
use telecast_net::NodeId;

/// Per-forwarding-address action. The paper fixes `forward` today and
/// reserves the others for future extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ForwardAction {
    /// Relay frames unchanged.
    #[default]
    Forward,
    /// Receive but do not relay.
    Drop,
    /// Re-encode before relaying (reserved).
    Encode,
    /// Apply rate control before relaying (reserved).
    RateControl,
}

/// Where in the parent's buffer/cache a child is fed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SubscriptionPoint {
    /// Feed from the buffer end (live position, no extra delay).
    #[default]
    Live,
    /// Feed from a specific cached frame onward — the delayed-receive
    /// position computed by Eq. 2.
    Frame(FrameNumber),
}

/// One routing table entry: the fan-out of a `(parent, stream)` match.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct RouteEntry {
    forwards: Vec<(NodeId, ForwardAction, SubscriptionPoint)>,
}

impl RouteEntry {
    /// The forwarding addresses with their actions and subscription
    /// points.
    pub fn forwards(&self) -> &[(NodeId, ForwardAction, SubscriptionPoint)] {
        &self.forwards
    }

    /// Children currently being forwarded to (regardless of action).
    pub fn children(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.forwards.iter().map(|&(c, _, _)| c)
    }
}

/// A viewer's session routing table.
///
/// ```
/// use telecast_overlay::{SessionRoutingTable, SubscriptionPoint, ForwardAction};
/// use telecast_media::{FrameNumber, SiteId, StreamId};
/// use telecast_net::{NodeKind, NodeRegistry, Region};
///
/// let mut nodes = NodeRegistry::new();
/// let parent = nodes.add(NodeKind::CdnServer, Region::Europe);
/// let child = nodes.add(NodeKind::Viewer, Region::Europe);
/// let stream = StreamId::new(SiteId::new(0), 1);
///
/// let mut table = SessionRoutingTable::new();
/// table.add_forward(stream, parent, child, SubscriptionPoint::Live);
/// let entry = table.matching(stream, parent).expect("entry exists");
/// assert_eq!(entry.children().count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SessionRoutingTable {
    entries: FxHashMap<(StreamId, NodeId), RouteEntry>,
}

impl SessionRoutingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of `(stream, parent)` match entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry matching a frame of `stream` arriving from `parent`.
    pub fn matching(&self, stream: StreamId, parent: NodeId) -> Option<&RouteEntry> {
        self.entries.get(&(stream, parent))
    }

    /// Registers a forwarding address for `(stream, parent)` with the
    /// default [`ForwardAction::Forward`].
    pub fn add_forward(
        &mut self,
        stream: StreamId,
        parent: NodeId,
        child: NodeId,
        subscription: SubscriptionPoint,
    ) {
        self.add_forward_with_action(stream, parent, child, ForwardAction::Forward, subscription);
    }

    /// Registers a forwarding address with an explicit action. Re-adding
    /// an existing child updates its action and subscription point.
    pub fn add_forward_with_action(
        &mut self,
        stream: StreamId,
        parent: NodeId,
        child: NodeId,
        action: ForwardAction,
        subscription: SubscriptionPoint,
    ) {
        let entry = self.entries.entry((stream, parent)).or_default();
        if let Some(slot) = entry.forwards.iter_mut().find(|(c, _, _)| *c == child) {
            slot.1 = action;
            slot.2 = subscription;
        } else {
            entry.forwards.push((child, action, subscription));
        }
    }

    /// Updates the subscription point of an existing forward (the
    /// Subscription-Update message of Fig. 6).
    ///
    /// Returns `false` if no such forward exists.
    pub fn update_subscription(
        &mut self,
        stream: StreamId,
        parent: NodeId,
        child: NodeId,
        subscription: SubscriptionPoint,
    ) -> bool {
        if let Some(entry) = self.entries.get_mut(&(stream, parent)) {
            if let Some(slot) = entry.forwards.iter_mut().find(|(c, _, _)| *c == child) {
                slot.2 = subscription;
                return true;
            }
        }
        false
    }

    /// Removes a forwarding address; drops the entry when its fan-out
    /// empties. Returns `false` if the forward did not exist.
    pub fn remove_forward(&mut self, stream: StreamId, parent: NodeId, child: NodeId) -> bool {
        if let Some(entry) = self.entries.get_mut(&(stream, parent)) {
            let before = entry.forwards.len();
            entry.forwards.retain(|(c, _, _)| *c != child);
            let removed = entry.forwards.len() < before;
            if entry.forwards.is_empty() {
                self.entries.remove(&(stream, parent));
            }
            return removed;
        }
        false
    }

    /// Removes every entry of `stream` (used on view change / stream
    /// drop). Returns the number of entries removed.
    pub fn remove_stream(&mut self, stream: StreamId) -> usize {
        let keys: Vec<_> = self
            .entries
            .keys()
            .filter(|(s, _)| *s == stream)
            .copied()
            .collect();
        for k in &keys {
            self.entries.remove(k);
        }
        keys.len()
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = (&(StreamId, NodeId), &RouteEntry)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telecast_media::SiteId;
    use telecast_net::{NodeKind, NodeRegistry, Region};

    fn setup() -> (StreamId, NodeId, Vec<NodeId>) {
        let mut reg = NodeRegistry::new();
        let parent = reg.add(NodeKind::Viewer, Region::Asia);
        let children: Vec<_> = (0..3)
            .map(|_| reg.add(NodeKind::Viewer, Region::Asia))
            .collect();
        (StreamId::new(SiteId::new(0), 0), parent, children)
    }

    #[test]
    fn match_field_is_stream_and_parent() {
        let (stream, parent, children) = setup();
        let mut table = SessionRoutingTable::new();
        table.add_forward(stream, parent, children[0], SubscriptionPoint::Live);
        assert!(table.matching(stream, parent).is_some());
        assert!(table.matching(stream, children[0]).is_none());
        let other = StreamId::new(SiteId::new(0), 1);
        assert!(table.matching(other, parent).is_none());
    }

    #[test]
    fn fan_out_accumulates() {
        let (stream, parent, children) = setup();
        let mut table = SessionRoutingTable::new();
        for &c in &children {
            table.add_forward(stream, parent, c, SubscriptionPoint::Live);
        }
        let entry = table.matching(stream, parent).unwrap();
        assert_eq!(entry.children().count(), 3);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn re_add_updates_in_place() {
        let (stream, parent, children) = setup();
        let mut table = SessionRoutingTable::new();
        table.add_forward(stream, parent, children[0], SubscriptionPoint::Live);
        table.add_forward_with_action(
            stream,
            parent,
            children[0],
            ForwardAction::Drop,
            SubscriptionPoint::Frame(FrameNumber::new(42)),
        );
        let entry = table.matching(stream, parent).unwrap();
        assert_eq!(entry.forwards().len(), 1);
        assert_eq!(entry.forwards()[0].1, ForwardAction::Drop);
        assert_eq!(
            entry.forwards()[0].2,
            SubscriptionPoint::Frame(FrameNumber::new(42))
        );
    }

    #[test]
    fn subscription_update_protocol() {
        let (stream, parent, children) = setup();
        let mut table = SessionRoutingTable::new();
        table.add_forward(stream, parent, children[0], SubscriptionPoint::Live);
        assert!(table.update_subscription(
            stream,
            parent,
            children[0],
            SubscriptionPoint::Frame(FrameNumber::new(7))
        ));
        assert!(!table.update_subscription(stream, parent, children[1], SubscriptionPoint::Live));
    }

    #[test]
    fn remove_forward_clears_empty_entries() {
        let (stream, parent, children) = setup();
        let mut table = SessionRoutingTable::new();
        table.add_forward(stream, parent, children[0], SubscriptionPoint::Live);
        assert!(table.remove_forward(stream, parent, children[0]));
        assert!(table.is_empty());
        assert!(!table.remove_forward(stream, parent, children[0]));
    }

    #[test]
    fn remove_stream_clears_all_parents() {
        let (stream, parent, children) = setup();
        let mut table = SessionRoutingTable::new();
        table.add_forward(stream, parent, children[0], SubscriptionPoint::Live);
        table.add_forward(stream, children[1], children[2], SubscriptionPoint::Live);
        assert_eq!(table.remove_stream(stream), 2);
        assert!(table.is_empty());
    }
}

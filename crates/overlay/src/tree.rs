//! Per-stream dissemination trees and the degree push-down algorithm.
//!
//! Algorithm 1 of the paper, with the stated semantics:
//!
//! * a breadth-first scan from the root keeps, per level, viewers in
//!   ascending out-degree order;
//! * empty child slots are treated as virtual children of out-degree −1,
//!   so "attach to a free slot" and "displace a weaker viewer" are the same
//!   replacement rule;
//! * a displaced viewer keeps its own subtree and becomes a child of the
//!   viewer that displaced it;
//! * the CDN root itself is never displaced and its (pool-bounded) slots
//!   are *not* offered to the scan — falling back to the CDN is the
//!   caller's decision when the scan fails, matching "the algorithm first
//!   tries to provision a viewer request from the available viewers …, if
//!   failed, the request is provisioned from the CDN".

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};
use telecast_media::StreamId;
use telecast_net::{Bandwidth, NodeId};

/// A tree position's upstream: either the CDN root or another viewer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TreeParent {
    /// Served directly from the CDN edge.
    Cdn,
    /// Served by a peer viewer.
    Viewer(NodeId),
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct TreeNode {
    /// Granted out-degree for this stream (`oDeg`, number of child slots).
    out_degree: u32,
    /// Total outbound capacity (`C_obw`) — Algorithm 1's tie-breaker.
    outbound_capacity: Bandwidth,
    parent: TreeParent,
    children: BTreeSet<NodeId>,
}

/// Aggregate shape statistics of a tree (for the ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeMetrics {
    /// Number of member viewers.
    pub members: usize,
    /// Number of direct CDN children.
    pub cdn_children: usize,
    /// Maximum depth (direct CDN children have depth 0).
    pub max_depth: usize,
    /// Mean depth over all members.
    pub mean_depth: f64,
}

/// One stream's dissemination tree inside a view group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamTree {
    stream: StreamId,
    nodes: HashMap<NodeId, TreeNode>,
    cdn_children: BTreeSet<NodeId>,
    /// Members with at least one free forwarding slot, maintained on
    /// every attach/detach/remove so the per-join supply checks are
    /// O(log n) lookups instead of full scans.
    free_slots: BTreeSet<NodeId>,
    /// Every member keyed by ascending `(out_degree, C_obw, id)`; the
    /// first entry is the weakest member, which bounds what a joiner can
    /// displace and lets a saturated tree reject weak joiners in
    /// O(log n).
    strengths: BTreeSet<(u32, Bandwidth, NodeId)>,
}

impl StreamTree {
    /// Creates an empty tree for `stream`.
    pub fn new(stream: StreamId) -> Self {
        StreamTree {
            stream,
            nodes: HashMap::new(),
            cdn_children: BTreeSet::new(),
            free_slots: BTreeSet::new(),
            strengths: BTreeSet::new(),
        }
    }

    /// The stream this tree disseminates.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// Number of member viewers.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no viewers.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `viewer` is a member.
    pub fn contains(&self, viewer: NodeId) -> bool {
        self.nodes.contains_key(&viewer)
    }

    /// The viewer's parent, if a member.
    pub fn parent_of(&self, viewer: NodeId) -> Option<TreeParent> {
        self.nodes.get(&viewer).map(|n| n.parent)
    }

    /// The viewer's children (empty if not a member).
    pub fn children_of(&self, viewer: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .get(&viewer)
            .into_iter()
            .flat_map(|n| n.children.iter().copied())
    }

    /// Direct children of the CDN root.
    pub fn cdn_children(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.cdn_children.iter().copied()
    }

    /// The viewer's granted out-degree, if a member.
    pub fn out_degree_of(&self, viewer: NodeId) -> Option<u32> {
        self.nodes.get(&viewer).map(|n| n.out_degree)
    }

    /// Free forwarding slots of `viewer`.
    pub fn free_slots_of(&self, viewer: NodeId) -> u32 {
        self.nodes
            .get(&viewer)
            .map(|n| n.out_degree.saturating_sub(n.children.len() as u32))
            .unwrap_or(0)
    }

    /// Hop count from the CDN (direct CDN children are depth 0), if a
    /// member.
    pub fn depth_of(&self, viewer: NodeId) -> Option<usize> {
        let mut depth = 0;
        let mut cursor = viewer;
        loop {
            match self.nodes.get(&cursor)?.parent {
                TreeParent::Cdn => return Some(depth),
                TreeParent::Viewer(p) => {
                    depth += 1;
                    cursor = p;
                    debug_assert!(depth <= self.nodes.len(), "cycle in stream tree");
                }
            }
        }
    }

    /// Iterates over all member viewers (unordered).
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys().copied()
    }

    /// Re-derives `viewer`'s free-slot index entry from its current
    /// child count; call after any change to its children.
    fn refresh_slot(&mut self, viewer: NodeId) {
        let has_free = self
            .nodes
            .get(&viewer)
            .map(|n| (n.children.len() as u32) < n.out_degree)
            .unwrap_or(false);
        if has_free {
            self.free_slots.insert(viewer);
        } else {
            self.free_slots.remove(&viewer);
        }
    }

    /// Whether a joiner of `(deg, cap)` is lexicographically stronger
    /// than the weakest member other than `exclude` — the necessary
    /// condition for any displacement to exist. O(1) for `exclude =
    /// None` (first index entry), O(log n)-ish otherwise.
    fn beats_weakest(&self, deg: u32, cap: Bandwidth, exclude: Option<NodeId>) -> bool {
        self.strengths
            .iter()
            .find(|&&(_, _, id)| Some(id) != exclude)
            .map(|&(d, c, _)| deg > d || (deg == d && cap > c))
            .unwrap_or(false)
    }

    /// **Algorithm 1 (degree push-down).** Tries to place `viewer` (with
    /// per-stream out-degree `out_degree` and total outbound capacity
    /// `outbound_capacity`) among the current members.
    ///
    /// Returns the parent the viewer was attached under, or `None` if no
    /// P2P position exists (the caller then provisions from the CDN via
    /// [`StreamTree::attach_to_cdn`], or rejects the stream).
    ///
    /// # Panics
    ///
    /// Panics if `viewer` is already a member.
    pub fn insert(
        &mut self,
        viewer: NodeId,
        out_degree: u32,
        outbound_capacity: Bandwidth,
    ) -> Option<TreeParent> {
        assert!(
            !self.contains(viewer),
            "viewer {viewer} already in tree for {}",
            self.stream
        );
        // Saturated fast path: with no free slot anywhere and no member
        // weaker than the joiner, the scan below can only fail — answer
        // in O(log n) instead of walking the whole tree. (A zero-degree
        // joiner cannot displace at all; see the rule below.)
        if self.free_slots.is_empty()
            && !(out_degree > 0 && self.beats_weakest(out_degree, outbound_capacity, None))
        {
            return None;
        }
        // BFS level by level; per level, ascending (out_degree, C_obw) so
        // the weakest position is displaced first and virtual free slots
        // (deg −1) are preferred over displacement.
        #[derive(Clone, Copy)]
        enum Slot {
            /// A real member that may be displaced.
            Occupied(NodeId),
            /// A free child slot under the given member.
            Free(NodeId),
        }
        let mut level: Vec<Slot> = self
            .cdn_children
            .iter()
            .map(|&c| Slot::Occupied(c))
            .collect();
        while !level.is_empty() {
            // Ascending order of (degree, capacity); free slots first.
            level.sort_by_key(|slot| match *slot {
                Slot::Free(_) => (-1i64, Bandwidth::ZERO),
                Slot::Occupied(z) => {
                    let node = &self.nodes[&z];
                    (node.out_degree as i64, node.outbound_capacity)
                }
            });
            let mut next_level: Vec<Slot> = Vec::new();
            for slot in level {
                match slot {
                    Slot::Free(under) => {
                        // Virtual node of out-degree −1: any viewer wins.
                        self.attach(
                            viewer,
                            out_degree,
                            outbound_capacity,
                            TreeParent::Viewer(under),
                        );
                        return Some(TreeParent::Viewer(under));
                    }
                    Slot::Occupied(z) => {
                        let node = &self.nodes[&z];
                        // Displacement makes z a child of the joiner, so
                        // the joiner must have a slot to serve it from —
                        // a zero-degree viewer can only take free slots.
                        let displace = out_degree > 0
                            && (out_degree > node.out_degree
                                || (out_degree == node.out_degree
                                    && outbound_capacity > node.outbound_capacity));
                        if displace {
                            let parent = node.parent;
                            self.displace(viewer, out_degree, outbound_capacity, z);
                            return Some(parent);
                        }
                        for &child in &self.nodes[&z].children {
                            next_level.push(Slot::Occupied(child));
                        }
                        for _ in 0..self.free_slots_of(z) {
                            next_level.push(Slot::Free(z));
                        }
                    }
                }
            }
            level = next_level;
        }
        None
    }

    /// Attaches `viewer` directly under the CDN root. The caller is
    /// responsible for having reserved CDN pool bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `viewer` is already a member.
    pub fn attach_to_cdn(&mut self, viewer: NodeId, out_degree: u32, outbound_capacity: Bandwidth) {
        self.attach(viewer, out_degree, outbound_capacity, TreeParent::Cdn);
    }

    /// Attaches `viewer` under an explicit member parent — the primitive
    /// behind the Random and first-fit baselines, which pick parents
    /// without the push-down rule.
    ///
    /// # Panics
    ///
    /// Panics if `viewer` is already a member, `parent` is not, or the
    /// parent has no free slot.
    pub fn attach_under(
        &mut self,
        viewer: NodeId,
        out_degree: u32,
        outbound_capacity: Bandwidth,
        parent: NodeId,
    ) {
        assert!(self.contains(parent), "parent {parent} is not a member");
        assert!(
            self.free_slots_of(parent) > 0,
            "parent {parent} has no free slot"
        );
        self.attach(
            viewer,
            out_degree,
            outbound_capacity,
            TreeParent::Viewer(parent),
        );
    }

    /// The first member (in id order) with a free forwarding slot — the
    /// first-fit baseline's parent choice. O(log n) via the maintained
    /// free-slot index (it is ordered by id, so the first entry is the
    /// minimum).
    pub fn first_free_slot_holder(&self) -> Option<NodeId> {
        self.free_slots.first().copied()
    }

    /// Whether any member has a free forwarding slot — the P2P-supply
    /// check of the inbound allocation's condition (2). O(1) via the
    /// maintained free-slot index.
    pub fn has_free_slot(&self) -> bool {
        !self.free_slots.is_empty()
    }

    /// Re-runs degree push-down for an *existing* member (a victim parked
    /// at the CDN root): detaches it, searches the remaining tree for a
    /// position (its own subtree is unreachable during the search, so no
    /// cycle can form), and re-attaches it — keeping its children.
    ///
    /// Returns the new parent, or `None` if no position exists (the
    /// viewer is restored to the CDN root in that case).
    ///
    /// # Panics
    ///
    /// Panics if `viewer` is not a member or not currently a CDN child.
    pub fn reposition_from_cdn(&mut self, viewer: NodeId) -> Option<TreeParent> {
        assert!(
            self.cdn_children.contains(&viewer),
            "reposition requires {viewer} to be parked at the CDN"
        );
        // Detach: the viewer's subtree becomes unreachable from the root,
        // excluding it from the BFS below.
        self.cdn_children.remove(&viewer);
        let (deg, cap, has_spare_slot) = {
            let n = &self.nodes[&viewer];
            (
                n.out_degree,
                n.outbound_capacity,
                (n.children.len() as u32) < n.out_degree,
            )
        };
        // Saturated fast path: if the only free slot anywhere is the
        // viewer's own (it cannot be its own parent) and displacement is
        // ruled out — no spare slot to serve a displaced child from, or
        // every other member outranks us — the scan below must fail.
        // (Conservative: free slots inside the viewer's unreachable
        // subtree fall through to the scan, which handles them.)
        let only_own_slot = self.free_slots.iter().all(|&id| id == viewer);
        if only_own_slot && !(has_spare_slot && self.beats_weakest(deg, cap, Some(viewer))) {
            self.cdn_children.insert(viewer);
            return None;
        }

        #[derive(Clone, Copy)]
        enum Slot {
            Occupied(NodeId),
            Free(NodeId),
        }
        let mut level: Vec<Slot> = self
            .cdn_children
            .iter()
            .map(|&c| Slot::Occupied(c))
            .collect();
        while !level.is_empty() {
            level.sort_by_key(|slot| match *slot {
                Slot::Free(_) => (-1i64, Bandwidth::ZERO),
                Slot::Occupied(z) => {
                    let node = &self.nodes[&z];
                    (node.out_degree as i64, node.outbound_capacity)
                }
            });
            let mut next_level: Vec<Slot> = Vec::new();
            for slot in level {
                match slot {
                    Slot::Free(under) => {
                        self.nodes
                            .get_mut(&under)
                            .expect("member")
                            .children
                            .insert(viewer);
                        self.nodes.get_mut(&viewer).expect("member").parent =
                            TreeParent::Viewer(under);
                        self.refresh_slot(under);
                        return Some(TreeParent::Viewer(under));
                    }
                    Slot::Occupied(z) => {
                        let node = &self.nodes[&z];
                        // Displacement makes z a child of the repositioned
                        // viewer, so the viewer needs a spare slot of its
                        // own (unlike a fresh join, it may carry children).
                        let displace = has_spare_slot
                            && (deg > node.out_degree
                                || (deg == node.out_degree && cap > node.outbound_capacity));
                        if displace {
                            let old_parent = node.parent;
                            match old_parent {
                                TreeParent::Cdn => {
                                    self.cdn_children.remove(&z);
                                    self.cdn_children.insert(viewer);
                                }
                                TreeParent::Viewer(p) => {
                                    let pnode = self.nodes.get_mut(&p).expect("member");
                                    pnode.children.remove(&z);
                                    pnode.children.insert(viewer);
                                }
                            }
                            self.nodes.get_mut(&z).expect("member").parent =
                                TreeParent::Viewer(viewer);
                            let vnode = self.nodes.get_mut(&viewer).expect("member");
                            vnode.parent = old_parent;
                            vnode.children.insert(z);
                            // z's old parent swapped z for the viewer
                            // (count unchanged); the viewer gained z.
                            self.refresh_slot(viewer);
                            return Some(old_parent);
                        }
                        for &child in &self.nodes[&z].children {
                            next_level.push(Slot::Occupied(child));
                        }
                        for _ in 0..self.free_slots_of(z) {
                            next_level.push(Slot::Free(z));
                        }
                    }
                }
            }
            level = next_level;
        }
        // No position: restore the CDN attachment.
        self.cdn_children.insert(viewer);
        None
    }

    fn attach(
        &mut self,
        viewer: NodeId,
        out_degree: u32,
        outbound_capacity: Bandwidth,
        parent: TreeParent,
    ) {
        assert!(
            !self.contains(viewer),
            "viewer {viewer} already in tree for {}",
            self.stream
        );
        match parent {
            TreeParent::Cdn => {
                self.cdn_children.insert(viewer);
            }
            TreeParent::Viewer(p) => {
                let pnode = self.nodes.get_mut(&p).expect("parent is a member");
                debug_assert!(
                    (pnode.children.len() as u32) < pnode.out_degree,
                    "attach exceeds parent out-degree"
                );
                pnode.children.insert(viewer);
            }
        }
        self.nodes.insert(
            viewer,
            TreeNode {
                out_degree,
                outbound_capacity,
                parent,
                children: BTreeSet::new(),
            },
        );
        self.strengths
            .insert((out_degree, outbound_capacity, viewer));
        self.refresh_slot(viewer);
        if let TreeParent::Viewer(p) = parent {
            self.refresh_slot(p);
        }
    }

    /// Replaces `z` by `viewer`: `viewer` takes `z`'s position, `z`
    /// becomes `viewer`'s child and keeps its own subtree.
    fn displace(
        &mut self,
        viewer: NodeId,
        out_degree: u32,
        outbound_capacity: Bandwidth,
        z: NodeId,
    ) {
        let old_parent = self.nodes[&z].parent;
        match old_parent {
            TreeParent::Cdn => {
                self.cdn_children.remove(&z);
                self.cdn_children.insert(viewer);
            }
            TreeParent::Viewer(p) => {
                let pnode = self.nodes.get_mut(&p).expect("parent is a member");
                pnode.children.remove(&z);
                pnode.children.insert(viewer);
            }
        }
        self.nodes.get_mut(&z).expect("z is a member").parent = TreeParent::Viewer(viewer);
        self.nodes.insert(
            viewer,
            TreeNode {
                out_degree,
                outbound_capacity,
                parent: old_parent,
                children: BTreeSet::from([z]),
            },
        );
        // z swapped places with the joiner, so its old parent's child
        // count (and z's own) are unchanged; only the joiner is new.
        self.strengths
            .insert((out_degree, outbound_capacity, viewer));
        self.refresh_slot(viewer);
    }

    /// Removes `viewer` from the tree. Its direct children become
    /// **victims**: they are detached (each keeping its own subtree) and
    /// returned so the caller can re-provision them (paper §VI recovers
    /// them from the CDN at their current delay layer).
    ///
    /// # Panics
    ///
    /// Panics if `viewer` is not a member.
    pub fn remove(&mut self, viewer: NodeId) -> Vec<NodeId> {
        let node = self
            .nodes
            .remove(&viewer)
            .expect("removing a viewer that is not a tree member");
        self.strengths
            .remove(&(node.out_degree, node.outbound_capacity, viewer));
        self.free_slots.remove(&viewer);
        match node.parent {
            TreeParent::Cdn => {
                self.cdn_children.remove(&viewer);
            }
            TreeParent::Viewer(p) => {
                if let Some(pnode) = self.nodes.get_mut(&p) {
                    pnode.children.remove(&viewer);
                }
                self.refresh_slot(p);
            }
        }
        let victims: Vec<NodeId> = node.children.iter().copied().collect();
        // Victims keep their subtrees but have no parent until the caller
        // re-attaches them; mark them as CDN children so the tree stays
        // consistent (the caller's recovery either confirms the CDN serve
        // or re-runs push-down).
        for &v in &victims {
            self.nodes.get_mut(&v).expect("child is a member").parent = TreeParent::Cdn;
            self.cdn_children.insert(v);
        }
        victims
    }

    /// Moves an existing member under the CDN (used when recovering a
    /// victim whose P2P placement failed).
    ///
    /// # Panics
    ///
    /// Panics if `viewer` is not a member.
    pub fn reparent_to_cdn(&mut self, viewer: NodeId) {
        let node = self.nodes.get(&viewer).expect("viewer is a member");
        if let TreeParent::Viewer(p) = node.parent {
            if let Some(pnode) = self.nodes.get_mut(&p) {
                pnode.children.remove(&viewer);
            }
            self.refresh_slot(p);
        }
        self.nodes
            .get_mut(&viewer)
            .expect("viewer is a member")
            .parent = TreeParent::Cdn;
        self.cdn_children.insert(viewer);
    }

    /// Shape statistics. One root-down traversal computes every depth
    /// (O(n)), instead of walking each member's parent chain to the root
    /// (O(n·depth)).
    pub fn metrics(&self) -> TreeMetrics {
        let mut max_depth = 0usize;
        let mut total_depth = 0usize;
        let mut visited = 0usize;
        let mut stack: Vec<(NodeId, usize)> =
            self.cdn_children.iter().map(|&c| (c, 0usize)).collect();
        while let Some((v, depth)) = stack.pop() {
            visited += 1;
            max_depth = max_depth.max(depth);
            total_depth += depth;
            for &child in &self.nodes[&v].children {
                stack.push((child, depth + 1));
            }
        }
        debug_assert_eq!(visited, self.nodes.len(), "unreachable members");
        TreeMetrics {
            members: self.nodes.len(),
            cdn_children: self.cdn_children.len(),
            max_depth,
            mean_depth: if visited == 0 {
                0.0
            } else {
                total_depth as f64 / visited as f64
            },
        }
    }

    /// Verifies structural invariants; used by tests and debug assertions.
    ///
    /// Checks: parent/child symmetry, out-degree bounds, acyclicity, and
    /// that every member is reachable from the CDN root.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut reachable: BTreeSet<NodeId> = BTreeSet::new();
        let mut stack: Vec<NodeId> = self.cdn_children.iter().copied().collect();
        for &c in &self.cdn_children {
            let node = self
                .nodes
                .get(&c)
                .ok_or_else(|| format!("cdn child {c} unknown"))?;
            if node.parent != TreeParent::Cdn {
                return Err(format!("cdn child {c} has non-CDN parent"));
            }
        }
        while let Some(v) = stack.pop() {
            if !reachable.insert(v) {
                return Err(format!("cycle detected at {v}"));
            }
            let node = &self.nodes[&v];
            if node.children.len() as u32 > node.out_degree {
                return Err(format!(
                    "{v} has {} children but out-degree {}",
                    node.children.len(),
                    node.out_degree
                ));
            }
            for &c in &node.children {
                let child = self
                    .nodes
                    .get(&c)
                    .ok_or_else(|| format!("child {c} of {v} unknown"))?;
                if child.parent != TreeParent::Viewer(v) {
                    return Err(format!("child {c} does not point back to {v}"));
                }
                stack.push(c);
            }
        }
        if reachable.len() != self.nodes.len() {
            return Err(format!(
                "{} members unreachable from the CDN root",
                self.nodes.len() - reachable.len()
            ));
        }
        // The maintained indexes must match a from-scratch recomputation.
        let expected_free: BTreeSet<NodeId> = self
            .nodes
            .iter()
            .filter(|(_, n)| (n.children.len() as u32) < n.out_degree)
            .map(|(&id, _)| id)
            .collect();
        if self.free_slots != expected_free {
            return Err(format!(
                "free-slot index out of sync: {:?} vs {:?}",
                self.free_slots, expected_free
            ));
        }
        let expected_strengths: BTreeSet<(u32, Bandwidth, NodeId)> = self
            .nodes
            .iter()
            .map(|(&id, n)| (n.out_degree, n.outbound_capacity, id))
            .collect();
        if self.strengths != expected_strengths {
            return Err("strength index out of sync with members".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telecast_media::SiteId;
    use telecast_net::{NodeKind, NodeRegistry, Region};

    fn stream() -> StreamId {
        StreamId::new(SiteId::new(0), 0)
    }

    fn viewers(n: usize) -> Vec<NodeId> {
        let mut reg = NodeRegistry::new();
        (0..n)
            .map(|_| reg.add(NodeKind::Viewer, Region::NorthAmerica))
            .collect()
    }

    fn mbps(v: u64) -> Bandwidth {
        Bandwidth::from_mbps(v)
    }

    #[test]
    fn empty_tree_has_no_position() {
        let v = viewers(1);
        let mut tree = StreamTree::new(stream());
        assert_eq!(tree.insert(v[0], 3, mbps(6)), None);
        assert!(tree.is_empty());
    }

    #[test]
    fn free_slot_attachment() {
        let v = viewers(3);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 2, mbps(4));
        assert_eq!(
            tree.insert(v[1], 0, mbps(0)),
            Some(TreeParent::Viewer(v[0]))
        );
        assert_eq!(
            tree.insert(v[2], 0, mbps(0)),
            Some(TreeParent::Viewer(v[0]))
        );
        assert_eq!(tree.free_slots_of(v[0]), 0);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn stronger_viewer_displaces_weaker() {
        let v = viewers(2);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 0, mbps(0)); // weak CDN child, no slots

        // v1 has degree 2 > 0: displaces v0, inheriting the CDN position.
        assert_eq!(tree.insert(v[1], 2, mbps(4)), Some(TreeParent::Cdn));
        assert_eq!(tree.parent_of(v[1]), Some(TreeParent::Cdn));
        assert_eq!(tree.parent_of(v[0]), Some(TreeParent::Viewer(v[1])));
        assert_eq!(tree.depth_of(v[0]), Some(1));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn equal_degree_ties_break_on_capacity() {
        let v = viewers(2);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 1, mbps(2));
        // Same degree, more capacity: displaces.
        assert_eq!(tree.insert(v[1], 1, mbps(8)), Some(TreeParent::Cdn));
        assert_eq!(tree.parent_of(v[0]), Some(TreeParent::Viewer(v[1])));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn equal_everything_attaches_to_slot_not_displaces() {
        let v = viewers(2);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 1, mbps(2));
        // Identical (degree, capacity): no displacement; free slot used.
        assert_eq!(
            tree.insert(v[1], 1, mbps(2)),
            Some(TreeParent::Viewer(v[0]))
        );
        assert_eq!(tree.parent_of(v[0]), Some(TreeParent::Cdn));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn displaced_viewer_keeps_its_subtree() {
        let v = viewers(4);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 2, mbps(4));
        tree.insert(v[1], 1, mbps(2)); // child of v0
        tree.insert(v[2], 0, mbps(0)); // child of v1 or v0

        // A strong joiner displaces v0 at the root.
        assert_eq!(tree.insert(v[3], 3, mbps(8)), Some(TreeParent::Cdn));
        assert_eq!(tree.parent_of(v[0]), Some(TreeParent::Viewer(v[3])));
        // v0 kept its children.
        let children: Vec<_> = tree.children_of(v[0]).collect();
        assert!(children.contains(&v[1]));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn no_position_when_all_slots_taken_and_no_weaker_node() {
        let v = viewers(3);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 1, mbps(10));
        tree.insert(v[1], 1, mbps(10)); // fills v0's only slot

        // v1 has no slots (degree 1, one used? No - v1 has 1 slot free).
        // Give v2 the weakest profile so it cannot displace anyone, but
        // v1 still has a free slot, so it lands there.
        assert_eq!(
            tree.insert(v[2], 0, mbps(0)),
            Some(TreeParent::Viewer(v[1]))
        );
        tree.check_invariants().unwrap();
    }

    #[test]
    fn saturated_tree_rejects_weak_joiner() {
        let v = viewers(3);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 1, mbps(10));
        tree.insert(v[1], 0, mbps(0)); // fills the only slot, no slots itself
        assert_eq!(tree.insert(v[2], 0, mbps(0)), None);
        assert!(!tree.contains(v[2]));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn push_down_keeps_higher_degrees_nearer_root() {
        let v = viewers(6);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 1, mbps(2));
        // Ascending strength joiners: each displaces the previous root.
        for (i, &deg) in [2u32, 3, 4, 5, 6].iter().enumerate() {
            tree.insert(v[i + 1], deg, mbps(2 * deg as u64));
        }
        // Edge invariant: every viewer parent has >= (degree, capacity).
        for m in tree.members().collect::<Vec<_>>() {
            if let Some(TreeParent::Viewer(p)) = tree.parent_of(m) {
                let (dm, dp) = (
                    tree.out_degree_of(m).unwrap(),
                    tree.out_degree_of(p).unwrap(),
                );
                assert!(dp >= dm, "parent {p} weaker than child {m}");
            }
        }
        tree.check_invariants().unwrap();
    }

    #[test]
    fn removal_returns_victims_and_preserves_subtrees() {
        let v = viewers(5);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 2, mbps(8));
        tree.insert(v[1], 2, mbps(4));
        tree.insert(v[2], 0, mbps(0));
        tree.insert(v[3], 0, mbps(0));
        let victims = tree.remove(v[0]);
        assert!(!tree.contains(v[0]));
        // Direct children of the departed node are the victims.
        assert!(!victims.is_empty());
        for &victim in &victims {
            assert_eq!(tree.parent_of(victim), Some(TreeParent::Cdn));
        }
        tree.check_invariants().unwrap();
    }

    #[test]
    fn reparent_to_cdn_moves_node() {
        let v = viewers(2);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 2, mbps(4));
        tree.insert(v[1], 0, mbps(0));
        assert_eq!(tree.parent_of(v[1]), Some(TreeParent::Viewer(v[0])));
        tree.reparent_to_cdn(v[1]);
        assert_eq!(tree.parent_of(v[1]), Some(TreeParent::Cdn));
        assert_eq!(tree.free_slots_of(v[0]), 2);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn metrics_reflect_shape() {
        let v = viewers(4);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 2, mbps(4));
        tree.insert(v[1], 1, mbps(2));
        tree.insert(v[2], 1, mbps(2));
        tree.insert(v[3], 0, mbps(0));
        let m = tree.metrics();
        assert_eq!(m.members, 4);
        assert_eq!(m.cdn_children, 1);
        assert!(m.max_depth >= 1);
        assert!(m.mean_depth > 0.0);
    }

    #[test]
    #[should_panic(expected = "already in tree")]
    fn double_insert_panics() {
        let v = viewers(1);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 1, mbps(2));
        tree.attach_to_cdn(v[0], 1, mbps(2));
    }

    #[test]
    #[should_panic(expected = "not a tree member")]
    fn remove_unknown_panics() {
        let v = viewers(1);
        let mut tree = StreamTree::new(stream());
        tree.remove(v[0]);
    }

    #[test]
    fn attach_under_is_explicit() {
        let v = viewers(2);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 3, mbps(6));
        tree.attach_under(v[1], 1, mbps(2), v[0]);
        assert_eq!(tree.parent_of(v[1]), Some(TreeParent::Viewer(v[0])));
        tree.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "no free slot")]
    fn attach_under_full_parent_panics() {
        let v = viewers(3);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 1, mbps(2));
        tree.attach_under(v[1], 0, mbps(0), v[0]);
        tree.attach_under(v[2], 0, mbps(0), v[0]);
    }

    #[test]
    fn first_free_slot_holder_in_id_order() {
        let v = viewers(3);
        let mut tree = StreamTree::new(stream());
        assert_eq!(tree.first_free_slot_holder(), None);
        tree.attach_to_cdn(v[2], 1, mbps(2));
        tree.attach_to_cdn(v[0], 1, mbps(2));
        // Both have slots; lowest id wins.
        assert_eq!(tree.first_free_slot_holder(), Some(v[0]));
        assert!(tree.has_free_slot());
    }

    #[test]
    fn reposition_finds_p2p_slot_for_victim() {
        let v = viewers(4);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 2, mbps(4));
        tree.insert(v[1], 1, mbps(2)); // under v0
        tree.insert(v[2], 0, mbps(0)); // under v1 or v0

        // v3 arrives as a CDN-parked victim with a subtree-less profile.
        tree.attach_to_cdn(v[3], 0, mbps(0));
        let parent = tree.reposition_from_cdn(v[3]);
        assert!(parent.is_some(), "a free slot existed");
        assert_ne!(tree.parent_of(v[3]), Some(TreeParent::Cdn));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn reposition_keeps_children_and_avoids_cycles() {
        let v = viewers(4);
        let mut tree = StreamTree::new(stream());
        // Victim v0 parked at CDN with child v1.
        tree.attach_to_cdn(v[0], 2, mbps(8));
        tree.insert(v[1], 0, mbps(0)); // child of v0

        // Other branch: weak CDN child with a slot.
        tree.attach_to_cdn(v[2], 1, mbps(2));
        let parent = tree.reposition_from_cdn(v[0]).expect("position exists");
        // v0 displaced the weaker v2 (degree 2 > 1) and kept v1.
        assert_eq!(parent, TreeParent::Cdn);
        assert_eq!(tree.parent_of(v[2]), Some(TreeParent::Viewer(v[0])));
        assert!(tree.children_of(v[0]).any(|c| c == v[1]));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn reposition_without_position_restores_cdn() {
        let v = viewers(2);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 0, mbps(0));
        tree.attach_to_cdn(v[1], 0, mbps(0));
        assert_eq!(tree.reposition_from_cdn(v[1]), None);
        assert_eq!(tree.parent_of(v[1]), Some(TreeParent::Cdn));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn reposition_full_viewer_cannot_displace() {
        let v = viewers(4);
        let mut tree = StreamTree::new(stream());
        // Victim v0 with degree 1 and its slot already filled by v1.
        tree.attach_to_cdn(v[0], 1, mbps(8));
        tree.insert(v[1], 0, mbps(0));
        // A weaker CDN child exists that v0 could otherwise displace.
        tree.attach_to_cdn(v[2], 0, mbps(0));
        // v0 has no spare slot → displacement disallowed → no position
        // (v2 has no slots either).
        assert_eq!(tree.reposition_from_cdn(v[0]), None);
        tree.check_invariants().unwrap();
    }
}

//! Per-stream dissemination trees and the degree push-down algorithm.
//!
//! Algorithm 1 of the paper, with the stated semantics:
//!
//! * a breadth-first scan from the root keeps, per level, viewers in
//!   ascending out-degree order;
//! * empty child slots are treated as virtual children of out-degree −1,
//!   so "attach to a free slot" and "displace a weaker viewer" are the same
//!   replacement rule;
//! * a displaced viewer keeps its own subtree and becomes a child of the
//!   viewer that displaced it;
//! * the CDN root itself is never displaced and its (pool-bounded) slots
//!   are *not* offered to the scan — falling back to the CDN is the
//!   caller's decision when the scan fails, matching "the algorithm first
//!   tries to provision a viewer request from the available viewers …, if
//!   failed, the request is provisioned from the CDN".
//!
//! The scan itself is **not** implemented as a traversal. Every member
//! carries its depth, and two per-level indexes are maintained alongside
//! the flat free-slot/strength indexes:
//!
//! * `level_members[d]` — the members at depth `d`, ascending
//!   `(out_degree, C_obw, id)`, so the weakest (first-displaced) position
//!   of a level is its first entry;
//! * `level_free[d]` — the members at depth `d` with at least one free
//!   child slot, in the same order, so the level's first-offered free
//!   slot is its first entry.
//!
//! The attach planner walks depths shallow-to-deep probing only these
//! first entries (`O(log n)` each), reproducing the BFS decision — free
//! slots under level-`d−1` parents are offered before displacement at
//! level `d` — without ever visiting the tree. Per-attach work is
//! `O(levels · log n)` instead of `O(n)`; [`StreamTree::attach_probes`]
//! counts the level probes so scale tests can assert the bound.

use std::collections::{BTreeMap, BTreeSet};

use telecast_sim::FxHashMap;

use serde::{Deserialize, Serialize};
use telecast_media::StreamId;
use telecast_net::{Bandwidth, NodeId};

/// A tree position's upstream: either the CDN root or another viewer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TreeParent {
    /// Served directly from the CDN edge.
    Cdn,
    /// Served by a peer viewer.
    Viewer(NodeId),
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct TreeNode {
    /// Granted out-degree for this stream (`oDeg`, number of child slots).
    out_degree: u32,
    /// Total outbound capacity (`C_obw`) — Algorithm 1's tie-breaker.
    outbound_capacity: Bandwidth,
    parent: TreeParent,
    children: BTreeSet<NodeId>,
    /// Hop count from the CDN root (direct CDN children have depth 0).
    /// Maintained on every structural change; subtree moves shift every
    /// descendant.
    depth: usize,
}

/// Aggregate shape statistics of a tree (for the ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeMetrics {
    /// Number of member viewers.
    pub members: usize,
    /// Number of direct CDN children.
    pub cdn_children: usize,
    /// Maximum depth (direct CDN children have depth 0).
    pub max_depth: usize,
    /// Mean depth over all members.
    pub mean_depth: f64,
}

/// Index key: ascending `(out_degree, C_obw, id)` — the first entry of a
/// set ordered this way is the level's weakest position, with the id as
/// an explicit deterministic tie-breaker.
type StrengthKey = (u32, Bandwidth, NodeId);

/// The planner's verdict for one attach request.
#[derive(Debug, Clone, Copy)]
enum AttachPlan {
    /// Take a free child slot under this member.
    Free {
        /// The member offering the slot.
        under: NodeId,
    },
    /// Displace this member, inheriting its position.
    Displace {
        /// The member being displaced.
        victim: NodeId,
    },
}

/// One stream's dissemination tree inside a view group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamTree {
    stream: StreamId,
    nodes: FxHashMap<NodeId, TreeNode>,
    cdn_children: BTreeSet<NodeId>,
    /// Members with at least one free forwarding slot, maintained on
    /// every attach/detach/remove so the per-join supply checks are
    /// O(log n) lookups instead of full scans.
    free_slots: BTreeSet<NodeId>,
    /// Every member keyed by ascending `(out_degree, C_obw, id)`; the
    /// first entry is the weakest member, which bounds what a joiner can
    /// displace and lets a saturated tree reject weak joiners in
    /// O(log n).
    strengths: BTreeSet<StrengthKey>,
    /// Members per depth, ascending strength — the displacement half of
    /// the attach planner. Levels with no member are absent.
    level_members: BTreeMap<usize, BTreeSet<StrengthKey>>,
    /// Free-slot holders per depth, ascending strength — the free-slot
    /// half of the attach planner. Levels with no holder are absent.
    level_free: BTreeMap<usize, BTreeSet<StrengthKey>>,
    /// Cumulative level probes performed by the attach planner; scale
    /// tests assert this stays far below members × joins (i.e. no O(n)
    /// per-join traversal was reintroduced).
    attach_probes: u64,
    /// Cumulative per-node depth updates performed by subtree moves
    /// (displacement slides the victim's subtree one level down;
    /// reposition re-roots the parked subtree). Planning is O(log n),
    /// but *applying* a displacement costs O(victim subtree); this
    /// counter makes that cost observable so scale tests can bound it.
    /// The worst case — strictly ascending-strength arrivals, each
    /// displacing the root of a growing chain — is O(n) per join, the
    /// same as the replaced BFS; realistic mixes displace weak members
    /// with few descendants (a degree-0 victim has none).
    depth_shift_ops: u64,
}

impl StreamTree {
    /// Creates an empty tree for `stream`.
    pub fn new(stream: StreamId) -> Self {
        StreamTree {
            stream,
            nodes: FxHashMap::default(),
            cdn_children: BTreeSet::new(),
            free_slots: BTreeSet::new(),
            strengths: BTreeSet::new(),
            level_members: BTreeMap::new(),
            level_free: BTreeMap::new(),
            attach_probes: 0,
            depth_shift_ops: 0,
        }
    }

    /// The stream this tree disseminates.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// Number of member viewers.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no viewers.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `viewer` is a member.
    pub fn contains(&self, viewer: NodeId) -> bool {
        self.nodes.contains_key(&viewer)
    }

    /// The viewer's parent, if a member.
    pub fn parent_of(&self, viewer: NodeId) -> Option<TreeParent> {
        self.nodes.get(&viewer).map(|n| n.parent)
    }

    /// The viewer's children (empty if not a member).
    pub fn children_of(&self, viewer: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .get(&viewer)
            .into_iter()
            .flat_map(|n| n.children.iter().copied())
    }

    /// Direct children of the CDN root.
    pub fn cdn_children(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.cdn_children.iter().copied()
    }

    /// The viewer's granted out-degree, if a member.
    pub fn out_degree_of(&self, viewer: NodeId) -> Option<u32> {
        self.nodes.get(&viewer).map(|n| n.out_degree)
    }

    /// The viewer's total outbound capacity (`C_obw`, Algorithm 1's
    /// tie-breaker), if a member.
    pub fn outbound_capacity_of(&self, viewer: NodeId) -> Option<Bandwidth> {
        self.nodes.get(&viewer).map(|n| n.outbound_capacity)
    }

    /// Free forwarding slots of `viewer`.
    pub fn free_slots_of(&self, viewer: NodeId) -> u32 {
        self.nodes
            .get(&viewer)
            .map(|n| n.out_degree.saturating_sub(n.children.len() as u32))
            .unwrap_or(0)
    }

    /// Hop count from the CDN (direct CDN children are depth 0), if a
    /// member. O(1) — depths are maintained, not recomputed.
    pub fn depth_of(&self, viewer: NodeId) -> Option<usize> {
        self.nodes.get(&viewer).map(|n| n.depth)
    }

    /// Cumulative level probes performed by the attach planner since the
    /// tree was created. Each probe is an O(log n) index lookup; the
    /// total bounds the planner's work and lets scale tests prove no
    /// O(n) per-join traversal happens.
    pub fn attach_probes(&self) -> u64 {
        self.attach_probes
    }

    /// Cumulative per-node depth updates from subtree moves (see the
    /// `depth_shift_ops` field docs): the *apply* cost of displacements
    /// and repositions, complementing [`StreamTree::attach_probes`]'
    /// planning cost.
    pub fn depth_shift_ops(&self) -> u64 {
        self.depth_shift_ops
    }

    /// Iterates over all member viewers (unordered).
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys().copied()
    }

    /// The member's `(out_degree, C_obw, id)` index key.
    fn strength_key(&self, viewer: NodeId) -> StrengthKey {
        let n = &self.nodes[&viewer];
        (n.out_degree, n.outbound_capacity, viewer)
    }

    /// Adds `viewer` (whose `depth` must already be correct) to the
    /// per-level member index.
    fn level_insert(&mut self, viewer: NodeId) {
        let depth = self.nodes[&viewer].depth;
        let key = self.strength_key(viewer);
        self.level_members.entry(depth).or_default().insert(key);
    }

    /// Removes `viewer` from both per-level indexes at its current depth.
    fn level_remove(&mut self, viewer: NodeId) {
        let depth = self.nodes[&viewer].depth;
        let key = self.strength_key(viewer);
        if let Some(set) = self.level_members.get_mut(&depth) {
            set.remove(&key);
            if set.is_empty() {
                self.level_members.remove(&depth);
            }
        }
        self.level_free_remove(depth, &key);
    }

    /// Removes `key` from the level-`depth` free-slot index, pruning the
    /// level when it empties.
    fn level_free_remove(&mut self, depth: usize, key: &StrengthKey) {
        if let Some(set) = self.level_free.get_mut(&depth) {
            set.remove(key);
            if set.is_empty() {
                self.level_free.remove(&depth);
            }
        }
    }

    /// Re-derives `viewer`'s free-slot index entries (flat and per-level)
    /// from its current child count; call after any change to its
    /// children or depth.
    fn refresh_slot(&mut self, viewer: NodeId) {
        let Some(n) = self.nodes.get(&viewer) else {
            self.free_slots.remove(&viewer);
            return;
        };
        let has_free = (n.children.len() as u32) < n.out_degree;
        let depth = n.depth;
        let key = (n.out_degree, n.outbound_capacity, viewer);
        if has_free {
            self.free_slots.insert(viewer);
            self.level_free.entry(depth).or_default().insert(key);
        } else {
            self.free_slots.remove(&viewer);
            self.level_free_remove(depth, &key);
        }
    }

    /// `viewer` plus every descendant, in BFS order.
    fn subtree_of(&self, root: NodeId) -> Vec<NodeId> {
        let mut out = vec![root];
        let mut i = 0;
        while i < out.len() {
            out.extend(self.nodes[&out[i]].children.iter().copied());
            i += 1;
        }
        out
    }

    /// Shifts the depth of every member of `root`'s subtree by `delta`,
    /// keeping the level indexes in sync. O(subtree size); subtree moves
    /// (displacement, victim re-rooting) are the only places depth can
    /// change for more than one node.
    fn shift_subtree(&mut self, root: NodeId, delta: isize) {
        if delta == 0 {
            return;
        }
        for v in self.subtree_of(root) {
            self.depth_shift_ops += 1;
            self.level_remove(v);
            {
                let n = self.nodes.get_mut(&v).expect("subtree member");
                n.depth = (n.depth as isize + delta) as usize;
            }
            self.level_insert(v);
            self.refresh_slot(v);
        }
    }

    /// Whether a joiner of `(deg, cap)` is lexicographically stronger
    /// than the weakest member other than `exclude` — the necessary
    /// condition for any displacement to exist. O(1) for `exclude =
    /// None` (first index entry), O(log n)-ish otherwise.
    fn beats_weakest(&self, deg: u32, cap: Bandwidth, exclude: Option<NodeId>) -> bool {
        self.strengths
            .iter()
            .find(|&&(_, _, id)| Some(id) != exclude)
            .map(|&(d, c, _)| deg > d || (deg == d && cap > c))
            .unwrap_or(false)
    }

    /// The depth-aware attach planner: reproduces Algorithm 1's BFS
    /// decision from the per-level indexes alone.
    ///
    /// Walking depths shallow-to-deep, each step probes (a) the first
    /// free-slot holder one level up — the BFS offers free child slots of
    /// level-`d−1` parents before level-`d` members — and (b) the
    /// level's weakest member, displaced iff the joiner is strictly
    /// stronger in `(out_degree, C_obw)`. Ties among equal-strength
    /// candidates break on the lowest id (the BFS's stable scan order,
    /// made explicit).
    fn plan_attach(
        &mut self,
        out_degree: u32,
        outbound_capacity: Bandwidth,
        can_displace: bool,
    ) -> Option<AttachPlan> {
        let deepest = match self.level_members.last_key_value() {
            Some((&d, _)) => d,
            None => return None,
        };
        for d in 0..=deepest + 1 {
            self.attach_probes += 1;
            if d > 0 {
                if let Some(set) = self.level_free.get(&(d - 1)) {
                    if let Some(&(_, _, under)) = set.first() {
                        return Some(AttachPlan::Free { under });
                    }
                }
            }
            if can_displace {
                if let Some(set) = self.level_members.get(&d) {
                    if let Some(&(wdeg, wcap, victim)) = set.first() {
                        if out_degree > wdeg || (out_degree == wdeg && outbound_capacity > wcap) {
                            return Some(AttachPlan::Displace { victim });
                        }
                    }
                }
            }
        }
        None
    }

    /// **Algorithm 1 (degree push-down).** Tries to place `viewer` (with
    /// per-stream out-degree `out_degree` and total outbound capacity
    /// `outbound_capacity`) among the current members.
    ///
    /// Returns the parent the viewer was attached under, or `None` if no
    /// P2P position exists (the caller then provisions from the CDN via
    /// [`StreamTree::attach_to_cdn`], or rejects the stream).
    ///
    /// # Panics
    ///
    /// Panics if `viewer` is already a member.
    pub fn insert(
        &mut self,
        viewer: NodeId,
        out_degree: u32,
        outbound_capacity: Bandwidth,
    ) -> Option<TreeParent> {
        assert!(
            !self.contains(viewer),
            "viewer {viewer} already in tree for {}",
            self.stream
        );
        // Saturated fast path: with no free slot anywhere and no member
        // weaker than the joiner, the planner below can only fail —
        // answer in O(log n). (A zero-degree joiner cannot displace at
        // all; see the rule below.)
        if self.free_slots.is_empty()
            && !(out_degree > 0 && self.beats_weakest(out_degree, outbound_capacity, None))
        {
            return None;
        }
        // Displacement makes the victim a child of the joiner, so the
        // joiner must have a slot to serve it from — a zero-degree viewer
        // can only take free slots.
        match self.plan_attach(out_degree, outbound_capacity, out_degree > 0) {
            Some(AttachPlan::Free { under }) => {
                self.attach(
                    viewer,
                    out_degree,
                    outbound_capacity,
                    TreeParent::Viewer(under),
                );
                Some(TreeParent::Viewer(under))
            }
            Some(AttachPlan::Displace { victim }) => {
                let parent = self.nodes[&victim].parent;
                self.displace(viewer, out_degree, outbound_capacity, victim);
                Some(parent)
            }
            None => None,
        }
    }

    /// Attaches `viewer` directly under the CDN root. The caller is
    /// responsible for having reserved CDN pool bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `viewer` is already a member.
    pub fn attach_to_cdn(&mut self, viewer: NodeId, out_degree: u32, outbound_capacity: Bandwidth) {
        self.attach(viewer, out_degree, outbound_capacity, TreeParent::Cdn);
    }

    /// Attaches `viewer` under an explicit member parent — the primitive
    /// behind the Random and first-fit baselines, which pick parents
    /// without the push-down rule.
    ///
    /// # Panics
    ///
    /// Panics if `viewer` is already a member, `parent` is not, or the
    /// parent has no free slot.
    pub fn attach_under(
        &mut self,
        viewer: NodeId,
        out_degree: u32,
        outbound_capacity: Bandwidth,
        parent: NodeId,
    ) {
        assert!(self.contains(parent), "parent {parent} is not a member");
        assert!(
            self.free_slots_of(parent) > 0,
            "parent {parent} has no free slot"
        );
        self.attach(
            viewer,
            out_degree,
            outbound_capacity,
            TreeParent::Viewer(parent),
        );
    }

    /// The first member (in id order) with a free forwarding slot — the
    /// first-fit baseline's parent choice. O(log n) via the maintained
    /// free-slot index (it is ordered by id, so the first entry is the
    /// minimum).
    pub fn first_free_slot_holder(&self) -> Option<NodeId> {
        self.free_slots.first().copied()
    }

    /// Whether any member has a free forwarding slot — the P2P-supply
    /// check of the inbound allocation's condition (2). O(1) via the
    /// maintained free-slot index.
    pub fn has_free_slot(&self) -> bool {
        !self.free_slots.is_empty()
    }

    /// Re-runs degree push-down for an *existing* member (a victim parked
    /// at the CDN root): detaches it, plans a position over the remaining
    /// tree (its own subtree is hidden from the level indexes during the
    /// search, so no cycle can form), and re-attaches it — keeping its
    /// children.
    ///
    /// Returns the new parent, or `None` if no position exists (the
    /// viewer is restored to the CDN root in that case).
    ///
    /// # Panics
    ///
    /// Panics if `viewer` is not a member or not currently a CDN child.
    pub fn reposition_from_cdn(&mut self, viewer: NodeId) -> Option<TreeParent> {
        assert!(
            self.cdn_children.contains(&viewer),
            "reposition requires {viewer} to be parked at the CDN"
        );
        // Detach: hide the viewer's subtree from the planner indexes so
        // neither its free slots nor its members are candidates (the
        // viewer cannot become its own descendant).
        self.cdn_children.remove(&viewer);
        let subtree = self.subtree_of(viewer);
        self.depth_shift_ops += subtree.len() as u64;
        for &v in &subtree {
            self.level_remove(v);
        }
        let (deg, cap, has_spare_slot) = {
            let n = &self.nodes[&viewer];
            (
                n.out_degree,
                n.outbound_capacity,
                (n.children.len() as u32) < n.out_degree,
            )
        };
        // Displacement makes the victim a child of the repositioned
        // viewer, so the viewer needs a spare slot of its own (unlike a
        // fresh join, it may carry children).
        match self.plan_attach(deg, cap, has_spare_slot) {
            None => {
                // No position: restore the CDN attachment and the hidden
                // index entries (depths unchanged).
                for &v in &subtree {
                    self.level_insert(v);
                    self.refresh_slot(v);
                }
                self.cdn_children.insert(viewer);
                None
            }
            Some(AttachPlan::Free { under }) => {
                let new_depth = self.nodes[&under].depth + 1;
                self.nodes
                    .get_mut(&under)
                    .expect("member")
                    .children
                    .insert(viewer);
                self.nodes.get_mut(&viewer).expect("member").parent = TreeParent::Viewer(under);
                // The whole subtree hung at depth 0; it now hangs at
                // `new_depth`.
                self.depth_shift_ops += subtree.len() as u64;
                for &v in &subtree {
                    self.nodes.get_mut(&v).expect("member").depth += new_depth;
                    self.level_insert(v);
                    self.refresh_slot(v);
                }
                self.refresh_slot(under);
                Some(TreeParent::Viewer(under))
            }
            Some(AttachPlan::Displace { victim: z }) => {
                let z_depth = self.nodes[&z].depth;
                let old_parent = self.nodes[&z].parent;
                match old_parent {
                    TreeParent::Cdn => {
                        self.cdn_children.remove(&z);
                        self.cdn_children.insert(viewer);
                    }
                    TreeParent::Viewer(p) => {
                        let pnode = self.nodes.get_mut(&p).expect("member");
                        pnode.children.remove(&z);
                        pnode.children.insert(viewer);
                    }
                }
                self.nodes.get_mut(&z).expect("member").parent = TreeParent::Viewer(viewer);
                {
                    let vnode = self.nodes.get_mut(&viewer).expect("member");
                    vnode.parent = old_parent;
                    vnode.children.insert(z);
                }
                // z and its subtree slide one level down under the
                // repositioned viewer; the viewer's subtree moves from
                // the root to z's old position.
                self.shift_subtree(z, 1);
                for &v in &subtree {
                    self.nodes.get_mut(&v).expect("member").depth += z_depth;
                    self.level_insert(v);
                    self.refresh_slot(v);
                }
                // z's old parent swapped z for the viewer (count
                // unchanged); the viewer gained z.
                self.depth_shift_ops += subtree.len() as u64;
                self.refresh_slot(viewer);
                Some(old_parent)
            }
        }
    }

    fn attach(
        &mut self,
        viewer: NodeId,
        out_degree: u32,
        outbound_capacity: Bandwidth,
        parent: TreeParent,
    ) {
        assert!(
            !self.contains(viewer),
            "viewer {viewer} already in tree for {}",
            self.stream
        );
        let depth = match parent {
            TreeParent::Cdn => {
                self.cdn_children.insert(viewer);
                0
            }
            TreeParent::Viewer(p) => {
                let pdepth = self.nodes[&p].depth;
                let pnode = self.nodes.get_mut(&p).expect("parent is a member");
                debug_assert!(
                    (pnode.children.len() as u32) < pnode.out_degree,
                    "attach exceeds parent out-degree"
                );
                pnode.children.insert(viewer);
                pdepth + 1
            }
        };
        self.nodes.insert(
            viewer,
            TreeNode {
                out_degree,
                outbound_capacity,
                parent,
                children: BTreeSet::new(),
                depth,
            },
        );
        self.strengths
            .insert((out_degree, outbound_capacity, viewer));
        self.level_insert(viewer);
        self.refresh_slot(viewer);
        if let TreeParent::Viewer(p) = parent {
            self.refresh_slot(p);
        }
    }

    /// Replaces `z` by `viewer`: `viewer` takes `z`'s position, `z`
    /// becomes `viewer`'s child and keeps its own subtree.
    fn displace(
        &mut self,
        viewer: NodeId,
        out_degree: u32,
        outbound_capacity: Bandwidth,
        z: NodeId,
    ) {
        let old_parent = self.nodes[&z].parent;
        let z_depth = self.nodes[&z].depth;
        match old_parent {
            TreeParent::Cdn => {
                self.cdn_children.remove(&z);
                self.cdn_children.insert(viewer);
            }
            TreeParent::Viewer(p) => {
                let pnode = self.nodes.get_mut(&p).expect("parent is a member");
                pnode.children.remove(&z);
                pnode.children.insert(viewer);
            }
        }
        self.nodes.get_mut(&z).expect("z is a member").parent = TreeParent::Viewer(viewer);
        self.nodes.insert(
            viewer,
            TreeNode {
                out_degree,
                outbound_capacity,
                parent: old_parent,
                children: BTreeSet::from([z]),
                depth: z_depth,
            },
        );
        // z swapped places with the joiner, so its old parent's child
        // count (and z's own) are unchanged; only the joiner is new, and
        // z's subtree slides one level down.
        self.strengths
            .insert((out_degree, outbound_capacity, viewer));
        self.level_insert(viewer);
        self.shift_subtree(z, 1);
        self.refresh_slot(viewer);
    }

    /// Removes `viewer` from the tree. Its direct children become
    /// **victims**: they are detached (each keeping its own subtree) and
    /// returned so the caller can re-provision them (paper §VI recovers
    /// them from the CDN at their current delay layer).
    ///
    /// # Panics
    ///
    /// Panics if `viewer` is not a member.
    pub fn remove(&mut self, viewer: NodeId) -> Vec<NodeId> {
        // Clear the index entries while the node is still present.
        if self.contains(viewer) {
            self.level_remove(viewer);
        }
        let node = self
            .nodes
            .remove(&viewer)
            .expect("removing a viewer that is not a tree member");
        self.strengths
            .remove(&(node.out_degree, node.outbound_capacity, viewer));
        self.free_slots.remove(&viewer);
        match node.parent {
            TreeParent::Cdn => {
                self.cdn_children.remove(&viewer);
            }
            TreeParent::Viewer(p) => {
                if let Some(pnode) = self.nodes.get_mut(&p) {
                    pnode.children.remove(&viewer);
                }
                self.refresh_slot(p);
            }
        }
        let victims: Vec<NodeId> = node.children.iter().copied().collect();
        // Victims keep their subtrees but have no parent until the caller
        // re-attaches them; mark them as CDN children so the tree stays
        // consistent (the caller's recovery either confirms the CDN serve
        // or re-runs push-down). Each victim subtree re-roots at depth 0.
        for &v in &victims {
            let old_depth = self.nodes[&v].depth;
            self.nodes.get_mut(&v).expect("child is a member").parent = TreeParent::Cdn;
            self.cdn_children.insert(v);
            self.shift_subtree(v, -(old_depth as isize));
        }
        victims
    }

    /// Moves an existing member under the CDN (used when recovering a
    /// victim whose P2P placement failed).
    ///
    /// # Panics
    ///
    /// Panics if `viewer` is not a member.
    pub fn reparent_to_cdn(&mut self, viewer: NodeId) {
        let node = self.nodes.get(&viewer).expect("viewer is a member");
        let old_depth = node.depth;
        if let TreeParent::Viewer(p) = node.parent {
            if let Some(pnode) = self.nodes.get_mut(&p) {
                pnode.children.remove(&viewer);
            }
            self.refresh_slot(p);
        }
        self.nodes
            .get_mut(&viewer)
            .expect("viewer is a member")
            .parent = TreeParent::Cdn;
        self.cdn_children.insert(viewer);
        self.shift_subtree(viewer, -(old_depth as isize));
    }

    /// The CDN-rooted fragment roots, **weakest first** (ascending
    /// `(out_degree, C_obw, id)` — the order the attach planner probes),
    /// as a snapshot the caller can iterate while mutating the tree.
    ///
    /// A churned or abandoned view leaves its tree as a forest of such
    /// fragments, each holding a CDN serve; this is the prune pass's
    /// work list.
    pub fn cdn_fragment_roots(&self) -> Vec<NodeId> {
        self.level_members
            .get(&0)
            .map(|set| set.iter().map(|&(_, _, id)| id).collect())
            .unwrap_or_default()
    }

    /// The prune/merge pass: folds CDN-rooted fragments back under P2P
    /// parents, weakest root first, collapsing the forest an abandoned
    /// view leaves behind. Returns `(root, new_parent)` for every root
    /// whose position changed; a root that keeps `TreeParent::Cdn` (no
    /// P2P position exists, or it displaced another CDN child and
    /// inherited its slot) still needs its CDN serve. At least one CDN
    /// root always remains in a non-empty tree — the planner never
    /// offers a root a position inside its own subtree, and the last
    /// fragment has nothing else to attach to.
    pub fn merge_cdn_fragments(&mut self) -> Vec<(NodeId, TreeParent)> {
        let mut merged = Vec::new();
        for root in self.cdn_fragment_roots() {
            // An earlier merge in this pass may have displaced this root
            // off the CDN already.
            if self.parent_of(root) != Some(TreeParent::Cdn) {
                continue;
            }
            if let Some(parent) = self.reposition_from_cdn(root) {
                merged.push((root, parent));
            }
        }
        merged
    }

    /// Shape statistics, computed from the per-level member index in
    /// O(levels) — no traversal.
    pub fn metrics(&self) -> TreeMetrics {
        let mut max_depth = 0usize;
        let mut total_depth = 0usize;
        for (&d, set) in &self.level_members {
            max_depth = d; // keys iterate ascending; the last one sticks
            total_depth += d * set.len();
        }
        let members = self.nodes.len();
        TreeMetrics {
            members,
            cdn_children: self.cdn_children.len(),
            max_depth,
            mean_depth: if members == 0 {
                0.0
            } else {
                total_depth as f64 / members as f64
            },
        }
    }

    /// Verifies structural invariants; used by tests and debug assertions.
    ///
    /// Checks: parent/child symmetry, out-degree bounds, acyclicity,
    /// reachability of every member from the CDN root, and that all five
    /// maintained indexes (free slots, strengths, stored depths, level
    /// members, level free-slots) match a from-scratch recomputation.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut reachable: BTreeSet<NodeId> = BTreeSet::new();
        let mut depths: FxHashMap<NodeId, usize> = FxHashMap::default();
        let mut stack: Vec<(NodeId, usize)> = Vec::new();
        for &c in &self.cdn_children {
            let node = self
                .nodes
                .get(&c)
                .ok_or_else(|| format!("cdn child {c} unknown"))?;
            if node.parent != TreeParent::Cdn {
                return Err(format!("cdn child {c} has non-CDN parent"));
            }
            stack.push((c, 0));
        }
        while let Some((v, depth)) = stack.pop() {
            if !reachable.insert(v) {
                return Err(format!("cycle detected at {v}"));
            }
            depths.insert(v, depth);
            let node = &self.nodes[&v];
            if node.children.len() as u32 > node.out_degree {
                return Err(format!(
                    "{v} has {} children but out-degree {}",
                    node.children.len(),
                    node.out_degree
                ));
            }
            if node.depth != depth {
                return Err(format!(
                    "{v} stores depth {} but sits at depth {depth}",
                    node.depth
                ));
            }
            for &c in &node.children {
                let child = self
                    .nodes
                    .get(&c)
                    .ok_or_else(|| format!("child {c} of {v} unknown"))?;
                if child.parent != TreeParent::Viewer(v) {
                    return Err(format!("child {c} does not point back to {v}"));
                }
                stack.push((c, depth + 1));
            }
        }
        if reachable.len() != self.nodes.len() {
            return Err(format!(
                "{} members unreachable from the CDN root",
                self.nodes.len() - reachable.len()
            ));
        }
        // The maintained indexes must match a from-scratch recomputation.
        let expected_free: BTreeSet<NodeId> = self
            .nodes
            .iter()
            .filter(|(_, n)| (n.children.len() as u32) < n.out_degree)
            .map(|(&id, _)| id)
            .collect();
        if self.free_slots != expected_free {
            return Err(format!(
                "free-slot index out of sync: {:?} vs {:?}",
                self.free_slots, expected_free
            ));
        }
        let expected_strengths: BTreeSet<StrengthKey> = self
            .nodes
            .iter()
            .map(|(&id, n)| (n.out_degree, n.outbound_capacity, id))
            .collect();
        if self.strengths != expected_strengths {
            return Err("strength index out of sync with members".into());
        }
        let mut expected_levels: BTreeMap<usize, BTreeSet<StrengthKey>> = BTreeMap::new();
        let mut expected_level_free: BTreeMap<usize, BTreeSet<StrengthKey>> = BTreeMap::new();
        for (&id, n) in &self.nodes {
            let key = (n.out_degree, n.outbound_capacity, id);
            expected_levels.entry(n.depth).or_default().insert(key);
            if (n.children.len() as u32) < n.out_degree {
                expected_level_free.entry(n.depth).or_default().insert(key);
            }
        }
        if self.level_members != expected_levels {
            return Err(format!(
                "level member index out of sync: {:?} vs {:?}",
                self.level_members, expected_levels
            ));
        }
        if self.level_free != expected_level_free {
            return Err(format!(
                "level free-slot index out of sync: {:?} vs {:?}",
                self.level_free, expected_level_free
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telecast_media::SiteId;
    use telecast_net::{NodeKind, NodeRegistry, Region};

    fn stream() -> StreamId {
        StreamId::new(SiteId::new(0), 0)
    }

    fn viewers(n: usize) -> Vec<NodeId> {
        let mut reg = NodeRegistry::new();
        (0..n)
            .map(|_| reg.add(NodeKind::Viewer, Region::NorthAmerica))
            .collect()
    }

    fn mbps(v: u64) -> Bandwidth {
        Bandwidth::from_mbps(v)
    }

    #[test]
    fn empty_tree_has_no_position() {
        let v = viewers(1);
        let mut tree = StreamTree::new(stream());
        assert_eq!(tree.insert(v[0], 3, mbps(6)), None);
        assert!(tree.is_empty());
    }

    #[test]
    fn free_slot_attachment() {
        let v = viewers(3);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 2, mbps(4));
        assert_eq!(
            tree.insert(v[1], 0, mbps(0)),
            Some(TreeParent::Viewer(v[0]))
        );
        assert_eq!(
            tree.insert(v[2], 0, mbps(0)),
            Some(TreeParent::Viewer(v[0]))
        );
        assert_eq!(tree.free_slots_of(v[0]), 0);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn stronger_viewer_displaces_weaker() {
        let v = viewers(2);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 0, mbps(0)); // weak CDN child, no slots

        // v1 has degree 2 > 0: displaces v0, inheriting the CDN position.
        assert_eq!(tree.insert(v[1], 2, mbps(4)), Some(TreeParent::Cdn));
        assert_eq!(tree.parent_of(v[1]), Some(TreeParent::Cdn));
        assert_eq!(tree.parent_of(v[0]), Some(TreeParent::Viewer(v[1])));
        assert_eq!(tree.depth_of(v[0]), Some(1));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn equal_degree_ties_break_on_capacity() {
        let v = viewers(2);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 1, mbps(2));
        // Same degree, more capacity: displaces.
        assert_eq!(tree.insert(v[1], 1, mbps(8)), Some(TreeParent::Cdn));
        assert_eq!(tree.parent_of(v[0]), Some(TreeParent::Viewer(v[1])));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn equal_everything_attaches_to_slot_not_displaces() {
        let v = viewers(2);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 1, mbps(2));
        // Identical (degree, capacity): no displacement; free slot used.
        assert_eq!(
            tree.insert(v[1], 1, mbps(2)),
            Some(TreeParent::Viewer(v[0]))
        );
        assert_eq!(tree.parent_of(v[0]), Some(TreeParent::Cdn));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn displaced_viewer_keeps_its_subtree() {
        let v = viewers(4);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 2, mbps(4));
        tree.insert(v[1], 1, mbps(2)); // child of v0
        tree.insert(v[2], 0, mbps(0)); // child of v1 or v0

        // A strong joiner displaces v0 at the root.
        assert_eq!(tree.insert(v[3], 3, mbps(8)), Some(TreeParent::Cdn));
        assert_eq!(tree.parent_of(v[0]), Some(TreeParent::Viewer(v[3])));
        // v0 kept its children.
        let children: Vec<_> = tree.children_of(v[0]).collect();
        assert!(children.contains(&v[1]));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn no_position_when_all_slots_taken_and_no_weaker_node() {
        let v = viewers(3);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 1, mbps(10));
        tree.insert(v[1], 1, mbps(10)); // fills v0's only slot

        // v1 has no slots (degree 1, one used? No - v1 has 1 slot free).
        // Give v2 the weakest profile so it cannot displace anyone, but
        // v1 still has a free slot, so it lands there.
        assert_eq!(
            tree.insert(v[2], 0, mbps(0)),
            Some(TreeParent::Viewer(v[1]))
        );
        tree.check_invariants().unwrap();
    }

    #[test]
    fn saturated_tree_rejects_weak_joiner() {
        let v = viewers(3);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 1, mbps(10));
        tree.insert(v[1], 0, mbps(0)); // fills the only slot, no slots itself
        assert_eq!(tree.insert(v[2], 0, mbps(0)), None);
        assert!(!tree.contains(v[2]));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn push_down_keeps_higher_degrees_nearer_root() {
        let v = viewers(6);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 1, mbps(2));
        // Ascending strength joiners: each displaces the previous root.
        for (i, &deg) in [2u32, 3, 4, 5, 6].iter().enumerate() {
            tree.insert(v[i + 1], deg, mbps(2 * deg as u64));
        }
        // Edge invariant: every viewer parent has >= (degree, capacity).
        for m in tree.members().collect::<Vec<_>>() {
            if let Some(TreeParent::Viewer(p)) = tree.parent_of(m) {
                let (dm, dp) = (
                    tree.out_degree_of(m).unwrap(),
                    tree.out_degree_of(p).unwrap(),
                );
                assert!(dp >= dm, "parent {p} weaker than child {m}");
            }
        }
        tree.check_invariants().unwrap();
    }

    #[test]
    fn removal_returns_victims_and_preserves_subtrees() {
        let v = viewers(5);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 2, mbps(8));
        tree.insert(v[1], 2, mbps(4));
        tree.insert(v[2], 0, mbps(0));
        tree.insert(v[3], 0, mbps(0));
        let victims = tree.remove(v[0]);
        assert!(!tree.contains(v[0]));
        // Direct children of the departed node are the victims.
        assert!(!victims.is_empty());
        for &victim in &victims {
            assert_eq!(tree.parent_of(victim), Some(TreeParent::Cdn));
            assert_eq!(tree.depth_of(victim), Some(0));
        }
        tree.check_invariants().unwrap();
    }

    #[test]
    fn reparent_to_cdn_moves_node() {
        let v = viewers(2);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 2, mbps(4));
        tree.insert(v[1], 0, mbps(0));
        assert_eq!(tree.parent_of(v[1]), Some(TreeParent::Viewer(v[0])));
        tree.reparent_to_cdn(v[1]);
        assert_eq!(tree.parent_of(v[1]), Some(TreeParent::Cdn));
        assert_eq!(tree.free_slots_of(v[0]), 2);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn metrics_reflect_shape() {
        let v = viewers(4);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 2, mbps(4));
        tree.insert(v[1], 1, mbps(2));
        tree.insert(v[2], 1, mbps(2));
        tree.insert(v[3], 0, mbps(0));
        let m = tree.metrics();
        assert_eq!(m.members, 4);
        assert_eq!(m.cdn_children, 1);
        assert!(m.max_depth >= 1);
        assert!(m.mean_depth > 0.0);
    }

    #[test]
    #[should_panic(expected = "already in tree")]
    fn double_insert_panics() {
        let v = viewers(1);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 1, mbps(2));
        tree.attach_to_cdn(v[0], 1, mbps(2));
    }

    #[test]
    #[should_panic(expected = "not a tree member")]
    fn remove_unknown_panics() {
        let v = viewers(1);
        let mut tree = StreamTree::new(stream());
        tree.remove(v[0]);
    }

    #[test]
    fn attach_under_is_explicit() {
        let v = viewers(2);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 3, mbps(6));
        tree.attach_under(v[1], 1, mbps(2), v[0]);
        assert_eq!(tree.parent_of(v[1]), Some(TreeParent::Viewer(v[0])));
        tree.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "no free slot")]
    fn attach_under_full_parent_panics() {
        let v = viewers(3);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 1, mbps(2));
        tree.attach_under(v[1], 0, mbps(0), v[0]);
        tree.attach_under(v[2], 0, mbps(0), v[0]);
    }

    #[test]
    fn first_free_slot_holder_in_id_order() {
        let v = viewers(3);
        let mut tree = StreamTree::new(stream());
        assert_eq!(tree.first_free_slot_holder(), None);
        tree.attach_to_cdn(v[2], 1, mbps(2));
        tree.attach_to_cdn(v[0], 1, mbps(2));
        // Both have slots; lowest id wins.
        assert_eq!(tree.first_free_slot_holder(), Some(v[0]));
        assert!(tree.has_free_slot());
    }

    #[test]
    fn reposition_finds_p2p_slot_for_victim() {
        let v = viewers(4);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 2, mbps(4));
        tree.insert(v[1], 1, mbps(2)); // under v0
        tree.insert(v[2], 0, mbps(0)); // under v1 or v0

        // v3 arrives as a CDN-parked victim with a subtree-less profile.
        tree.attach_to_cdn(v[3], 0, mbps(0));
        let parent = tree.reposition_from_cdn(v[3]);
        assert!(parent.is_some(), "a free slot existed");
        assert_ne!(tree.parent_of(v[3]), Some(TreeParent::Cdn));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn reposition_keeps_children_and_avoids_cycles() {
        let v = viewers(4);
        let mut tree = StreamTree::new(stream());
        // Victim v0 parked at CDN with child v1.
        tree.attach_to_cdn(v[0], 2, mbps(8));
        tree.insert(v[1], 0, mbps(0)); // child of v0

        // Other branch: weak CDN child with a slot.
        tree.attach_to_cdn(v[2], 1, mbps(2));
        let parent = tree.reposition_from_cdn(v[0]).expect("position exists");
        // v0 displaced the weaker v2 (degree 2 > 1) and kept v1.
        assert_eq!(parent, TreeParent::Cdn);
        assert_eq!(tree.parent_of(v[2]), Some(TreeParent::Viewer(v[0])));
        assert!(tree.children_of(v[0]).any(|c| c == v[1]));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn reposition_without_position_restores_cdn() {
        let v = viewers(2);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 0, mbps(0));
        tree.attach_to_cdn(v[1], 0, mbps(0));
        assert_eq!(tree.reposition_from_cdn(v[1]), None);
        assert_eq!(tree.parent_of(v[1]), Some(TreeParent::Cdn));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn reposition_full_viewer_cannot_displace() {
        let v = viewers(4);
        let mut tree = StreamTree::new(stream());
        // Victim v0 with degree 1 and its slot already filled by v1.
        tree.attach_to_cdn(v[0], 1, mbps(8));
        tree.insert(v[1], 0, mbps(0));
        // A weaker CDN child exists that v0 could otherwise displace.
        tree.attach_to_cdn(v[2], 0, mbps(0));
        // v0 has no spare slot → displacement disallowed → no position
        // (v2 has no slots either).
        assert_eq!(tree.reposition_from_cdn(v[0]), None);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn depths_track_displacement_shifts() {
        let v = viewers(4);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 1, mbps(2));
        tree.insert(v[1], 0, mbps(0)); // depth 1 under v0
        assert_eq!(tree.depth_of(v[1]), Some(1));
        // v2 displaces v0 at the root; v0's subtree slides down.
        tree.insert(v[2], 2, mbps(8));
        assert_eq!(tree.depth_of(v[2]), Some(0));
        assert_eq!(tree.depth_of(v[0]), Some(1));
        assert_eq!(tree.depth_of(v[1]), Some(2));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn attach_probes_accumulate() {
        let v = viewers(3);
        let mut tree = StreamTree::new(stream());
        tree.attach_to_cdn(v[0], 2, mbps(4));
        assert_eq!(tree.attach_probes(), 0);
        tree.insert(v[1], 0, mbps(0));
        let after_one = tree.attach_probes();
        assert!(after_one > 0, "planner ran at least one probe");
        tree.insert(v[2], 0, mbps(0));
        assert!(tree.attach_probes() > after_one);
    }
}

#![warn(missing_docs)]

//! P2P overlay substrate for the 4D TeleCast reproduction (paper §III-B,
//! §IV-B2).
//!
//! Inside each view group, 4D TeleCast maintains one dissemination tree per
//! accepted stream, rooted at the CDN. This crate provides:
//!
//! * [`StreamTree`] — the per-stream tree with bounded per-node out-degree
//!   and the **degree push-down** insertion of the paper's Algorithm 1
//!   (higher out-degree viewers displace weaker ones towards the root;
//!   empty child slots behave as virtual `oDeg = −1` entries),
//! * [`ViewGroup`]/[`GroupTable`] — grouping of viewers by requested view,
//!   "so that the popular view creates enough resources (or seeds) … and
//!   does not get interfered by the non-popular views",
//! * [`SessionRoutingTable`] — the viewer data plane of Table I: match
//!   field (parent, stream) → forwarding addresses, actions, and
//!   subscription points.
//!
//! # The per-view tree model and prune/merge
//!
//! Each view group owns one [`StreamTree`] per accepted stream: a forest
//! rooted at the CDN whose depth-0 members ("fragments") each hold a CDN
//! serve, with P2P children below them. Churn and view switching
//! fragment that forest — `remove` re-roots every orphaned child at
//! depth 0 pending recovery, and a view-switching storm can drain a
//! group's audience entirely while the stragglers' fragments keep their
//! CDN slots. Two operations shrink an abandoned view's overlay again:
//!
//! * **merge** — [`StreamTree::merge_cdn_fragments`] folds CDN-rooted
//!   fragments back under P2P parents, weakest root first (the same
//!   `(out_degree, C_obw, id)` order the attach planner probes), so the
//!   caller can release the folded roots' CDN capacity back to the
//!   pool; at least one CDN root always remains in a non-empty tree;
//! * **retire** — [`GroupTable::retire_if_drained`] removes a group
//!   whose membership and trees have fully drained; the next request
//!   for the view recreates it lazily through [`GroupTable::group_for`].
//!
//! Both are deterministic (weakest-first merge order, ascending-id
//! retirement sweeps) and preserve every maintained index invariant —
//! `check_invariants` verifies symmetry, degree bounds, acyclicity and
//! reachability after each pass, and a property test asserts no
//! connected viewer is ever stranded.
//!
//! # Example
//!
//! ```
//! use telecast_overlay::{StreamTree, TreeParent};
//! use telecast_media::{SiteId, StreamId};
//! use telecast_net::Bandwidth;
//! use telecast_net::{NodeKind, NodeRegistry, Region};
//!
//! let mut nodes = NodeRegistry::new();
//! let a = nodes.add(NodeKind::Viewer, Region::Europe);
//! let b = nodes.add(NodeKind::Viewer, Region::Europe);
//!
//! let stream = StreamId::new(SiteId::new(0), 0);
//! let mut tree = StreamTree::new(stream);
//! // First viewer must come from the CDN (no peers yet).
//! assert!(tree.insert(a, 2, Bandwidth::from_mbps(4)).is_none());
//! tree.attach_to_cdn(a, 2, Bandwidth::from_mbps(4));
//! // Second viewer finds a P2P slot under the first.
//! let parent = tree.insert(b, 0, Bandwidth::ZERO).expect("slot available");
//! assert_eq!(parent, TreeParent::Viewer(a));
//! ```

mod group;
mod routing;
mod tree;

pub use group::{GroupTable, ViewGroup};
pub use routing::{ForwardAction, RouteEntry, SessionRoutingTable, SubscriptionPoint};
pub use tree::{StreamTree, TreeMetrics, TreeParent};

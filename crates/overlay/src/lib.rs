#![warn(missing_docs)]

//! P2P overlay substrate for the 4D TeleCast reproduction (paper §III-B,
//! §IV-B2).
//!
//! Inside each view group, 4D TeleCast maintains one dissemination tree per
//! accepted stream, rooted at the CDN. This crate provides:
//!
//! * [`StreamTree`] — the per-stream tree with bounded per-node out-degree
//!   and the **degree push-down** insertion of the paper's Algorithm 1
//!   (higher out-degree viewers displace weaker ones towards the root;
//!   empty child slots behave as virtual `oDeg = −1` entries),
//! * [`ViewGroup`]/[`GroupTable`] — grouping of viewers by requested view,
//!   "so that the popular view creates enough resources (or seeds) … and
//!   does not get interfered by the non-popular views",
//! * [`SessionRoutingTable`] — the viewer data plane of Table I: match
//!   field (parent, stream) → forwarding addresses, actions, and
//!   subscription points.
//!
//! # Example
//!
//! ```
//! use telecast_overlay::{StreamTree, TreeParent};
//! use telecast_media::{SiteId, StreamId};
//! use telecast_net::Bandwidth;
//! use telecast_net::{NodeKind, NodeRegistry, Region};
//!
//! let mut nodes = NodeRegistry::new();
//! let a = nodes.add(NodeKind::Viewer, Region::Europe);
//! let b = nodes.add(NodeKind::Viewer, Region::Europe);
//!
//! let stream = StreamId::new(SiteId::new(0), 0);
//! let mut tree = StreamTree::new(stream);
//! // First viewer must come from the CDN (no peers yet).
//! assert!(tree.insert(a, 2, Bandwidth::from_mbps(4)).is_none());
//! tree.attach_to_cdn(a, 2, Bandwidth::from_mbps(4));
//! // Second viewer finds a P2P slot under the first.
//! let parent = tree.insert(b, 0, Bandwidth::ZERO).expect("slot available");
//! assert_eq!(parent, TreeParent::Viewer(a));
//! ```

mod group;
mod routing;
mod tree;

pub use group::{GroupTable, ViewGroup};
pub use routing::{ForwardAction, RouteEntry, SessionRoutingTable, SubscriptionPoint};
pub use tree::{StreamTree, TreeMetrics, TreeParent};

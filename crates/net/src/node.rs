//! Node identities and the registry of everything attached to the network.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::region::Region;

/// Opaque identifier of a network node (producer gateway, CDN edge,
/// controller, or viewer gateway).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Raw index; valid only within the registry that issued it.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The role a node plays in the 4D TeleCast architecture (Fig. 4 of the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A 3DTI producer site gateway.
    Producer,
    /// A CDN edge (or core) server.
    CdnServer,
    /// The global session controller.
    GlobalController,
    /// A per-region local session controller.
    LocalController,
    /// A passive content viewer gateway.
    Viewer,
}

/// Registered facts about one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeInfo {
    /// The node's identifier.
    pub id: NodeId,
    /// Role of the node.
    pub kind: NodeKind,
    /// Geographic region (decides LSC assignment and delay synthesis).
    pub region: Region,
}

/// Registry of all nodes participating in a session.
///
/// ```
/// use telecast_net::{NodeKind, NodeRegistry, Region};
///
/// let mut nodes = NodeRegistry::new();
/// let v = nodes.add(NodeKind::Viewer, Region::Asia);
/// assert_eq!(nodes.get(v).region, Region::Asia);
/// assert_eq!(nodes.len(), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NodeRegistry {
    nodes: Vec<NodeInfo>,
}

impl NodeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a node and returns its identifier.
    pub fn add(&mut self, kind: NodeKind, region: Region) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node count fits in u32"));
        self.nodes.push(NodeInfo { id, kind, region });
        id
    }

    /// Looks up a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this registry.
    pub fn get(&self, id: NodeId) -> NodeInfo {
        self.nodes[id.index()]
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over all registered nodes in id order.
    pub fn iter(&self) -> impl Iterator<Item = &NodeInfo> {
        self.nodes.iter()
    }

    /// All nodes of a given kind, in id order.
    pub fn of_kind(&self, kind: NodeKind) -> impl Iterator<Item = &NodeInfo> {
        self.nodes.iter().filter(move |n| n.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut reg = NodeRegistry::new();
        let a = reg.add(NodeKind::Producer, Region::NorthAmerica);
        let b = reg.add(NodeKind::Viewer, Region::Europe);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(reg.get(a).kind, NodeKind::Producer);
        assert_eq!(reg.get(b).region, Region::Europe);
    }

    #[test]
    fn of_kind_filters() {
        let mut reg = NodeRegistry::new();
        reg.add(NodeKind::Viewer, Region::Asia);
        reg.add(NodeKind::CdnServer, Region::Asia);
        reg.add(NodeKind::Viewer, Region::Asia);
        assert_eq!(reg.of_kind(NodeKind::Viewer).count(), 2);
        assert_eq!(reg.of_kind(NodeKind::CdnServer).count(), 1);
        assert_eq!(reg.of_kind(NodeKind::Producer).count(), 0);
    }

    #[test]
    fn display_is_compact() {
        let mut reg = NodeRegistry::new();
        let id = reg.add(NodeKind::Viewer, Region::Oceania);
        assert_eq!(id.to_string(), "n0");
    }
}

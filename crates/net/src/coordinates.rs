//! O(n)-memory synthetic network coordinates.
//!
//! [`SyntheticPlanetLab`](crate::SyntheticPlanetLab) materialises an
//! `EPOCHS × n × n` drift table plus an `n × n` base matrix — about
//! 3.2 GB at n = 10,000 — which caps sessions at a few hundred viewers.
//! [`CoordinateDelayModel`] keeps only **one coordinate per node** (its
//! region plus a 64-bit scatter key sampled at generation time) and
//! derives every pairwise quantity on demand by hashing the two
//! coordinates (and, for drift, the epoch) with the session seed through
//! a splitmix64 finaliser. Memory is O(n); a lookup is a handful of
//! integer mixes.
//!
//! The derived delays follow the *same distributions* as the dense
//! generator — intra-region `U(5, 40)` ms, inter-region
//! `base × U(0.65, 1.35)`, per-ordered-pair per-epoch drift of
//! `U(900, 1200)` per-mille over sixteen 15-minute epochs — so the two
//! backends are statistically interchangeable (a property test asserts
//! the parity). Individual pair values differ between backends; only the
//! population statistics match.

use serde::{Deserialize, Serialize};
use telecast_sim::{SimDuration, SimRng, SimTime};

use crate::node::{NodeId, NodeRegistry};
use crate::planetlab::{DelayModel, SyntheticPlanetLab, EPOCH, EPOCHS};
use crate::region::Region;

/// One node's synthetic network coordinate: its continental cluster plus
/// a scatter key standing in for its position inside the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct NodeCoordinate {
    region: Region,
    key: u64,
}

/// A pairwise delay model with O(n) memory: per-node coordinates sampled
/// by region, pairwise base delays and epoch drift derived by hashing.
///
/// ```
/// use telecast_net::{CoordinateDelayModel, DelayModel, NodeKind, NodeRegistry, Region};
/// use telecast_sim::SimTime;
///
/// let mut nodes = NodeRegistry::new();
/// let a = nodes.add(NodeKind::Viewer, Region::NorthAmerica);
/// let b = nodes.add(NodeKind::Viewer, Region::Europe);
/// let delays = CoordinateDelayModel::generate(&nodes, 42);
/// assert!(delays.one_way(SimTime::ZERO, a, b).as_millis() >= 20);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoordinateDelayModel {
    seed: u64,
    coords: Vec<NodeCoordinate>,
}

/// splitmix64 finaliser: a full-avalanche mix of one word.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Combines words into one hash by chaining the finaliser.
#[inline]
fn mix_words(words: [u64; 3]) -> u64 {
    let mut h = 0x243f_6a88_85a3_08d3; // pi digits, arbitrary non-zero
    for w in words {
        h = mix(h ^ w);
    }
    h
}

/// Hash → uniform float in `[0, 1)`, matching `SimRng::unit`'s precision.
#[inline]
fn unit_from(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl CoordinateDelayModel {
    /// Samples one coordinate per node currently in `nodes`. The same
    /// `(registry regions, seed)` reproduce identical delays.
    pub fn generate(nodes: &NodeRegistry, seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x434f_4f52_4449_4e41); // "COORDINA"
        let coords = nodes
            .iter()
            .map(|info| NodeCoordinate {
                region: info.region,
                key: rng.next_u64(),
            })
            .collect();
        CoordinateDelayModel { seed, coords }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Whether the model covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Base one-way delay in µs for the unordered pair `(i, j)`, i ≠ j.
    fn base_us(&self, i: usize, j: usize) -> u64 {
        // Symmetric in (i, j): hash the ordered-by-index coordinates.
        let (a, b) = if i <= j { (i, j) } else { (j, i) };
        let (ca, cb) = (self.coords[a], self.coords[b]);
        let h = mix_words([self.seed, ca.key, cb.key]);
        let u = unit_from(h);
        let ms = if ca.region == cb.region {
            5.0 + u * 35.0 // U(5, 40) ms intra-cluster spread
        } else {
            ca.region.base_delay_ms(cb.region) * (0.65 + u * 0.70) // ±35% route spread
        };
        (ms * 1_000.0) as u64
    }

    /// Per-ordered-pair drift multiplier in per-mille for `epoch`,
    /// uniform over `[900, 1200)` like the dense generator's table.
    fn drift_pm(&self, i: usize, j: usize, epoch: usize) -> u64 {
        let h = mix_words([
            self.seed ^ (epoch as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            self.coords[i].key,
            self.coords[j].key.rotate_left(17),
        ]);
        900 + ((u128::from(h) * 300) >> 64) as u64
    }
}

impl DelayModel for CoordinateDelayModel {
    fn one_way(&self, at: SimTime, from: NodeId, to: NodeId) -> SimDuration {
        let (i, j) = (from.index(), to.index());
        assert!(
            i < self.coords.len() && j < self.coords.len(),
            "node outside coordinate set"
        );
        if i == j {
            return SimDuration::ZERO;
        }
        let epoch = epoch_index(at) as usize % EPOCHS;
        SimDuration::from_micros(self.base_us(i, j) * self.drift_pm(i, j, epoch) / 1_000)
    }
}

/// Number of drift epochs elapsed at `at` (15-minute granularity, the
/// shared geometry of both synthetic backends). Delays are constant
/// between consecutive indices, which is what lets the session's
/// periodic adaptation skip ticks that cross no epoch boundary.
pub fn epoch_index(at: SimTime) -> u64 {
    (at - SimTime::ZERO) / EPOCH
}

/// Node-count threshold above which [`DelayBackend::auto`] switches from
/// the dense matrix to coordinates. At 1,024 nodes the dense tables cost
/// ≈ 42 MB and climb quadratically; coordinates stay at 16 B per node.
pub const COORDINATE_THRESHOLD: usize = 1_024;

/// The delay substrate of a session: either the dense synthetic matrix
/// (exact per-pair tables, O(n²) memory — right for small populations and
/// drop-in trace replacement) or the O(n) coordinate model for large
/// populations.
#[derive(Debug, Clone)]
pub enum DelayBackend {
    /// Dense `SyntheticPlanetLab` matrix.
    Dense(SyntheticPlanetLab),
    /// O(n) coordinate model.
    Coordinate(CoordinateDelayModel),
}

impl DelayBackend {
    /// Picks a backend by population size: dense below
    /// [`COORDINATE_THRESHOLD`] nodes, coordinates at or above it.
    pub fn auto(nodes: &NodeRegistry, seed: u64) -> Self {
        if nodes.len() >= COORDINATE_THRESHOLD {
            DelayBackend::Coordinate(CoordinateDelayModel::generate(nodes, seed))
        } else {
            DelayBackend::Dense(SyntheticPlanetLab::generate(nodes, seed))
        }
    }

    /// Whether the O(n) coordinate model is active.
    pub fn is_coordinate(&self) -> bool {
        matches!(self, DelayBackend::Coordinate(_))
    }

    /// Short backend name for logs and scenario banners.
    pub fn kind(&self) -> &'static str {
        match self {
            DelayBackend::Dense(_) => "dense",
            DelayBackend::Coordinate(_) => "coordinate",
        }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        match self {
            DelayBackend::Dense(m) => m.len(),
            DelayBackend::Coordinate(m) => m.len(),
        }
    }

    /// Whether the backend covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl DelayModel for DelayBackend {
    fn one_way(&self, at: SimTime, from: NodeId, to: NodeId) -> SimDuration {
        match self {
            DelayBackend::Dense(m) => m.one_way(at, from, to),
            DelayBackend::Coordinate(m) => m.one_way(at, from, to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    fn registry(n: usize) -> NodeRegistry {
        let mut reg = NodeRegistry::new();
        for i in 0..n {
            let region = Region::ALL[i % Region::ALL.len()];
            reg.add(NodeKind::Viewer, region);
        }
        reg
    }

    #[test]
    fn self_delay_is_zero() {
        let reg = registry(4);
        let m = CoordinateDelayModel::generate(&reg, 1);
        let id = reg.iter().next().unwrap().id;
        assert_eq!(m.one_way(SimTime::ZERO, id, id), SimDuration::ZERO);
    }

    #[test]
    fn generation_is_deterministic() {
        let reg = registry(12);
        let a = CoordinateDelayModel::generate(&reg, 7);
        let b = CoordinateDelayModel::generate(&reg, 7);
        let ids: Vec<_> = reg.iter().map(|n| n.id).collect();
        for &x in &ids {
            for &y in &ids {
                assert_eq!(
                    a.one_way(SimTime::ZERO, x, y),
                    b.one_way(SimTime::ZERO, x, y)
                );
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let reg = registry(12);
        let a = CoordinateDelayModel::generate(&reg, 7);
        let b = CoordinateDelayModel::generate(&reg, 8);
        let ids: Vec<_> = reg.iter().map(|n| n.id).collect();
        let same = ids
            .iter()
            .flat_map(|&x| ids.iter().map(move |&y| (x, y)))
            .all(|(x, y)| a.one_way(SimTime::ZERO, x, y) == b.one_way(SimTime::ZERO, x, y));
        assert!(!same, "different seeds produced identical delays");
    }

    #[test]
    fn base_is_symmetric_and_in_range() {
        let reg = registry(40);
        let m = CoordinateDelayModel::generate(&reg, 3);
        for i in 0..40 {
            for j in (i + 1)..40 {
                assert_eq!(m.base_us(i, j), m.base_us(j, i));
                let ms = m.base_us(i, j) as f64 / 1_000.0;
                assert!(
                    (4.0..=203.0).contains(&ms),
                    "base {ms} ms outside plausible range"
                );
            }
        }
    }

    #[test]
    fn drift_changes_across_epochs() {
        let reg = registry(6);
        let m = CoordinateDelayModel::generate(&reg, 9);
        let ids: Vec<_> = reg.iter().map(|n| n.id).collect();
        let t0 = SimTime::ZERO;
        let t1 = SimTime::from_secs(16 * 60); // second epoch
        let changed = ids
            .iter()
            .flat_map(|&x| ids.iter().map(move |&y| (x, y)))
            .filter(|&(x, y)| x != y)
            .any(|(x, y)| m.one_way(t0, x, y) != m.one_way(t1, x, y));
        assert!(changed, "no pair drifted between epochs");
    }

    #[test]
    fn epoch_index_has_quarter_hour_granularity() {
        assert_eq!(epoch_index(SimTime::ZERO), 0);
        assert_eq!(epoch_index(SimTime::from_secs(15 * 60 - 1)), 0);
        assert_eq!(epoch_index(SimTime::from_secs(15 * 60)), 1);
        assert_eq!(epoch_index(SimTime::from_secs(4 * 3600)), 16);
    }

    #[test]
    fn auto_selects_by_population() {
        let small = registry(16);
        assert!(!DelayBackend::auto(&small, 1).is_coordinate());
        assert_eq!(DelayBackend::auto(&small, 1).kind(), "dense");
        let large = registry(COORDINATE_THRESHOLD);
        let backend = DelayBackend::auto(&large, 1);
        assert!(backend.is_coordinate());
        assert_eq!(backend.kind(), "coordinate");
        assert_eq!(backend.len(), COORDINATE_THRESHOLD);
    }

    #[test]
    fn memory_is_linear_in_nodes() {
        // 10,000 nodes: the dense backend would need ≈ 3.2 GB of tables;
        // the coordinate model carries one 16-byte coordinate per node.
        let reg = registry(10_000);
        let m = CoordinateDelayModel::generate(&reg, 5);
        assert_eq!(m.len(), 10_000);
        assert_eq!(
            std::mem::size_of::<NodeCoordinate>() * m.coords.len(),
            16 * 10_000
        );
        let ids: Vec<_> = reg.iter().map(|n| n.id).collect();
        let d = m.one_way(SimTime::ZERO, ids[0], ids[9_999]);
        assert!(d > SimDuration::ZERO);
    }
}

//! Pairwise delay models.
//!
//! The paper replays "4-hour PlanetLab traces" for inter-viewer delays. The
//! original trace archive is no longer retrievable, so this module supplies
//! (a) [`SyntheticPlanetLab`], a generator producing a delay matrix with the
//! same statistical shape (continental clustering, tens-of-ms inter-cluster
//! one-way delays, mild per-epoch drift over a 4-hour horizon), and (b)
//! [`TraceMatrix`], a loader for the original `src dst rtt_ms` text format
//! so a real trace can be substituted without code changes.

use std::error::Error;
use std::fmt;
use telecast_sim::FxHashMap;

use serde::{Deserialize, Serialize};
use telecast_sim::{SimDuration, SimRng, SimTime};

use crate::node::{NodeId, NodeRegistry};

/// A source of one-way network propagation delays between nodes.
pub trait DelayModel {
    /// One-way propagation delay from `from` to `to` at virtual time `at`.
    fn one_way(&self, at: SimTime, from: NodeId, to: NodeId) -> SimDuration;

    /// Round-trip time, by default the sum of both one-way delays.
    fn rtt(&self, at: SimTime, a: NodeId, b: NodeId) -> SimDuration {
        self.one_way(at, a, b) + self.one_way(at, b, a)
    }
}

/// A delay model that returns the same delay for every pair; useful in unit
/// tests and for isolating algorithmic effects from network noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedDelay(pub SimDuration);

impl DelayModel for FixedDelay {
    fn one_way(&self, _at: SimTime, from: NodeId, to: NodeId) -> SimDuration {
        if from == to {
            SimDuration::ZERO
        } else {
            self.0
        }
    }
}

/// Duration of one synthetic trace epoch (the drift granularity), shared
/// with the O(n) coordinate backend so both agree on when delays move.
pub(crate) const EPOCH: SimDuration = SimDuration::from_secs(15 * 60);
/// Number of epochs covering the 4-hour PlanetLab horizon.
pub(crate) const EPOCHS: usize = 16;

/// Synthetic PlanetLab-style delay matrix (see `DESIGN.md` §4).
///
/// Construction samples, for every ordered node pair, a base one-way delay
/// from the continental distance table plus intra-cluster spread, then a
/// per-epoch multiplicative drift in `[0.9, 1.2]` over sixteen 15-minute
/// epochs. The matrix is symmetric in its base delays (drift is sampled per
/// ordered pair, as real asymmetric routes drift independently).
#[derive(Debug, Clone)]
pub struct SyntheticPlanetLab {
    n: usize,
    /// Base one-way delay in µs, row-major `n × n`.
    base_us: Vec<u64>,
    /// Drift multiplier per epoch and pair, `EPOCHS × n × n`, in per-mille.
    drift_pm: Vec<u16>,
}

impl SyntheticPlanetLab {
    /// Generates a matrix for every node currently in `nodes`, seeded so
    /// the same `(registry size, regions, seed)` reproduce identical
    /// delays.
    pub fn generate(nodes: &NodeRegistry, seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x504c_414e_4554_4c41); // "PLANETLA"
        let n = nodes.len();
        let regions: Vec<_> = nodes.iter().map(|info| info.region).collect();
        let mut base_us = vec![0u64; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let base = regions[i].base_delay_ms(regions[j]);
                // Intra-cluster spread: U(5, 40) ms replaces the diagonal
                // figure; inter-cluster pairs get ±35% route spread.
                let ms = if regions[i] == regions[j] {
                    rng.range(5.0..40.0)
                } else {
                    base * rng.range(0.65..1.35)
                };
                let us = (ms * 1_000.0) as u64;
                base_us[i * n + j] = us;
                base_us[j * n + i] = us;
            }
        }
        let mut drift_pm = vec![1_000u16; EPOCHS * n * n];
        for slot in drift_pm.iter_mut() {
            *slot = rng.range(900..1_200u16);
        }
        SyntheticPlanetLab {
            n,
            base_us,
            drift_pm,
        }
    }

    /// Number of nodes covered by the matrix.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn epoch_of(at: SimTime) -> usize {
        ((at - SimTime::ZERO) / EPOCH) as usize % EPOCHS
    }
}

impl DelayModel for SyntheticPlanetLab {
    fn one_way(&self, at: SimTime, from: NodeId, to: NodeId) -> SimDuration {
        let (i, j) = (from.index(), to.index());
        assert!(i < self.n && j < self.n, "node outside delay matrix");
        if i == j {
            return SimDuration::ZERO;
        }
        let base = self.base_us[i * self.n + j];
        let epoch = Self::epoch_of(at);
        let drift = self.drift_pm[epoch * self.n * self.n + i * self.n + j] as u64;
        SimDuration::from_micros(base * drift / 1_000)
    }
}

/// Error parsing a PlanetLab-format trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for TraceParseError {}

/// A delay matrix loaded from the original PlanetLab `src dst rtt_ms`
/// format (one measurement per line; repeated pairs are averaged). One-way
/// delay is taken as half the measured RTT. Pairs never measured fall back
/// to the median of all measured delays.
#[derive(Debug, Clone, Default)]
pub struct TraceMatrix {
    one_way_us: FxHashMap<(u32, u32), u64>,
    fallback_us: u64,
}

impl TraceMatrix {
    /// Parses the `src dst rtt_ms` text format. Lines starting with `#` and
    /// blank lines are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`TraceParseError`] on malformed lines or non-finite RTTs.
    pub fn parse(text: &str) -> Result<Self, TraceParseError> {
        let mut sums: FxHashMap<(u32, u32), (f64, u32)> = FxHashMap::default();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split_whitespace();
            let parse_u32 = |s: Option<&str>, what: &str| -> Result<u32, TraceParseError> {
                s.ok_or_else(|| TraceParseError {
                    line: idx + 1,
                    message: format!("missing {what}"),
                })?
                .parse()
                .map_err(|_| TraceParseError {
                    line: idx + 1,
                    message: format!("invalid {what}"),
                })
            };
            let src = parse_u32(fields.next(), "source id")?;
            let dst = parse_u32(fields.next(), "destination id")?;
            let rtt: f64 = fields
                .next()
                .ok_or_else(|| TraceParseError {
                    line: idx + 1,
                    message: "missing rtt".into(),
                })?
                .parse()
                .map_err(|_| TraceParseError {
                    line: idx + 1,
                    message: "invalid rtt".into(),
                })?;
            if !rtt.is_finite() || rtt < 0.0 {
                return Err(TraceParseError {
                    line: idx + 1,
                    message: format!("non-finite rtt {rtt}"),
                });
            }
            let entry = sums.entry((src, dst)).or_insert((0.0, 0));
            entry.0 += rtt;
            entry.1 += 1;
        }
        let mut one_way_us = FxHashMap::default();
        let mut all: Vec<u64> = Vec::new();
        for ((src, dst), (sum, count)) in sums {
            let us = (sum / count as f64 / 2.0 * 1_000.0) as u64;
            all.push(us);
            one_way_us.insert((src, dst), us);
        }
        all.sort_unstable();
        let fallback_us = all.get(all.len() / 2).copied().unwrap_or(40_000);
        Ok(TraceMatrix {
            one_way_us,
            fallback_us,
        })
    }

    /// Number of directed pairs with measurements.
    pub fn measured_pairs(&self) -> usize {
        self.one_way_us.len()
    }
}

impl DelayModel for TraceMatrix {
    fn one_way(&self, _at: SimTime, from: NodeId, to: NodeId) -> SimDuration {
        if from == to {
            return SimDuration::ZERO;
        }
        let key = (from.index() as u32, to.index() as u32);
        let rev = (to.index() as u32, from.index() as u32);
        let us = self
            .one_way_us
            .get(&key)
            .or_else(|| self.one_way_us.get(&rev))
            .copied()
            .unwrap_or(self.fallback_us);
        SimDuration::from_micros(us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;
    use crate::region::Region;

    fn registry(n: usize) -> NodeRegistry {
        let mut reg = NodeRegistry::new();
        for i in 0..n {
            let region = Region::ALL[i % Region::ALL.len()];
            reg.add(NodeKind::Viewer, region);
        }
        reg
    }

    #[test]
    fn self_delay_is_zero() {
        let reg = registry(4);
        let m = SyntheticPlanetLab::generate(&reg, 1);
        let id = reg.iter().next().unwrap().id;
        assert_eq!(m.one_way(SimTime::ZERO, id, id), SimDuration::ZERO);
    }

    #[test]
    fn generation_is_deterministic() {
        let reg = registry(10);
        let a = SyntheticPlanetLab::generate(&reg, 7);
        let b = SyntheticPlanetLab::generate(&reg, 7);
        let ids: Vec<_> = reg.iter().map(|n| n.id).collect();
        for &x in &ids {
            for &y in &ids {
                assert_eq!(
                    a.one_way(SimTime::ZERO, x, y),
                    b.one_way(SimTime::ZERO, x, y)
                );
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let reg = registry(10);
        let a = SyntheticPlanetLab::generate(&reg, 7);
        let b = SyntheticPlanetLab::generate(&reg, 8);
        let ids: Vec<_> = reg.iter().map(|n| n.id).collect();
        let same = ids
            .iter()
            .flat_map(|&x| ids.iter().map(move |&y| (x, y)))
            .all(|(x, y)| a.one_way(SimTime::ZERO, x, y) == b.one_way(SimTime::ZERO, x, y));
        assert!(!same, "different seeds produced identical matrices");
    }

    #[test]
    fn delays_are_realistic_magnitude() {
        let reg = registry(50);
        let m = SyntheticPlanetLab::generate(&reg, 3);
        let ids: Vec<_> = reg.iter().map(|n| n.id).collect();
        for &x in &ids {
            for &y in &ids {
                if x == y {
                    continue;
                }
                let d = m.one_way(SimTime::ZERO, x, y);
                assert!(
                    d >= SimDuration::from_millis(4) && d <= SimDuration::from_millis(250),
                    "delay {d} outside PlanetLab-plausible range"
                );
            }
        }
    }

    #[test]
    fn drift_changes_across_epochs() {
        let reg = registry(6);
        let m = SyntheticPlanetLab::generate(&reg, 9);
        let ids: Vec<_> = reg.iter().map(|n| n.id).collect();
        let t0 = SimTime::ZERO;
        let t1 = SimTime::from_secs(16 * 60); // second epoch
        let changed = ids
            .iter()
            .flat_map(|&x| ids.iter().map(move |&y| (x, y)))
            .filter(|&(x, y)| x != y)
            .any(|(x, y)| m.one_way(t0, x, y) != m.one_way(t1, x, y));
        assert!(changed, "no pair drifted between epochs");
    }

    #[test]
    fn rtt_is_sum_of_one_ways() {
        let reg = registry(4);
        let m = SyntheticPlanetLab::generate(&reg, 11);
        let ids: Vec<_> = reg.iter().map(|n| n.id).collect();
        let (a, b) = (ids[0], ids[1]);
        assert_eq!(
            m.rtt(SimTime::ZERO, a, b),
            m.one_way(SimTime::ZERO, a, b) + m.one_way(SimTime::ZERO, b, a)
        );
    }

    #[test]
    fn fixed_delay_is_fixed() {
        let reg = registry(3);
        let ids: Vec<_> = reg.iter().map(|n| n.id).collect();
        let m = FixedDelay(SimDuration::from_millis(25));
        assert_eq!(
            m.one_way(SimTime::ZERO, ids[0], ids[1]),
            SimDuration::from_millis(25)
        );
        assert_eq!(m.one_way(SimTime::ZERO, ids[2], ids[2]), SimDuration::ZERO);
    }

    #[test]
    fn trace_parse_happy_path() {
        let text = "# planetlab pings\n0 1 80.0\n1 0 60.0\n0 1 100.0\n";
        let m = TraceMatrix::parse(text).expect("valid trace");
        assert_eq!(m.measured_pairs(), 2);
        let reg = registry(2);
        let ids: Vec<_> = reg.iter().map(|n| n.id).collect();
        // (0,1) averaged to 90ms RTT → 45ms one-way.
        assert_eq!(
            m.one_way(SimTime::ZERO, ids[0], ids[1]),
            SimDuration::from_millis(45)
        );
        assert_eq!(
            m.one_way(SimTime::ZERO, ids[1], ids[0]),
            SimDuration::from_millis(30)
        );
    }

    #[test]
    fn trace_parse_errors_are_located() {
        let err = TraceMatrix::parse("0 1 80\nbogus line\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = TraceMatrix::parse("0 1\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("line 1"));
        let err = TraceMatrix::parse("0 1 -5\n").unwrap_err();
        assert!(err.message.contains("non-finite"));
    }

    #[test]
    fn trace_unmeasured_pairs_use_fallback() {
        let m = TraceMatrix::parse("0 1 80\n").expect("valid");
        let reg = registry(3);
        let ids: Vec<_> = reg.iter().map(|n| n.id).collect();
        // Pair (0,2) never measured → median fallback (the only sample).
        assert_eq!(
            m.one_way(SimTime::ZERO, ids[0], ids[2]),
            SimDuration::from_millis(40)
        );
    }
}

#![warn(missing_docs)]

//! Network substrate for the 4D TeleCast reproduction.
//!
//! Provides what the paper's simulator takes from its environment:
//!
//! * a **node registry** with geographic regions (the basis for LSC
//!   clustering),
//! * a **pairwise delay model** shaped like the 4-hour PlanetLab ping
//!   traces the paper replays — a dense synthetic matrix for small
//!   populations (see `DESIGN.md` §4), an O(n)-memory coordinate model
//!   for 10k+-viewer sessions ([`DelayBackend`] picks one by population
//!   size), plus a loader for the original trace text format,
//! * **bandwidth capacity accounting** for viewer inbound/outbound ports
//!   and the CDN pool,
//! * a **link transfer model** for frame-sized payloads.
//!
//! # Example
//!
//! ```
//! use telecast_net::{NodeKind, NodeRegistry, Region, SyntheticPlanetLab, DelayModel};
//! use telecast_sim::SimTime;
//!
//! let mut nodes = NodeRegistry::new();
//! let a = nodes.add(NodeKind::Viewer, Region::NorthAmerica);
//! let b = nodes.add(NodeKind::Viewer, Region::Europe);
//!
//! let delays = SyntheticPlanetLab::generate(&nodes, 42);
//! let d = delays.one_way(SimTime::ZERO, a, b);
//! assert!(d.as_millis() >= 20, "transatlantic delay should be tens of ms");
//! ```

mod bandwidth;
mod coordinates;
mod link;
mod node;
mod planetlab;
mod region;

pub use bandwidth::{
    Bandwidth, BandwidthProfile, CapacityAccount, InsufficientBandwidthError, NodePorts,
};
pub use coordinates::{epoch_index, CoordinateDelayModel, DelayBackend, COORDINATE_THRESHOLD};
pub use link::transfer_time;
pub use node::{NodeId, NodeInfo, NodeKind, NodeRegistry};
pub use planetlab::{DelayModel, FixedDelay, SyntheticPlanetLab, TraceMatrix, TraceParseError};
pub use region::Region;

//! Geographic regions used for LSC clustering and delay synthesis.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A coarse geographic region.
///
/// The paper "divide\[s\] the geographical region into several region-based
/// clusters and assign\[s\] a Local Session Controller (LSC) to each cluster".
/// Five continental clusters match the PlanetLab deployment footprint of the
/// era.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Region {
    /// North America (the densest PlanetLab cluster).
    NorthAmerica,
    /// Europe.
    Europe,
    /// East and South Asia.
    Asia,
    /// South America.
    SouthAmerica,
    /// Australia / Oceania.
    Oceania,
}

impl Region {
    /// All regions, in a fixed order.
    pub const ALL: [Region; 5] = [
        Region::NorthAmerica,
        Region::Europe,
        Region::Asia,
        Region::SouthAmerica,
        Region::Oceania,
    ];

    /// PlanetLab-era node share per region, used when scattering synthetic
    /// viewers (rough weights: NA-heavy, then EU, then Asia).
    pub fn weight(self) -> f64 {
        match self {
            Region::NorthAmerica => 0.40,
            Region::Europe => 0.30,
            Region::Asia => 0.17,
            Region::SouthAmerica => 0.08,
            Region::Oceania => 0.05,
        }
    }

    /// [`Region::weight`] as an integer percentage. The five percentages
    /// sum to exactly 100, so capacity split with integer arithmetic
    /// (`total × percent / 100` plus a remainder slot) is exact — the
    /// per-region CDN pools rely on this to conserve the global pool.
    pub fn weight_percent(self) -> u64 {
        match self {
            Region::NorthAmerica => 40,
            Region::Europe => 30,
            Region::Asia => 17,
            Region::SouthAmerica => 8,
            Region::Oceania => 5,
        }
    }

    /// Index of the region inside [`Region::ALL`].
    pub fn index(self) -> usize {
        Region::ALL
            .iter()
            .position(|&r| r == self)
            .expect("region is listed in ALL")
    }

    /// Typical one-way inter-region base delay in milliseconds. Symmetric;
    /// the diagonal is handled by the intra-region distribution instead.
    pub(crate) fn base_delay_ms(self, other: Region) -> f64 {
        // A compact continental distance table, in one-way milliseconds,
        // consistent with published PlanetLab RTT studies (~2010).
        const TABLE: [[f64; 5]; 5] = [
            // NA     EU     AS     SA     OC
            [15.0, 45.0, 75.0, 65.0, 80.0],    // NA
            [45.0, 12.0, 90.0, 100.0, 140.0],  // EU
            [75.0, 90.0, 25.0, 130.0, 60.0],   // AS
            [65.0, 100.0, 130.0, 20.0, 150.0], // SA
            [80.0, 140.0, 60.0, 150.0, 15.0],  // OC
        ];
        TABLE[self.index()][other.index()]
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Region::NorthAmerica => "north-america",
            Region::Europe => "europe",
            Region::Asia => "asia",
            Region::SouthAmerica => "south-america",
            Region::Oceania => "oceania",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        let total: f64 = Region::ALL.iter().map(|r| r.weight()).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn base_delay_table_is_symmetric() {
        for &a in &Region::ALL {
            for &b in &Region::ALL {
                assert_eq!(a.base_delay_ms(b), b.base_delay_ms(a));
            }
        }
    }

    #[test]
    fn intra_region_is_fastest() {
        for &a in &Region::ALL {
            for &b in &Region::ALL {
                if a != b {
                    assert!(a.base_delay_ms(a) < a.base_delay_ms(b));
                }
            }
        }
    }

    #[test]
    fn index_round_trips() {
        for (i, &r) in Region::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn display_names_are_kebab() {
        assert_eq!(Region::NorthAmerica.to_string(), "north-america");
        assert_eq!(Region::Oceania.to_string(), "oceania");
    }
}

//! Link-level transfer model.

use telecast_sim::SimDuration;

use crate::bandwidth::Bandwidth;

/// Serialisation time of a payload of `bytes` over a link of rate `bw`,
/// i.e. the transmission component of a frame's delivery (propagation is
/// supplied by the delay model).
///
/// # Panics
///
/// Panics if `bw` is zero.
///
/// ```
/// use telecast_net::{transfer_time, Bandwidth};
/// use telecast_sim::SimDuration;
///
/// // A 25 KB 3D frame over a 2 Mbps stream allocation: 100 ms.
/// let t = transfer_time(25_000, Bandwidth::from_mbps(2));
/// assert_eq!(t, SimDuration::from_millis(100));
/// ```
pub fn transfer_time(bytes: u64, bw: Bandwidth) -> SimDuration {
    assert!(!bw.is_zero(), "cannot transfer over zero bandwidth");
    // bits / (kbit/s) = ms; keep µs precision.
    let bits = bytes * 8;
    SimDuration::from_micros(bits * 1_000 / bw.as_kbps())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_transfer_matches_hand_math() {
        // 2 Mbps stream at 10 fps → 25 KB frames → exactly one frame period.
        assert_eq!(
            transfer_time(25_000, Bandwidth::from_mbps(2)),
            SimDuration::from_millis(100)
        );
    }

    #[test]
    fn zero_bytes_is_instant() {
        assert_eq!(transfer_time(0, Bandwidth::from_kbps(1)), SimDuration::ZERO);
    }

    #[test]
    fn sub_millisecond_precision() {
        // 125 bytes over 2 Mbps = 0.5 ms.
        assert_eq!(
            transfer_time(125, Bandwidth::from_mbps(2)),
            SimDuration::from_micros(500)
        );
    }

    #[test]
    #[should_panic(expected = "zero bandwidth")]
    fn zero_bandwidth_panics() {
        transfer_time(1, Bandwidth::ZERO);
    }
}

//! Bandwidth quantities and capacity accounting.
//!
//! Every 4D TeleCast admission decision is a bandwidth reservation: viewer
//! inbound ports, viewer outbound ports, and the CDN outbound pool are all
//! [`CapacityAccount`]s. Reservation failures are what turn into dropped
//! low-priority streams and rejected viewers.

use std::error::Error;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A bandwidth quantity in kilobits per second.
///
/// The paper's magnitudes: one 3DTI stream is 400 Kbps–5 Mbps (2 Mbps in the
/// evaluation), viewer inbound 12 Mbps, CDN pool 6000 Mbps.
///
/// ```
/// use telecast_net::Bandwidth;
///
/// let stream = Bandwidth::from_mbps(2);
/// let inbound = Bandwidth::from_mbps(12);
/// assert_eq!(inbound / stream, 6); // exactly the paper's 6-stream views
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// No bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// Creates a quantity from kilobits per second.
    pub const fn from_kbps(kbps: u64) -> Self {
        Bandwidth(kbps)
    }

    /// Creates a quantity from megabits per second.
    pub const fn from_mbps(mbps: u64) -> Self {
        Bandwidth(mbps * 1_000)
    }

    /// Kilobits per second.
    pub const fn as_kbps(self) -> u64 {
        self.0
    }

    /// Megabits per second as a float.
    pub fn as_mbps_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Whether this is zero bandwidth.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Bandwidth) -> Option<Bandwidth> {
        self.0.checked_sub(rhs.0).map(Bandwidth)
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Bandwidth {
    fn add_assign(&mut self, rhs: Bandwidth) {
        *self = *self + rhs;
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(
            self.0
                .checked_sub(rhs.0)
                .expect("bandwidth subtraction underflow"),
        )
    }
}

impl SubAssign for Bandwidth {
    fn sub_assign(&mut self, rhs: Bandwidth) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: u64) -> Bandwidth {
        Bandwidth(self.0.saturating_mul(rhs))
    }
}

impl Div<Bandwidth> for Bandwidth {
    type Output = u64;
    /// How many whole `rhs` streams fit in `self` — the paper's out-degree
    /// computation `oDeg = ⌊obw / bw⌋`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: Bandwidth) -> u64 {
        assert!(!rhs.is_zero(), "division by zero bandwidth");
        self.0 / rhs.0
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, Add::add)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000 && self.0 % 100 == 0 {
            write!(f, "{:.1}Mbps", self.as_mbps_f64())
        } else {
            write!(f, "{}Kbps", self.0)
        }
    }
}

/// Error returned when a reservation exceeds the remaining capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsufficientBandwidthError {
    /// Amount that was requested.
    pub requested: Bandwidth,
    /// Amount that was still available.
    pub available: Bandwidth,
}

impl fmt::Display for InsufficientBandwidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "insufficient bandwidth: requested {} but only {} available",
            self.requested, self.available
        )
    }
}

impl Error for InsufficientBandwidthError {}

/// A bounded bandwidth account with reserve/release semantics.
///
/// ```
/// use telecast_net::{Bandwidth, CapacityAccount};
///
/// let mut port = CapacityAccount::new(Bandwidth::from_mbps(12));
/// port.reserve(Bandwidth::from_mbps(2))?;
/// assert_eq!(port.available(), Bandwidth::from_mbps(10));
/// port.release(Bandwidth::from_mbps(2));
/// assert_eq!(port.used(), Bandwidth::ZERO);
/// # Ok::<(), telecast_net::InsufficientBandwidthError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapacityAccount {
    total: Bandwidth,
    used: Bandwidth,
}

impl CapacityAccount {
    /// Creates an account with the given total capacity and nothing used.
    pub fn new(total: Bandwidth) -> Self {
        CapacityAccount {
            total,
            used: Bandwidth::ZERO,
        }
    }

    /// Total capacity.
    pub fn total(&self) -> Bandwidth {
        self.total
    }

    /// Currently reserved amount.
    pub fn used(&self) -> Bandwidth {
        self.used
    }

    /// Remaining capacity.
    pub fn available(&self) -> Bandwidth {
        self.total.saturating_sub(self.used)
    }

    /// Whether `amount` could currently be reserved.
    pub fn can_reserve(&self, amount: Bandwidth) -> bool {
        amount <= self.available()
    }

    /// Reserves `amount`.
    ///
    /// # Errors
    ///
    /// Returns [`InsufficientBandwidthError`] (and reserves nothing) if less
    /// than `amount` is available.
    pub fn reserve(&mut self, amount: Bandwidth) -> Result<(), InsufficientBandwidthError> {
        if self.can_reserve(amount) {
            self.used += amount;
            Ok(())
        } else {
            Err(InsufficientBandwidthError {
                requested: amount,
                available: self.available(),
            })
        }
    }

    /// Releases a previous reservation.
    ///
    /// # Panics
    ///
    /// Panics if `amount` exceeds the currently reserved total — releasing
    /// bandwidth that was never reserved is an accounting bug.
    pub fn release(&mut self, amount: Bandwidth) {
        assert!(
            amount <= self.used,
            "release of {amount} exceeds reserved {}",
            self.used
        );
        self.used -= amount;
    }

    /// Replaces the total capacity, keeping current reservations intact —
    /// the primitive behind elastic pools (CDN autoscaling grows and
    /// shrinks its outbound account without disturbing live leases).
    ///
    /// # Panics
    ///
    /// Panics if `new_total` is below the currently reserved amount;
    /// shrinking under live reservations is an accounting bug — callers
    /// must clamp to [`CapacityAccount::used`] first.
    pub fn resize(&mut self, new_total: Bandwidth) {
        assert!(
            new_total >= self.used,
            "resize to {new_total} below reserved {}",
            self.used
        );
        self.total = new_total;
    }

    /// Fraction of capacity in use, in `[0, 1]`; 0 for a zero-capacity
    /// account.
    pub fn utilisation(&self) -> f64 {
        if self.total.is_zero() {
            0.0
        } else {
            self.used.as_kbps() as f64 / self.total.as_kbps() as f64
        }
    }
}

/// A distribution over viewer port capacities, matching the paper's sweeps:
/// fixed values (`Cobw = 6 Mbps`) or uniform ranges (`Cobw ~ U(4, 14) Mbps`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BandwidthProfile {
    /// Every viewer gets exactly this capacity.
    Fixed(Bandwidth),
    /// Capacities drawn uniformly from `[lo, hi]` (inclusive), in Kbps
    /// resolution.
    Uniform {
        /// Lower bound.
        lo: Bandwidth,
        /// Upper bound.
        hi: Bandwidth,
    },
}

impl BandwidthProfile {
    /// Uniform profile over `[lo, hi]` megabits per second.
    pub fn uniform_mbps(lo: u64, hi: u64) -> Self {
        BandwidthProfile::Uniform {
            lo: Bandwidth::from_mbps(lo),
            hi: Bandwidth::from_mbps(hi),
        }
    }

    /// Fixed profile of `mbps` megabits per second.
    pub fn fixed_mbps(mbps: u64) -> Self {
        BandwidthProfile::Fixed(Bandwidth::from_mbps(mbps))
    }

    /// Draws one capacity.
    ///
    /// # Panics
    ///
    /// Panics if a uniform profile has `lo > hi`.
    pub fn sample(&self, rng: &mut telecast_sim::SimRng) -> Bandwidth {
        match *self {
            BandwidthProfile::Fixed(bw) => bw,
            BandwidthProfile::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform profile with lo > hi");
                Bandwidth::from_kbps(rng.range(lo.as_kbps()..=hi.as_kbps()))
            }
        }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> Bandwidth {
        match *self {
            BandwidthProfile::Fixed(bw) => bw,
            BandwidthProfile::Uniform { lo, hi } => {
                Bandwidth::from_kbps((lo.as_kbps() + hi.as_kbps()) / 2)
            }
        }
    }
}

impl fmt::Display for BandwidthProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BandwidthProfile::Fixed(bw) => write!(f, "{bw}"),
            BandwidthProfile::Uniform { lo, hi } => {
                write!(f, "U({:.0},{:.0})Mbps", lo.as_mbps_f64(), hi.as_mbps_f64())
            }
        }
    }
}

/// The two ports of a viewer gateway: inbound (`C_ibw`) and outbound
/// (`C_obw`) capacity, reserved independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodePorts {
    /// Download capacity.
    pub inbound: CapacityAccount,
    /// Upload capacity.
    pub outbound: CapacityAccount,
}

impl NodePorts {
    /// Creates ports with the given capacities.
    pub fn new(inbound: Bandwidth, outbound: Bandwidth) -> Self {
        NodePorts {
            inbound: CapacityAccount::new(inbound),
            outbound: CapacityAccount::new(outbound),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_convert() {
        assert_eq!(Bandwidth::from_mbps(2).as_kbps(), 2_000);
        assert_eq!(Bandwidth::from_mbps(2).as_mbps_f64(), 2.0);
    }

    #[test]
    fn out_degree_division() {
        // Fig. 9: 10 Mbps outbound over 2 Mbps streams → 5 slots.
        assert_eq!(Bandwidth::from_mbps(10) / Bandwidth::from_mbps(2), 5);
        assert_eq!(Bandwidth::from_kbps(3_999) / Bandwidth::from_mbps(2), 1);
        assert_eq!(Bandwidth::ZERO / Bandwidth::from_mbps(2), 0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Bandwidth::from_mbps(1) / Bandwidth::ZERO;
    }

    #[test]
    fn reserve_and_release_round_trip() {
        let mut acct = CapacityAccount::new(Bandwidth::from_mbps(6));
        acct.reserve(Bandwidth::from_mbps(4)).expect("fits");
        assert_eq!(acct.available(), Bandwidth::from_mbps(2));
        assert!((acct.utilisation() - 4.0 / 6.0).abs() < 1e-9);
        acct.release(Bandwidth::from_mbps(4));
        assert_eq!(acct.available(), Bandwidth::from_mbps(6));
    }

    #[test]
    fn reserve_failure_leaves_state_unchanged() {
        let mut acct = CapacityAccount::new(Bandwidth::from_mbps(3));
        let err = acct.reserve(Bandwidth::from_mbps(4)).unwrap_err();
        assert_eq!(err.requested, Bandwidth::from_mbps(4));
        assert_eq!(err.available, Bandwidth::from_mbps(3));
        assert_eq!(acct.used(), Bandwidth::ZERO);
    }

    #[test]
    fn reserve_exact_capacity_succeeds() {
        let mut acct = CapacityAccount::new(Bandwidth::from_mbps(2));
        acct.reserve(Bandwidth::from_mbps(2)).expect("exact fit");
        assert!(!acct.can_reserve(Bandwidth::from_kbps(1)));
    }

    #[test]
    fn resize_grows_and_shrinks_around_reservations() {
        let mut acct = CapacityAccount::new(Bandwidth::from_mbps(6));
        acct.reserve(Bandwidth::from_mbps(4)).expect("fits");
        acct.resize(Bandwidth::from_mbps(10));
        assert_eq!(acct.total(), Bandwidth::from_mbps(10));
        assert_eq!(acct.available(), Bandwidth::from_mbps(6));
        acct.resize(Bandwidth::from_mbps(4));
        assert_eq!(acct.available(), Bandwidth::ZERO);
        assert_eq!(acct.used(), Bandwidth::from_mbps(4));
    }

    #[test]
    #[should_panic(expected = "below reserved")]
    fn resize_under_reservations_panics() {
        let mut acct = CapacityAccount::new(Bandwidth::from_mbps(6));
        acct.reserve(Bandwidth::from_mbps(4)).expect("fits");
        acct.resize(Bandwidth::from_mbps(3));
    }

    #[test]
    #[should_panic(expected = "exceeds reserved")]
    fn over_release_panics() {
        let mut acct = CapacityAccount::new(Bandwidth::from_mbps(2));
        acct.release(Bandwidth::from_kbps(1));
    }

    #[test]
    fn zero_capacity_account() {
        let acct = CapacityAccount::new(Bandwidth::ZERO);
        assert_eq!(acct.utilisation(), 0.0);
        assert!(!acct.can_reserve(Bandwidth::from_kbps(1)));
        assert!(acct.can_reserve(Bandwidth::ZERO));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bandwidth::from_mbps(2).to_string(), "2.0Mbps");
        assert_eq!(Bandwidth::from_kbps(400).to_string(), "400Kbps");
        let err = InsufficientBandwidthError {
            requested: Bandwidth::from_mbps(4),
            available: Bandwidth::from_mbps(1),
        };
        assert!(err.to_string().contains("requested 4.0Mbps"));
    }

    #[test]
    fn bandwidth_sums() {
        let total: Bandwidth = (1..=3).map(Bandwidth::from_mbps).sum();
        assert_eq!(total, Bandwidth::from_mbps(6));
    }

    #[test]
    fn profile_fixed_always_same() {
        let mut rng = telecast_sim::SimRng::seed_from_u64(1);
        let p = BandwidthProfile::fixed_mbps(6);
        for _ in 0..10 {
            assert_eq!(p.sample(&mut rng), Bandwidth::from_mbps(6));
        }
        assert_eq!(p.mean(), Bandwidth::from_mbps(6));
    }

    #[test]
    fn profile_uniform_stays_in_range() {
        let mut rng = telecast_sim::SimRng::seed_from_u64(2);
        let p = BandwidthProfile::uniform_mbps(4, 14);
        for _ in 0..1_000 {
            let bw = p.sample(&mut rng);
            assert!(bw >= Bandwidth::from_mbps(4) && bw <= Bandwidth::from_mbps(14));
        }
        assert_eq!(p.mean(), Bandwidth::from_mbps(9));
    }

    #[test]
    fn profile_display() {
        assert_eq!(BandwidthProfile::fixed_mbps(6).to_string(), "6.0Mbps");
        assert_eq!(
            BandwidthProfile::uniform_mbps(0, 12).to_string(),
            "U(0,12)Mbps"
        );
    }
}

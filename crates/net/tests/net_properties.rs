//! Property tests for the network substrate: capacity accounting never goes
//! negative, synthetic delays are symmetric in their base component, and
//! trace parsing round-trips.

use proptest::prelude::*;
use telecast_net::{
    Bandwidth, CapacityAccount, CoordinateDelayModel, DelayModel, NodeKind, NodeRegistry, Region,
    SyntheticPlanetLab,
};
use telecast_sim::{parallel_map_with, SimDuration, SimTime};

fn mixed_registry(n: usize) -> NodeRegistry {
    let mut reg = NodeRegistry::new();
    for i in 0..n {
        reg.add(NodeKind::Viewer, Region::ALL[i % Region::ALL.len()]);
    }
    reg
}

proptest! {
    /// Any interleaving of successful reserves and releases keeps
    /// `used + available == total` and never over-commits.
    #[test]
    fn capacity_accounting_is_conservative(
        total in 1u64..20_000,
        ops in proptest::collection::vec((any::<bool>(), 1u64..5_000), 0..100),
    ) {
        let total = Bandwidth::from_kbps(total);
        let mut acct = CapacityAccount::new(total);
        let mut outstanding: Vec<Bandwidth> = Vec::new();
        for (is_reserve, amount) in ops {
            let amount = Bandwidth::from_kbps(amount);
            if is_reserve {
                if acct.reserve(amount).is_ok() {
                    outstanding.push(amount);
                }
            } else if let Some(r) = outstanding.pop() {
                acct.release(r);
            }
            prop_assert!(acct.used() <= acct.total());
            prop_assert_eq!(acct.used() + acct.available(), acct.total());
            let expected: Bandwidth = outstanding.iter().copied().sum();
            prop_assert_eq!(acct.used(), expected);
        }
    }

    /// The synthetic PlanetLab matrix is symmetric at t=0 (drift multipliers
    /// are per-direction, but epoch 0 uses the same base) and zero on the
    /// diagonal.
    #[test]
    fn synthetic_delays_well_formed(n in 2usize..40, seed in any::<u64>()) {
        let mut reg = NodeRegistry::new();
        for i in 0..n {
            reg.add(NodeKind::Viewer, Region::ALL[i % Region::ALL.len()]);
        }
        let m = SyntheticPlanetLab::generate(&reg, seed);
        let ids: Vec<_> = reg.iter().map(|info| info.id).collect();
        for &a in &ids {
            prop_assert_eq!(m.one_way(SimTime::ZERO, a, a), SimDuration::ZERO);
            for &b in &ids {
                if a == b { continue; }
                let d = m.one_way(SimTime::ZERO, a, b);
                prop_assert!(d > SimDuration::ZERO);
                prop_assert!(d < SimDuration::from_millis(400));
            }
        }
    }

    /// Out-degree division is exactly floor(obw/bw).
    #[test]
    fn out_degree_is_floor(obw in 0u64..100_000, bw in 1u64..10_000) {
        let deg = Bandwidth::from_kbps(obw) / Bandwidth::from_kbps(bw);
        prop_assert_eq!(deg, obw / bw);
    }

    /// The coordinate model is well-formed for any seed: zero self-delay
    /// and positive, PlanetLab-plausible pair delays. (Base delays are
    /// symmetric; the full one-way value is not, since drift is sampled
    /// per ordered pair like real asymmetric routes.)
    #[test]
    fn coordinate_delays_well_formed(n in 2usize..40, seed in any::<u64>()) {
        let reg = mixed_registry(n);
        let m = CoordinateDelayModel::generate(&reg, seed);
        let ids: Vec<_> = reg.iter().map(|info| info.id).collect();
        for &a in &ids {
            prop_assert_eq!(m.one_way(SimTime::ZERO, a, a), SimDuration::ZERO);
            for &b in &ids {
                if a == b { continue; }
                let d = m.one_way(SimTime::ZERO, a, b);
                prop_assert!(d > SimDuration::ZERO);
                prop_assert!(d < SimDuration::from_millis(400));
            }
        }
    }

    /// Coordinate lookups are pure: fanning the same pair set over any
    /// worker count produces bit-identical delays (the model is shared by
    /// reference across the `parallel_map` workers).
    #[test]
    fn coordinate_delays_deterministic_across_workers(seed in any::<u64>()) {
        let reg = mixed_registry(24);
        let m = CoordinateDelayModel::generate(&reg, seed);
        let ids: Vec<_> = reg.iter().map(|info| info.id).collect();
        let pairs: Vec<_> = ids
            .iter()
            .flat_map(|&a| ids.iter().map(move |&b| (a, b)))
            .collect();
        let at = SimTime::from_secs(20 * 60); // second drift epoch
        let baseline: Vec<SimDuration> = pairs
            .iter()
            .map(|&(a, b)| m.one_way(at, a, b))
            .collect();
        for workers in [1usize, 2, 7] {
            let out = parallel_map_with(pairs.clone(), workers, |(a, b)| m.one_way(at, a, b));
            prop_assert_eq!(&out, &baseline, "worker count {} diverged", workers);
        }
    }
}

/// Dense-vs-coordinate parity: both backends draw pair delays from the
/// same distribution families, so over a few thousand pairs their mean
/// and median must agree within a few percent (they are *not* pairwise
/// equal — the test compares population statistics).
#[test]
fn dense_and_coordinate_backends_agree_on_distribution() {
    let reg = mixed_registry(120);
    let ids: Vec<_> = reg.iter().map(|info| info.id).collect();
    let dense = SyntheticPlanetLab::generate(&reg, 1234);
    let coord = CoordinateDelayModel::generate(&reg, 1234);
    let collect = |m: &dyn DelayModel| -> Vec<f64> {
        let mut out = Vec::new();
        for &a in &ids {
            for &b in &ids {
                if a != b {
                    out.push(m.one_way(SimTime::ZERO, a, b).as_micros() as f64);
                }
            }
        }
        out.sort_by(|x, y| x.partial_cmp(y).unwrap());
        out
    };
    let (d, c) = (collect(&dense), collect(&coord));
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (dm, cm) = (mean(&d), mean(&c));
    let rel = (dm - cm).abs() / dm;
    assert!(rel < 0.05, "means diverge: dense {dm} vs coordinate {cm}");
    for q in [0.25, 0.5, 0.75, 0.9] {
        let idx = (q * (d.len() - 1) as f64) as usize;
        let (dq, cq) = (d[idx], c[idx]);
        let rel = (dq - cq).abs() / dq;
        assert!(rel < 0.10, "q{q} diverges: dense {dq} vs coordinate {cq}");
    }
}

//! Property tests for the network substrate: capacity accounting never goes
//! negative, synthetic delays are symmetric in their base component, and
//! trace parsing round-trips.

use proptest::prelude::*;
use telecast_net::{
    Bandwidth, CapacityAccount, DelayModel, NodeKind, NodeRegistry, Region, SyntheticPlanetLab,
};
use telecast_sim::{SimDuration, SimTime};

proptest! {
    /// Any interleaving of successful reserves and releases keeps
    /// `used + available == total` and never over-commits.
    #[test]
    fn capacity_accounting_is_conservative(
        total in 1u64..20_000,
        ops in proptest::collection::vec((any::<bool>(), 1u64..5_000), 0..100),
    ) {
        let total = Bandwidth::from_kbps(total);
        let mut acct = CapacityAccount::new(total);
        let mut outstanding: Vec<Bandwidth> = Vec::new();
        for (is_reserve, amount) in ops {
            let amount = Bandwidth::from_kbps(amount);
            if is_reserve {
                if acct.reserve(amount).is_ok() {
                    outstanding.push(amount);
                }
            } else if let Some(r) = outstanding.pop() {
                acct.release(r);
            }
            prop_assert!(acct.used() <= acct.total());
            prop_assert_eq!(acct.used() + acct.available(), acct.total());
            let expected: Bandwidth = outstanding.iter().copied().sum();
            prop_assert_eq!(acct.used(), expected);
        }
    }

    /// The synthetic PlanetLab matrix is symmetric at t=0 (drift multipliers
    /// are per-direction, but epoch 0 uses the same base) and zero on the
    /// diagonal.
    #[test]
    fn synthetic_delays_well_formed(n in 2usize..40, seed in any::<u64>()) {
        let mut reg = NodeRegistry::new();
        for i in 0..n {
            reg.add(NodeKind::Viewer, Region::ALL[i % Region::ALL.len()]);
        }
        let m = SyntheticPlanetLab::generate(&reg, seed);
        let ids: Vec<_> = reg.iter().map(|info| info.id).collect();
        for &a in &ids {
            prop_assert_eq!(m.one_way(SimTime::ZERO, a, a), SimDuration::ZERO);
            for &b in &ids {
                if a == b { continue; }
                let d = m.one_way(SimTime::ZERO, a, b);
                prop_assert!(d > SimDuration::ZERO);
                prop_assert!(d < SimDuration::from_millis(400));
            }
        }
    }

    /// Out-degree division is exactly floor(obw/bw).
    #[test]
    fn out_degree_is_floor(obw in 0u64..100_000, bw in 1u64..10_000) {
        let deg = Bandwidth::from_kbps(obw) / Bandwidth::from_kbps(bw);
        prop_assert_eq!(deg, obw / bw);
    }
}

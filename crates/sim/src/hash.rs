//! A deterministic, high-throughput hasher for simulation-internal maps.
//!
//! `std::collections::HashMap`'s default [`RandomState`] seeds SipHash
//! per process. The simulator's output is byte-identical across runs
//! *despite* that per-process randomisation — the committed artifacts
//! prove map iteration order never leaks into results — so the hasher
//! is free to be anything. [`FxHasher`] (the multiply-xor hash used by
//! rustc's `FxHashMap`, reimplemented here because this crate carries
//! no dependencies) is several times faster than SipHash on the short
//! integer keys that dominate the hot paths (node ids, stream ids,
//! coordinate pairs), and — being seedless — makes iteration order
//! reproducible across runs as a bonus.
//!
//! Not DoS-resistant by design: these maps are keyed by simulator
//! internals, never by untrusted input.
//!
//! [`RandomState`]: std::collections::hash_map::RandomState
//!
//! ```
//! use telecast_sim::FxHashMap;
//!
//! let mut degrees: FxHashMap<u64, u32> = FxHashMap::default();
//! degrees.insert(7, 3);
//! assert_eq!(degrees[&7], 3);
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by [`FxHasher`] — drop-in for `std::HashMap` on
/// hot simulator paths.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

/// 64-bit multiply-rotate hash (the rustc `FxHasher` construction):
/// each word is folded in with an xor, a rotate, and a multiply by a
/// pilot constant derived from π.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// `floor(2^64 / π)`, the odd multiplier rustc's FxHasher uses.
const SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_ne_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_ne_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn equal_keys_hash_equal() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&(3u32, 9u32)), hash_of(&(3u32, 9u32)));
        assert_eq!(hash_of(&"stream-7"), hash_of(&"stream-7"));
    }

    #[test]
    fn nearby_keys_scatter() {
        let hashes: std::collections::BTreeSet<u64> = (0..1000u64).map(|k| hash_of(&k)).collect();
        assert_eq!(hashes.len(), 1000, "dense small keys must not collide");
    }

    #[test]
    fn byte_stream_tail_is_length_disambiguated() {
        // Same padded word, different lengths → different hashes.
        assert_ne!(hash_of(&[1u8, 0]), hash_of(&[1u8, 0, 0]));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut map: FxHashMap<u64, &str> = FxHashMap::default();
        map.insert(1, "a");
        map.insert(2, "b");
        assert_eq!(map.get(&1), Some(&"a"));
        assert_eq!(map.len(), 2);

        let mut set: FxHashSet<(u32, u32)> = FxHashSet::default();
        set.insert((1, 2));
        assert!(set.contains(&(1, 2)));
        assert!(!set.contains(&(2, 1)));
    }

    #[test]
    fn iteration_order_is_stable_for_identical_insertions() {
        let build = || {
            let mut map: FxHashMap<u64, u64> = FxHashMap::default();
            for k in 0..500 {
                map.insert(k * 17, k);
            }
            map.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build(), "seedless hash ⇒ reproducible order");
    }
}

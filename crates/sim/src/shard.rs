//! Sharded-execution primitives: epoch barriers and the canonical
//! cross-shard merge.
//!
//! A sharded runtime splits one global event loop into N independent
//! [`Engine`](crate::Engine) loops that advance in lock-step **epochs**:
//! every shard runs its own events up to the epoch boundary (possibly on
//! different worker threads), queues any effect that crosses a shard
//! boundary into its [`Outbox`], and then a single-threaded merge step
//! applies the union of all outboxes in the canonical
//! `(time, shard_id, seq)` order before the next epoch starts.
//!
//! Determinism contract: shard *count* is part of the configuration (it
//! changes results), worker *thread count* is not. Each shard's intra-epoch
//! execution is sequential, the merge order is a pure function of the
//! entries, and entries are applied on one thread — so the outcome of a
//! sharded run is byte-identical for any number of worker threads,
//! the same discipline [`parallel_map_with`](crate::parallel_map_with)
//! established for independent sweeps.

use crate::time::{SimDuration, SimTime};

/// One cross-shard effect, stamped with the canonical merge key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutboxEntry<M> {
    /// Simulated instant the effect was emitted at.
    pub at: SimTime,
    /// Shard that emitted it.
    pub from: usize,
    /// Per-shard emission sequence number (FIFO tie-breaker).
    pub seq: u64,
    /// The effect payload.
    pub msg: M,
}

impl<M> OutboxEntry<M> {
    /// The canonical `(time, shard_id, seq)` merge key.
    pub fn key(&self) -> (SimTime, usize, u64) {
        (self.at, self.from, self.seq)
    }
}

/// A shard's queue of outgoing cross-shard effects for the current epoch.
///
/// Entries are stamped with the emitting shard's id and a monotonically
/// increasing sequence number, so the global merge order is fully
/// determined by the entries themselves — never by which worker thread
/// produced them first.
#[derive(Debug)]
pub struct Outbox<M> {
    shard: usize,
    next_seq: u64,
    entries: Vec<OutboxEntry<M>>,
}

impl<M> Outbox<M> {
    /// Creates an empty outbox owned by shard `shard`.
    pub fn new(shard: usize) -> Self {
        Outbox {
            shard,
            next_seq: 0,
            entries: Vec::new(),
        }
    }

    /// Id of the owning shard.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Queues one effect emitted at simulated time `at`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `at` precedes the previous entry: shard
    /// time is monotone, so emissions must be too — the merge relies on
    /// each outbox already being sorted.
    pub fn push(&mut self, at: SimTime, msg: M) {
        debug_assert!(
            self.entries.last().map_or(true, |e| e.at <= at),
            "outbox emissions must be monotone in time"
        );
        self.entries.push(OutboxEntry {
            at,
            from: self.shard,
            seq: self.next_seq,
            msg,
        });
        self.next_seq += 1;
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total effects emitted over the outbox's lifetime (not reset by
    /// [`Outbox::take`]).
    pub fn emitted(&self) -> u64 {
        self.next_seq
    }

    /// Drains the queued entries, leaving the outbox empty for the next
    /// epoch. Sequence numbers keep increasing across epochs.
    pub fn take(&mut self) -> Vec<OutboxEntry<M>> {
        std::mem::take(&mut self.entries)
    }

    /// Drains the queued entries into `buf` by swapping buffers: `buf`
    /// receives this epoch's entries and the outbox adopts `buf`'s
    /// (cleared) allocation for the next epoch. Two buffers ping-pong
    /// across epochs, so steady-state drains allocate nothing.
    pub fn take_into(&mut self, buf: &mut Vec<OutboxEntry<M>>) {
        buf.clear();
        std::mem::swap(&mut self.entries, buf);
    }
}

/// Merges per-shard outbox drains into the canonical global order.
///
/// Each inner vector must be sorted by time (which [`Outbox::push`]
/// guarantees); the merged order is `(time, shard_id, seq)` — exactly the
/// order a single global [`Engine`](crate::Engine) would have fired the
/// same events in, had they been scheduled shard-by-shard.
pub fn merge_outboxes<M>(mut boxes: Vec<Vec<OutboxEntry<M>>>) -> Vec<OutboxEntry<M>> {
    let mut merged = Vec::new();
    merge_outboxes_into(&mut boxes, &mut merged);
    merged
}

/// Allocation-recycling form of [`merge_outboxes`]: a k-way binary-heap
/// merge over the already-sorted per-shard drains, `O(total · log k)`
/// instead of flatten + `O(total · log total)` stable sort.
///
/// `merged` is cleared and refilled; every input vector is drained but
/// keeps its capacity, so a caller that owns both sides reuses all
/// buffers across epochs.
///
/// The order is exactly what a stable sort on `(at, from, seq)` over the
/// concatenation would produce: the heap carries at most one head per
/// input, keyed `(at, from, seq, input index)`, so entries of one input
/// stay in input order and cross-input ties break on the earlier input —
/// stable-sort semantics. Each input must already be sorted by
/// `(at, from, seq)`, which [`Outbox::push`] guarantees for drains of a
/// single outbox.
pub fn merge_outboxes_into<M>(boxes: &mut [Vec<OutboxEntry<M>>], merged: &mut Vec<OutboxEntry<M>>) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    merged.clear();
    let total = boxes.iter().map(Vec::len).sum();
    merged.reserve(total);
    // Consume each drain back-to-front via `pop` (which moves entries
    // out while keeping the vector's capacity); reversing first makes
    // the back the chronological head.
    let mut heap: BinaryHeap<Reverse<(SimTime, usize, u64, usize)>> =
        BinaryHeap::with_capacity(boxes.len());
    for (i, entries) in boxes.iter_mut().enumerate() {
        debug_assert!(
            entries.windows(2).all(|w| w[0].key() <= w[1].key()),
            "each merge input must be sorted by (time, shard, seq)"
        );
        entries.reverse();
        if let Some(head) = entries.last() {
            heap.push(Reverse((head.at, head.from, head.seq, i)));
        }
    }
    while let Some(Reverse((_, _, _, i))) = heap.pop() {
        let entry = boxes[i].pop().expect("heap head tracks a live entry");
        merged.push(entry);
        if let Some(next) = boxes[i].last() {
            heap.push(Reverse((next.at, next.from, next.seq, i)));
        }
    }
}

/// The epoch boundaries of a sharded run: `start + epoch, start + 2·epoch,
/// …` capped at `horizon` (the final epoch is truncated so the last
/// boundary is exactly `horizon`).
///
/// ```
/// use telecast_sim::{EpochSchedule, SimDuration, SimTime};
///
/// let ends: Vec<_> =
///     EpochSchedule::new(SimTime::ZERO, SimTime::from_secs(25), SimDuration::from_secs(10))
///         .collect();
/// assert_eq!(
///     ends,
///     vec![
///         SimTime::from_secs(10),
///         SimTime::from_secs(20),
///         SimTime::from_secs(25),
///     ]
/// );
/// ```
#[derive(Debug, Clone)]
pub struct EpochSchedule {
    next: SimTime,
    horizon: SimTime,
    epoch: SimDuration,
    done: bool,
}

impl EpochSchedule {
    /// Builds the boundary iterator for `[start, horizon]` with the given
    /// epoch length.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is zero (the barrier would never advance).
    pub fn new(start: SimTime, horizon: SimTime, epoch: SimDuration) -> Self {
        assert!(!epoch.is_zero(), "epoch length must be positive");
        EpochSchedule {
            next: start,
            horizon,
            epoch,
            done: horizon <= start,
        }
    }
}

impl Iterator for EpochSchedule {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        if self.done {
            return None;
        }
        let end = (self.next + self.epoch).min(self.horizon);
        self.next = end;
        self.done = end >= self.horizon;
        Some(end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, SimRng};

    #[test]
    fn outbox_stamps_sequence_and_shard() {
        let mut outbox: Outbox<&str> = Outbox::new(3);
        outbox.push(SimTime::from_secs(1), "a");
        outbox.push(SimTime::from_secs(1), "b");
        outbox.push(SimTime::from_secs(2), "c");
        assert_eq!(outbox.len(), 3);
        let drained = outbox.take();
        assert!(outbox.is_empty());
        assert_eq!(outbox.emitted(), 3);
        assert_eq!(drained[0].key(), (SimTime::from_secs(1), 3, 0));
        assert_eq!(drained[1].key(), (SimTime::from_secs(1), 3, 1));
        assert_eq!(drained[2].key(), (SimTime::from_secs(2), 3, 2));
    }

    #[test]
    fn sequence_numbers_survive_take() {
        let mut outbox: Outbox<()> = Outbox::new(0);
        outbox.push(SimTime::from_secs(1), ());
        outbox.take();
        outbox.push(SimTime::from_secs(2), ());
        let drained = outbox.take();
        assert_eq!(drained[0].seq, 1, "seq keeps increasing across epochs");
    }

    #[test]
    fn merge_orders_by_time_then_shard_then_seq() {
        let mut a: Outbox<u32> = Outbox::new(0);
        let mut b: Outbox<u32> = Outbox::new(1);
        b.push(SimTime::from_secs(1), 10);
        a.push(SimTime::from_secs(1), 0);
        a.push(SimTime::from_secs(1), 1);
        b.push(SimTime::from_secs(3), 11);
        a.push(SimTime::from_secs(2), 2);
        let merged = merge_outboxes(vec![a.take(), b.take()]);
        let payloads: Vec<u32> = merged.iter().map(|e| e.msg).collect();
        // t=1: shard 0 (seq 0, 1) before shard 1; then t=2 and t=3.
        assert_eq!(payloads, vec![0, 1, 10, 2, 11]);
    }

    /// The merge must reproduce the order a single global engine would
    /// fire the same events in — the property the sharded session's
    /// determinism rests on.
    #[test]
    fn merge_matches_single_engine_reference() {
        for seed in 0..16u64 {
            let mut rng = SimRng::seed_from_u64(0x5AAD ^ seed);
            let shard_count = 1 + (rng.next_u64() % 6) as usize;
            let mut boxes: Vec<Outbox<(usize, u64)>> = (0..shard_count).map(Outbox::new).collect();
            let mut engine: Engine<(usize, u64)> = Engine::new();
            // Schedule shard-by-shard so a global engine's FIFO tie-break
            // coincides with (shard, seq) — the canonical merge key.
            for (shard, outbox) in boxes.iter_mut().enumerate() {
                let mut at = SimTime::ZERO;
                for i in 0..64u64 {
                    at += SimDuration::from_millis(rng.next_u64() % 5);
                    engine.schedule_at(at, (shard, i));
                    outbox.push(at, (shard, i));
                }
            }
            let merged = merge_outboxes(boxes.iter_mut().map(Outbox::take).collect());
            let reference: Vec<(usize, u64)> =
                std::iter::from_fn(|| engine.pop().map(|f| f.payload)).collect();
            let merged_payloads: Vec<(usize, u64)> = merged.into_iter().map(|e| e.msg).collect();
            assert_eq!(merged_payloads, reference, "diverged at seed {seed}");
        }
    }

    #[test]
    fn epoch_schedule_truncates_final_epoch() {
        let ends: Vec<_> = EpochSchedule::new(
            SimTime::from_secs(5),
            SimTime::from_secs(26),
            SimDuration::from_secs(10),
        )
        .collect();
        assert_eq!(
            ends,
            vec![
                SimTime::from_secs(15),
                SimTime::from_secs(25),
                SimTime::from_secs(26),
            ]
        );
    }

    #[test]
    fn epoch_schedule_empty_when_horizon_reached() {
        let mut sched = EpochSchedule::new(
            SimTime::from_secs(5),
            SimTime::from_secs(5),
            SimDuration::from_secs(1),
        );
        assert_eq!(sched.next(), None);
    }

    #[test]
    fn epoch_schedule_exact_multiple_has_no_stub() {
        let ends: Vec<_> = EpochSchedule::new(
            SimTime::ZERO,
            SimTime::from_secs(20),
            SimDuration::from_secs(10),
        )
        .collect();
        assert_eq!(ends, vec![SimTime::from_secs(10), SimTime::from_secs(20)]);
    }

    #[test]
    #[should_panic(expected = "epoch length must be positive")]
    fn zero_epoch_panics() {
        EpochSchedule::new(SimTime::ZERO, SimTime::from_secs(1), SimDuration::ZERO);
    }
}

//! Virtual time for the discrete-event engine.
//!
//! All 4D TeleCast quantities are delays (Δ = 60 s, `dmax` = 65 s, `dbuff` =
//! 300 ms, PlanetLab RTTs of a few ms), so time is kept as an unsigned count
//! of **microseconds** — fine enough for sub-millisecond propagation delays
//! and wide enough (u64) for centuries of virtual time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant of virtual time, measured in microseconds since simulation
/// start.
///
/// `SimTime` is an absolute point on the simulation clock; the corresponding
/// span type is [`SimDuration`]. Arithmetic between the two behaves like
/// `std::time::Instant`/`Duration`:
///
/// ```
/// use telecast_sim::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(250);
/// assert_eq!(t.as_micros(), 250_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(250));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, measured in microseconds.
///
/// ```
/// use telecast_sim::SimDuration;
///
/// let d = SimDuration::from_millis(300) / 2;
/// assert_eq!(d, SimDuration::from_millis(150));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Span from `earlier` to `self`, or [`SimDuration::ZERO`] if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a span from a fractional number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1_000_000.0).round() as u64)
    }

    /// Span length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Span length in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Span length in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Whether this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the span by a float factor, rounding to the nearest µs.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor: {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics in debug builds if the sum overflows `u64` microseconds —
    /// a saturated clock would silently freeze a runaway scheduling loop
    /// at `SimTime::MAX` instead of surfacing the bug. Release builds
    /// keep the saturating behaviour.
    fn add(self, rhs: SimDuration) -> SimTime {
        if cfg!(debug_assertions) {
            SimTime(
                self.0
                    .checked_add(rhs.0)
                    .expect("SimTime + SimDuration overflowed the virtual clock"),
            )
        } else {
            SimTime(self.0.saturating_add(rhs.0))
        }
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds on overflow, like `SimTime + SimDuration`;
    /// saturates in release builds.
    fn add(self, rhs: SimDuration) -> SimDuration {
        if cfg!(debug_assertions) {
            SimDuration(
                self.0
                    .checked_add(rhs.0)
                    .expect("SimDuration + SimDuration overflowed"),
            )
        } else {
            SimDuration(self.0.saturating_add(rhs.0))
        }
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// Integer number of times `rhs` fits in `self` (floor division);
    /// this is exactly the layer-index computation of the paper's Eq. 1.
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(60).as_millis(), 60_000);
    }

    #[test]
    fn instant_plus_span_round_trips() {
        let t = SimTime::from_millis(100) + SimDuration::from_millis(50);
        assert_eq!(t, SimTime::from_millis(150));
        assert_eq!(t - SimTime::from_millis(100), SimDuration::from_millis(50));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_millis(10);
        let late = SimTime::from_millis(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(10));
    }

    #[test]
    fn checked_since_detects_order() {
        let early = SimTime::from_millis(10);
        let late = SimTime::from_millis(20);
        assert_eq!(early.checked_since(late), None);
        assert_eq!(
            late.checked_since(early),
            Some(SimDuration::from_millis(10))
        );
    }

    #[test]
    fn duration_division_is_layer_arithmetic() {
        // Eq. 1 shape: floor((d - Δ) / τ) with dbuff=300ms, κ=2 → τ=150ms.
        let tau = SimDuration::from_millis(150);
        assert_eq!(SimDuration::from_millis(0) / tau, 0);
        assert_eq!(SimDuration::from_millis(149) / tau, 0);
        assert_eq!(SimDuration::from_millis(150) / tau, 1);
        assert_eq!(SimDuration::from_millis(449) / tau, 2);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(3);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(2)); // 1.5 → 2
        assert_eq!(d.mul_f64(1.0), d);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_sub_underflow_panics() {
        let _ = SimDuration::from_millis(1) - SimDuration::from_millis(2);
    }

    /// Regression: a runaway scheduling loop used to freeze the clock at
    /// `u64::MAX` silently; debug builds must fail loudly instead.
    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "overflowed the virtual clock")
    )]
    fn instant_overflow_is_loud_in_debug() {
        let t = SimTime::MAX + SimDuration::from_micros(1);
        // Release builds saturate (the sentinel stays usable there).
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "SimDuration + SimDuration overflowed")
    )]
    fn duration_overflow_is_loud_in_debug() {
        let d = SimDuration::MAX + SimDuration::from_micros(1);
        assert_eq!(d, SimDuration::MAX);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12µs");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}

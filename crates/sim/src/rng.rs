//! Seeded randomness for reproducible experiments.
//!
//! Every experiment run derives all of its stochastic inputs (latency
//! samples, viewer bandwidths, view choices, arrival jitter) from a single
//! `u64` seed, so figures can be regenerated bit-for-bit.

use std::ops::{Range, RangeInclusive};

/// A deterministic random source seeded from a `u64`.
///
/// A self-contained xoshiro256++ generator (seeded through splitmix64)
/// adding the handful of distributions the TeleCast workloads need
/// (uniform, exponential, Zipf, lognormal) without any external
/// dependency.
///
/// ```
/// use telecast_sim::SimRng;
///
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed through splitmix64, the recommended way to
        // initialise xoshiro state (never all-zero).
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SimRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent child generator; used to give each subsystem
    /// (latency, workload, arrivals) its own stream so adding draws to one
    /// does not perturb the others.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let seed = self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(seed)
    }

    /// Next raw 64 random bits (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Uniform value in `[0, bound)` (widening-multiply reduction).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty sampling bound");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform sample from a range, e.g. `rng.range(0..6)`.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.unit() < p
    }

    /// Exponential sample with the given mean (inverse-CDF method).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean: {mean}");
        let u: f64 = self.range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Standard normal sample (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Lognormal sample parameterised by the mean of the *resulting*
    /// distribution and the σ of the underlying normal. Used for frame
    /// sizes around `bitrate / fps`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive or `sigma` is negative.
    pub fn lognormal_with_mean(&mut self, mean: f64, sigma: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean: {mean}");
        assert!(sigma.is_finite() && sigma >= 0.0, "invalid sigma: {sigma}");
        // E[lognormal(µ,σ)] = exp(µ + σ²/2) ⇒ µ = ln(mean) − σ²/2.
        let mu = mean.ln() - sigma * sigma / 2.0;
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Zipf-distributed rank in `0..n` with exponent `s` (rank 0 most
    /// popular), via inversion on the exact finite CDF. Used for view
    /// popularity.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "zipf over empty support");
        assert!(s.is_finite() && s >= 0.0, "invalid exponent: {s}");
        let norm: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let mut target = self.unit() * norm;
        for k in 1..=n {
            target -= 1.0 / (k as f64).powf(s);
            if target <= 0.0 {
                return k - 1;
            }
        }
        n - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(0..=i);
            items.swap(i, j);
        }
    }

    /// Uniformly chooses an element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.range(0..items.len());
            Some(&items[i])
        }
    }
}

/// Types [`SimRng::range`] can sample uniformly.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open(rng: &mut SimRng, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive(rng: &mut SimRng, lo: Self, hi: Self) -> Self;
}

/// Range forms [`SimRng::range`] accepts (`lo..hi` and `lo..=hi`).
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut SimRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut SimRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut SimRng) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {
        $(
            impl SampleUniform for $t {
                fn sample_half_open(rng: &mut SimRng, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "empty sampling range {lo}..{hi}");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }

                fn sample_inclusive(rng: &mut SimRng, lo: Self, hi: Self) -> Self {
                    assert!(lo <= hi, "empty sampling range {lo}..={hi}");
                    let span = (hi as i128 - lo as i128) as u128;
                    if span == u128::from(u64::MAX) {
                        return (lo as i128 + rng.next_u64() as i128) as $t;
                    }
                    (lo as i128 + rng.below(span as u64 + 1) as i128) as $t
                }
            }
        )*
    };
}

sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut SimRng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty sampling range {lo}..{hi}");
        lo + rng.unit() * (hi - lo)
    }

    fn sample_inclusive(rng: &mut SimRng, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty sampling range {lo}..={hi}");
        lo + rng.unit() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(1234);
        let mut b = SimRng::seed_from_u64(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let mut root1 = SimRng::seed_from_u64(5);
        let mut root2 = SimRng::seed_from_u64(5);
        let mut fork1 = root1.fork(1);
        let mut fork2 = root2.fork(1);
        assert_eq!(fork1.next_u64(), fork2.next_u64());
        // A different label yields a different stream.
        let mut other = SimRng::seed_from_u64(5).fork(2);
        assert_ne!(fork1.next_u64(), other.next_u64());
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = SimRng::seed_from_u64(77);
        for _ in 0..2_000 {
            let v: u64 = rng.range(10..20u64);
            assert!((10..20).contains(&v));
            let w: i32 = rng.range(-5..5);
            assert!((-5..5).contains(&w));
            let x: usize = rng.range(0..=3usize);
            assert!(x <= 3);
            let f: f64 = rng.range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from_u64(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean} too far from 2.0");
    }

    #[test]
    fn lognormal_mean_is_close() {
        let mut rng = SimRng::seed_from_u64(10);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| rng.lognormal_with_mean(25_000.0, 0.2))
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - 25_000.0).abs() / 25_000.0 < 0.02,
            "mean {mean} too far from 25000"
        );
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..40_000 {
            counts[rng.zipf(8, 1.0)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[3]);
        assert!(counts[3] > counts[7]);
    }

    #[test]
    fn zipf_uniform_when_exponent_zero() {
        let mut rng = SimRng::seed_from_u64(12);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.zipf(4, 0.0)] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 10_000.0).abs() < 600.0,
                "not uniform: {counts:?}"
            );
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(13);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from_u64(14);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SimRng::seed_from_u64(15);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }
}

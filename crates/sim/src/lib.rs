#![warn(missing_docs)]

//! Deterministic discrete-event simulation engine for the 4D TeleCast
//! reproduction.
//!
//! The paper evaluates 4D TeleCast "using a discrete event simulator"
//! (Section VII). This crate is that substrate: a µs-resolution virtual
//! clock, a scheduler with deterministic FIFO tie-breaking, seeded random
//! number helpers, and the statistics toolkit (histograms, CDFs, counters)
//! the experiment harness consumes.
//!
//! # Example
//!
//! ```
//! use telecast_sim::{Engine, SimDuration};
//!
//! let mut engine: Engine<&'static str> = Engine::new();
//! engine.schedule_after(SimDuration::from_millis(5), "world");
//! engine.schedule_after(SimDuration::from_millis(1), "hello");
//!
//! let mut seen = Vec::new();
//! while let Some(fired) = engine.pop() {
//!     seen.push(fired.payload);
//! }
//! assert_eq!(seen, vec!["hello", "world"]);
//! ```

mod engine;
mod hash;
mod parallel;
mod pool;
mod rng;
mod shard;
mod stats;
mod time;

pub use engine::{Engine, EventId, Fired};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use parallel::{default_parallelism, parallel_map, parallel_map_with};
pub use pool::WorkerPool;
pub use rng::{SampleRange, SampleUniform, SimRng};
pub use shard::{merge_outboxes, merge_outboxes_into, EpochSchedule, Outbox, OutboxEntry};
pub use stats::{
    empirical_cdf, merge_step_sum, Cdf, CdfPoint, Counter, Histogram, Summary, TimeSeries,
};
pub use time::{SimDuration, SimTime};

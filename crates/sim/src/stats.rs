//! Statistics toolkit backing every figure of the evaluation.
//!
//! The paper's plots are CDFs, fractions, and per-parameter series; this
//! module provides the collectors that produce them: [`Counter`],
//! [`Histogram`] (with percentiles and [`Summary`]), [`Cdf`] and
//! [`TimeSeries`].

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A monotonically increasing named tally.
///
/// ```
/// use telecast_sim::Counter;
///
/// let mut served = Counter::new("streams_served_by_cdn");
/// served.add(3);
/// served.incr();
/// assert_eq!(served.value(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// The counter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds `n` to the tally.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one to the tally.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Current tally.
    pub fn value(&self) -> u64 {
        self.value
    }
}

/// Five-number summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample, or 0 if empty.
    pub min: f64,
    /// Largest sample, or 0 if empty.
    pub max: f64,
    /// Arithmetic mean, or 0 if empty.
    pub mean: f64,
    /// Median (p50).
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// A single point of an empirical CDF: fraction of samples `<= value`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdfPoint {
    /// Sample value.
    pub value: f64,
    /// Cumulative fraction in `[0, 1]`.
    pub fraction: f64,
}

/// An empirical cumulative distribution, the shape of Figures 14(a)–(c).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    points: Vec<CdfPoint>,
}

impl Cdf {
    /// Fraction of the distribution at or below `value` (0 for an empty
    /// CDF).
    pub fn fraction_at(&self, value: f64) -> f64 {
        let mut best = 0.0;
        for p in &self.points {
            if p.value <= value {
                best = p.fraction;
            } else {
                break;
            }
        }
        best
    }

    /// Smallest value whose cumulative fraction reaches `q` (`0 < q <= 1`).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.fraction >= q)
            .map(|p| p.value)
    }

    /// The underlying step points, ascending in value.
    pub fn points(&self) -> &[CdfPoint] {
        &self.points
    }

    /// Builds a CDF from already-sorted samples — the one shared
    /// implementation behind [`Histogram::cdf`] and [`empirical_cdf`]
    /// (the clone-and-sort used to be triplicated across the harness).
    pub fn from_sorted(sorted: &[f64]) -> Cdf {
        debug_assert!(
            sorted.windows(2).all(|w| w[0] <= w[1]),
            "samples must be sorted ascending"
        );
        let n = sorted.len() as f64;
        let mut points: Vec<CdfPoint> = Vec::new();
        for (i, v) in sorted.iter().enumerate() {
            let fraction = (i + 1) as f64 / n;
            match points.last_mut() {
                Some(last) if last.value == *v => last.fraction = fraction,
                _ => points.push(CdfPoint {
                    value: *v,
                    fraction,
                }),
            }
        }
        Cdf { points }
    }
}

/// Builds the empirical CDF of arbitrary (unsorted) samples.
///
/// # Panics
///
/// Panics if any sample is NaN.
pub fn empirical_cdf(samples: &[f64]) -> Cdf {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample in CDF input"));
    Cdf::from_sorted(&sorted)
}

/// An unbounded sample collector with exact percentiles.
///
/// Samples are kept raw (the experiments collect at most a few hundred
/// thousand points), so percentiles and CDFs are exact rather than
/// bucketed. The sorted order is computed lazily and cached, so repeated
/// `percentile()`/`summary()`/`cdf()` calls cost O(1)/O(n) instead of
/// re-sorting O(n log n) each time; recording a sample invalidates the
/// cache.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    /// Lazily-built ascending copy of `samples`.
    sorted: OnceLock<Vec<f64>>,
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        // The cache is derived state; equality is over the samples.
        self.samples == other.samples
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN");
        self.samples.push(value);
        self.sorted.take();
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Exact percentile by nearest-rank (`p` in `[0, 100]`), or `None` if
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.samples.is_empty() {
            return None;
        }
        let sorted = self.sorted_samples();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
    }

    /// The samples in ascending order (cached after the first call).
    pub fn sorted_samples(&self) -> &[f64] {
        self.sorted.get_or_init(|| {
            let mut sorted = self.samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
            sorted
        })
    }

    /// Five-number summary.
    pub fn summary(&self) -> Summary {
        let (min, max) = match self.sorted_samples() {
            [] => (0.0, 0.0),
            sorted => (sorted[0], sorted[sorted.len() - 1]),
        };
        Summary {
            count: self.samples.len(),
            min,
            max,
            mean: self.mean(),
            p50: self.percentile(50.0).unwrap_or(0.0),
            p99: self.percentile(99.0).unwrap_or(0.0),
        }
    }

    /// Builds the empirical CDF of the recorded samples.
    pub fn cdf(&self) -> Cdf {
        Cdf::from_sorted(self.sorted_samples())
    }

    /// The raw samples in recording order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<f64> for Histogram {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut h = Histogram::new();
        h.extend(iter);
        h
    }
}

/// A `(time, value)` series, e.g. CDN usage over a session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last recorded point (series are
    /// append-only in simulation time).
    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(at >= last, "time series must be recorded in order");
        }
        self.points.push((at, value));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest recorded value, or 0 if empty; Fig. 13(a) reports the peak
    /// CDN bandwidth this way.
    pub fn peak(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0_f64, f64::max)
    }

    /// Last recorded value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// The raw points in time order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }
}

/// Merges step-interpreted time series by summation — the shard-wise
/// reduction for population and bandwidth series.
///
/// Each input is read as a step function: a recorded value holds until
/// the series' next point. The merged series has a point at every
/// distinct input timestamp carrying the sum of every series' value at
/// that instant (series that have not recorded yet contribute 0).
/// Consecutive equal sums are collapsed, matching how the session
/// samplers collapse their own step series.
pub fn merge_step_sum(series: &[&TimeSeries]) -> TimeSeries {
    let mut cursors: Vec<usize> = vec![0; series.len()];
    let mut current: Vec<f64> = vec![0.0; series.len()];
    let mut merged = TimeSeries::new();
    loop {
        let next = series
            .iter()
            .zip(&cursors)
            .filter_map(|(s, &i)| s.points().get(i).map(|&(at, _)| at))
            .min();
        let Some(at) = next else { break };
        for ((s, cursor), value) in series.iter().zip(&mut cursors).zip(&mut current) {
            while let Some(&(t, v)) = s.points().get(*cursor) {
                if t > at {
                    break;
                }
                *value = v;
                *cursor += 1;
            }
        }
        let total: f64 = current.iter().sum();
        if merged.last() != Some(total) {
            merged.record(at, total);
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new("x");
        c.incr();
        c.add(9);
        assert_eq!(c.value(), 10);
        assert_eq!(c.name(), "x");
    }

    #[test]
    fn histogram_mean_and_percentiles() {
        let h: Histogram = (1..=100).map(|v| v as f64).collect();
        assert!((h.mean() - 50.5).abs() < 1e-9);
        assert_eq!(h.percentile(50.0), Some(50.0));
        assert_eq!(h.percentile(99.0), Some(99.0));
        assert_eq!(h.percentile(100.0), Some(100.0));
        assert_eq!(h.percentile(0.0), Some(1.0));
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), None);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn histogram_rejects_nan() {
        Histogram::new().record(f64::NAN);
    }

    #[test]
    fn cdf_steps_accumulate_to_one() {
        let h: Histogram = [1.0, 1.0, 2.0, 4.0].into_iter().collect();
        let cdf = h.cdf();
        assert_eq!(cdf.points().len(), 3); // deduplicated values
        assert!((cdf.fraction_at(1.0) - 0.5).abs() < 1e-9);
        assert!((cdf.fraction_at(2.0) - 0.75).abs() < 1e-9);
        assert!((cdf.fraction_at(3.9) - 0.75).abs() < 1e-9);
        assert!((cdf.fraction_at(4.0) - 1.0).abs() < 1e-9);
        assert_eq!(cdf.fraction_at(0.5), 0.0);
    }

    #[test]
    fn cdf_quantile_inverts_fraction() {
        let h: Histogram = (1..=10).map(|v| v as f64).collect();
        let cdf = h.cdf();
        assert_eq!(cdf.quantile(0.5), Some(5.0));
        assert_eq!(cdf.quantile(1.0), Some(10.0));
        assert_eq!(cdf.quantile(0.05), Some(1.0));
    }

    #[test]
    fn summary_of_known_set() {
        let h: Histogram = [3.0, 1.0, 2.0].into_iter().collect();
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-9);
        assert_eq!(s.p50, 2.0);
    }

    #[test]
    fn sorted_cache_invalidates_on_record() {
        let mut h: Histogram = [5.0, 1.0, 3.0].into_iter().collect();
        assert_eq!(h.percentile(100.0), Some(5.0)); // populates the cache
        h.record(9.0);
        assert_eq!(h.percentile(100.0), Some(9.0));
        assert_eq!(h.sorted_samples(), &[1.0, 3.0, 5.0, 9.0]);
        assert_eq!(h.samples(), &[5.0, 1.0, 3.0, 9.0], "recording order kept");
    }

    #[test]
    fn empirical_cdf_matches_histogram_cdf() {
        let samples = [4.0, 1.0, 1.0, 2.0];
        let h: Histogram = samples.into_iter().collect();
        assert_eq!(empirical_cdf(&samples), h.cdf());
        assert!(empirical_cdf(&[]).points().is_empty());
    }

    #[test]
    fn time_series_peak_and_order() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs(1), 10.0);
        ts.record(SimTime::from_secs(2), 30.0);
        ts.record(SimTime::from_secs(3), 20.0);
        assert_eq!(ts.peak(), 30.0);
        assert_eq!(ts.last(), Some(20.0));
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn merge_step_sum_sums_step_functions() {
        let mut a = TimeSeries::new();
        a.record(SimTime::from_secs(1), 10.0);
        a.record(SimTime::from_secs(3), 20.0);
        let mut b = TimeSeries::new();
        b.record(SimTime::from_secs(2), 5.0);
        let merged = merge_step_sum(&[&a, &b]);
        assert_eq!(
            merged.points(),
            &[
                (SimTime::from_secs(1), 10.0),
                (SimTime::from_secs(2), 15.0),
                (SimTime::from_secs(3), 25.0),
            ]
        );
    }

    #[test]
    fn merge_step_sum_collapses_equal_sums() {
        // Two shards moving in opposite directions at the same instant
        // leave the total unchanged; the merged series stays flat.
        let mut a = TimeSeries::new();
        a.record(SimTime::from_secs(1), 10.0);
        a.record(SimTime::from_secs(2), 8.0);
        let mut b = TimeSeries::new();
        b.record(SimTime::from_secs(1), 4.0);
        b.record(SimTime::from_secs(2), 6.0);
        let merged = merge_step_sum(&[&a, &b]);
        assert_eq!(merged.points(), &[(SimTime::from_secs(1), 14.0)]);
    }

    #[test]
    fn merge_step_sum_shared_timestamps_consume_together() {
        let mut a = TimeSeries::new();
        a.record(SimTime::from_secs(5), 1.0);
        let mut b = TimeSeries::new();
        b.record(SimTime::from_secs(5), 2.0);
        b.record(SimTime::from_secs(5), 3.0); // same-instant re-record
        let merged = merge_step_sum(&[&a, &b]);
        assert_eq!(merged.points(), &[(SimTime::from_secs(5), 4.0)]);
    }

    #[test]
    fn merge_step_sum_of_nothing_is_empty() {
        assert!(merge_step_sum(&[]).is_empty());
        let empty = TimeSeries::new();
        assert!(merge_step_sum(&[&empty, &empty]).is_empty());
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn time_series_rejects_out_of_order() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs(2), 1.0);
        ts.record(SimTime::from_secs(1), 2.0);
    }
}

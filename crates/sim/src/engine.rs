//! The discrete-event scheduler.
//!
//! A min-heap of `(time, sequence)` keys drives the simulation. Sequence
//! numbers make ties deterministic (FIFO among equal timestamps), which in
//! turn makes every experiment reproducible from its seed alone.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::hash::FxHashSet;

use crate::time::{SimDuration, SimTime};

/// Identifier of a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

/// An event returned by [`Engine::pop`]: the payload plus the instant it
/// fired at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fired<E> {
    /// The instant the event fired; equals [`Engine::now`] at pop time.
    pub at: SimTime,
    /// Identifier the event was scheduled under.
    pub id: EventId,
    /// The scheduled payload.
    pub payload: E,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first, with the
        // sequence number as a deterministic FIFO tie-breaker.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event engine over payloads of type `E`.
///
/// The engine owns the virtual clock: [`Engine::pop`] advances
/// [`Engine::now`] to the timestamp of the earliest pending event and
/// returns it. Events scheduled at equal instants fire in scheduling order.
///
/// ```
/// use telecast_sim::{Engine, SimDuration, SimTime};
///
/// let mut engine = Engine::new();
/// let id = engine.schedule_at(SimTime::from_millis(10), "late");
/// engine.schedule_at(SimTime::from_millis(5), "early");
/// engine.cancel(id);
///
/// let fired = engine.pop().expect("one event pending");
/// assert_eq!(fired.payload, "early");
/// assert_eq!(engine.now(), SimTime::from_millis(5));
/// assert!(engine.pop().is_none());
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    now: SimTime,
    heap: BinaryHeap<Entry<E>>,
    cancelled: FxHashSet<EventId>,
    next_seq: u64,
    popped: u64,
    peak_pending: usize,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an empty engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty engine whose event heap is pre-sized for
    /// `capacity` pending events.
    ///
    /// Million-viewer sessions keep roughly one live timer per connected
    /// viewer in the heap; pre-sizing avoids the doubling reallocations
    /// (and their O(n) copies) on the scheduling hot path.
    pub fn with_capacity(capacity: usize) -> Self {
        Engine {
            now: SimTime::ZERO,
            heap: BinaryHeap::with_capacity(capacity),
            cancelled: FxHashSet::default(),
            next_seq: 0,
            popped: 0,
            peak_pending: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.popped
    }

    /// Number of events still pending (including not-yet-reaped cancelled
    /// ones; the count is an upper bound).
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Deepest the event heap has ever been — the queue-pressure figure a
    /// capacity plan needs (includes not-yet-reaped cancelled entries).
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Whether no live events remain.
    pub fn is_idle(&mut self) -> bool {
        self.reap();
        self.heap.is_empty()
    }

    /// Schedules `payload` to fire at absolute instant `at`.
    ///
    /// Scheduling in the past is clamped to `now` (the event fires
    /// immediately on the next pop); this mirrors how control messages that
    /// "already arrived" are handled.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        let at = at.max(self.now);
        let id = EventId(self.next_seq);
        self.heap.push(Entry {
            at,
            seq: self.next_seq,
            id,
            payload,
        });
        self.next_seq += 1;
        self.peak_pending = self.peak_pending.max(self.heap.len());
        id
    }

    /// Schedules `payload` to fire `after` from now.
    pub fn schedule_after(&mut self, after: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + after, payload)
    }

    /// Cancels a pending event. Returns `true` if the event had not yet
    /// fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id)
    }

    /// Pops the earliest pending event, advancing the clock to its
    /// timestamp. Returns `None` when no live events remain.
    pub fn pop(&mut self) -> Option<Fired<E>> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            debug_assert!(entry.at >= self.now, "time must be monotone");
            self.now = entry.at;
            self.popped += 1;
            return Some(Fired {
                at: entry.at,
                id: entry.id,
                payload: entry.payload,
            });
        }
        None
    }

    /// Pops the earliest event only if it fires at or before `deadline`.
    ///
    /// If the next live event is later than `deadline`, the clock advances
    /// to `deadline` and `None` is returned — the idiom for "run the
    /// session for X seconds".
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<Fired<E>> {
        self.reap();
        match self.heap.peek() {
            Some(entry) if entry.at <= deadline => self.pop(),
            _ => {
                if deadline > self.now {
                    self.now = deadline;
                }
                None
            }
        }
    }

    /// Timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.reap();
        self.heap.peek().map(|e| e.at)
    }

    /// Drops cancelled entries sitting at the top of the heap.
    fn reap(&mut self) {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.id) {
                let entry = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&entry.id);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_millis(30), 3);
        engine.schedule_at(SimTime::from_millis(10), 1);
        engine.schedule_at(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| engine.pop().map(|f| f.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_timestamps_fire_fifo() {
        let mut engine = Engine::new();
        for i in 0..100 {
            engine.schedule_at(SimTime::from_millis(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| engine.pop().map(|f| f.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_millis(10), ());
        engine.schedule_at(SimTime::from_millis(10), ());
        engine.schedule_at(SimTime::from_millis(25), ());
        let mut last = SimTime::ZERO;
        while let Some(fired) = engine.pop() {
            assert!(fired.at >= last);
            last = fired.at;
        }
        assert_eq!(engine.now(), SimTime::from_millis(25));
    }

    #[test]
    fn schedule_in_past_clamps_to_now() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_millis(10), "a");
        engine.pop();
        engine.schedule_at(SimTime::from_millis(1), "b");
        let fired = engine.pop().expect("clamped event fires");
        assert_eq!(fired.at, SimTime::from_millis(10));
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut engine = Engine::new();
        let id = engine.schedule_at(SimTime::from_millis(1), "doomed");
        engine.schedule_at(SimTime::from_millis(2), "survivor");
        assert!(engine.cancel(id));
        assert!(!engine.cancel(id), "double-cancel reports false");
        let fired = engine.pop().expect("survivor fires");
        assert_eq!(fired.payload, "survivor");
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut engine: Engine<()> = Engine::new();
        assert!(!engine.cancel(EventId(42)));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_millis(10), "early");
        engine.schedule_at(SimTime::from_millis(100), "late");
        assert_eq!(
            engine
                .pop_until(SimTime::from_millis(50))
                .map(|f| f.payload),
            Some("early")
        );
        assert_eq!(engine.pop_until(SimTime::from_millis(50)), None);
        // Clock parked at the deadline, not at the late event.
        assert_eq!(engine.now(), SimTime::from_millis(50));
        assert_eq!(engine.pending(), 1);
    }

    #[test]
    fn is_idle_reaps_cancelled() {
        let mut engine = Engine::new();
        let id = engine.schedule_at(SimTime::from_millis(1), ());
        engine.cancel(id);
        assert!(engine.is_idle());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut engine = Engine::new();
        let id = engine.schedule_at(SimTime::from_millis(1), 1);
        engine.schedule_at(SimTime::from_millis(2), 2);
        engine.cancel(id);
        assert_eq!(engine.peek_time(), Some(SimTime::from_millis(2)));
    }

    #[test]
    fn events_fired_counts_only_live() {
        let mut engine = Engine::new();
        let id = engine.schedule_at(SimTime::from_millis(1), ());
        engine.schedule_at(SimTime::from_millis(2), ());
        engine.cancel(id);
        while engine.pop().is_some() {}
        assert_eq!(engine.events_fired(), 1);
    }
}

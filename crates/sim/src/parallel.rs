//! Deterministic, order-preserving parallel execution for simulation
//! sweeps.
//!
//! Every figure generator (and any future hundred-scale sweep) runs many
//! *independent* simulations — one per point of a parameter grid, each
//! fully determined by its own seed. [`parallel_map`] executes such a
//! sweep on scoped worker threads while guaranteeing that the output is
//! **bit-identical to the sequential map and independent of the worker
//! count**: results land in pre-sized per-index slots, so thread
//! scheduling can reorder the *work* but never the *results*.
//!
//! ```
//! use telecast_sim::parallel_map;
//!
//! let doubled = parallel_map((0..64).collect(), |x: u64| x * 2);
//! assert_eq!(doubled, (0..64).map(|x| x * 2).collect::<Vec<_>>());
//! ```

use std::sync::{mpsc, Mutex};
use std::thread;

/// Maps `f` over `items` on up to [`default_parallelism`] scoped threads,
/// preserving input order.
///
/// Empty and single-item sweeps (and machines reporting one core) run
/// inline without spawning any worker thread.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = default_parallelism().min(items.len());
    parallel_map_with(items, threads, f)
}

/// [`parallel_map`] with an explicit worker count.
///
/// The output never depends on `threads`: one mutex-guarded queue hands
/// every `(index, item)` pair to exactly one worker, results come back
/// index-stamped over a channel, and the pre-sized slots are read back
/// in index order once every worker has finished. Passing `threads <= 1`
/// runs the map inline on the caller's thread.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map_with<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 || threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let threads = threads.min(n);

    // One shared work queue: pulling the next `(index, item)` pair moves
    // the item out under a lock held only for the pull, so no per-job
    // wrapper is needed — ownership transfers through the iterator.
    let queue = Mutex::new(items.into_iter().enumerate());
    let (sender, receiver) = mpsc::channel::<(usize, R)>();

    thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let sender = sender.clone();
                let queue = &queue;
                let f = &f;
                scope.spawn(move || loop {
                    let Some((index, item)) =
                        queue.lock().expect("work queue never poisoned").next()
                    else {
                        break;
                    };
                    // The channel is unbounded, so workers never block on
                    // the collector and results can be drained after the
                    // scope.
                    if sender.send((index, f(item))).is_err() {
                        break;
                    }
                })
            })
            .collect();
        // Join explicitly so a worker's panic payload resurfaces verbatim
        // instead of the scope's generic "a scoped thread panicked".
        for worker in workers {
            if let Err(payload) = worker.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    drop(sender);

    // Pre-sized per-index slots: arrival order is scheduling-dependent,
    // final placement is not.
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (index, result) in receiver.try_iter() {
        debug_assert!(slots[index].is_none(), "result index delivered twice");
        slots[index] = Some(result);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index produced a result"))
        .collect()
}

/// Worker count [`parallel_map`] uses: the machine's available
/// parallelism, or 4 if it cannot be determined.
pub fn default_parallelism() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_is_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let caller = thread::current().id();
        let out = parallel_map(vec![7u64], |x| {
            assert_eq!(thread::current().id(), caller);
            x + 1
        });
        assert_eq!(out, vec![8]);
    }

    /// The satellite determinism guarantee: one simulated "run" per seed,
    /// executed under different worker counts, yields bit-identical
    /// outputs.
    #[test]
    fn thread_count_never_changes_results() {
        let seeds: Vec<u64> = (0..37).map(|i| 0x7e1e_ca57 ^ (i * 1_000_003)).collect();
        let simulate = |seed: u64| -> Vec<u64> {
            let mut rng = SimRng::seed_from_u64(seed);
            (0..64).map(|_| rng.next_u64()).collect()
        };
        let sequential: Vec<Vec<u64>> = seeds.iter().copied().map(simulate).collect();
        for threads in [1, 2, 3, 8, 64] {
            let parallel = parallel_map_with(seeds.clone(), threads, simulate);
            assert_eq!(parallel, sequential, "diverged at {threads} threads");
        }
    }

    #[test]
    fn caps_threads_at_item_count() {
        // More threads than items must not deadlock or drop results.
        let out = parallel_map_with((0..3).collect(), 16, |x: u8| x);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        parallel_map_with((0..8).collect(), 4, |x: u32| {
            if x == 5 {
                panic!("boom");
            }
            x
        });
    }
}

//! A persistent worker pool for lock-step sharded execution.
//!
//! [`WorkerPool`] owns a fixed set of OS threads for the lifetime of the
//! runtime that created it, replacing the per-epoch
//! `thread::scope` + channel + per-job mutex machinery of
//! [`parallel_map_with`](crate::parallel_map_with) with a reusable
//! condvar barrier: each epoch the coordinator parks the jobs into
//! pre-sized per-slot cells, wakes the workers, and sleeps until the
//! last job lands back in its slot. No thread is spawned, no channel
//! allocated, and no job vector reallocated after construction.
//!
//! # Cost-aware scheduling (LPT)
//!
//! Shard runtimes are chronically imbalanced — one region may carry 40%
//! of the population while another carries 5% — and an epoch ends only
//! when its slowest shard does. The pool therefore hands jobs out
//! **longest-predicted-first**: it keeps an EWMA of each slot's
//! measured busy time and sorts the dispatch order by that prediction,
//! so the heaviest shard starts first and light shards pack around it
//! (the classic LPT heuristic). Ties, and the first epoch (no history),
//! fall back to ascending slot order.
//!
//! # Determinism
//!
//! Scheduling affects *wall-clock only*. Any worker may run any job:
//! results land in their slot **by index**, each job's execution is
//! single-threaded, and the coordinator reads the slots back in index
//! order — so the output is byte-identical for any worker count and any
//! dispatch order, the same contract
//! [`parallel_map_with`](crate::parallel_map_with) established. The
//! EWMA feeds nothing but the dispatch order.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Smoothing factor for the per-slot busy-time EWMA: heavy enough to
/// track load shifts (churn waves move work between regions) while
/// damping single-epoch noise.
const EWMA_ALPHA: f64 = 0.4;

/// The job runner: `(slot index, job, epoch context)`.
type RunFn<T, C> = dyn Fn(usize, &mut T, &C) + Send + Sync;

/// Coordinator/worker shared state, guarded by one mutex.
struct State<T> {
    /// Slot-indexed job cells; a worker `take`s its claimed slot.
    jobs: Vec<Option<T>>,
    /// Slot-indexed result cells: the job handed back plus its measured
    /// busy nanoseconds.
    results: Vec<Option<(T, u64)>>,
    /// Dispatch order for the current epoch (slot indices, LPT-sorted).
    order: Vec<usize>,
    /// Next position in `order` to claim.
    cursor: usize,
    /// Jobs dispatched but not yet returned this epoch.
    outstanding: usize,
    /// Tells the workers to exit (set by `Drop`).
    shutdown: bool,
    /// First panic payload caught this epoch, re-thrown by the
    /// coordinator once the epoch drains.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Shared<T, C> {
    state: Mutex<State<T>>,
    /// Epoch context for the current epoch (read-only while workers
    /// run). Kept outside `State` so workers can borrow it without
    /// holding the state lock; the coordinator only writes it while no
    /// job is outstanding.
    ctx: Mutex<Option<C>>,
    /// Wakes workers when an epoch's jobs are parked (or on shutdown).
    work_ready: Condvar,
    /// Wakes the coordinator when the last job of an epoch lands.
    epoch_done: Condvar,
    run: Box<RunFn<T, C>>,
}

/// A persistent pool of worker threads executing slot-indexed jobs in
/// lock-step epochs. See the module docs for the scheduling and
/// determinism contract.
pub struct WorkerPool<T, C> {
    shared: Arc<Shared<T, C>>,
    workers: Vec<JoinHandle<()>>,
    /// Per-slot EWMA of measured busy nanoseconds (the LPT cost model).
    ewma_ns: Vec<f64>,
    /// Per-slot busy nanoseconds of the most recent epoch.
    last_busy_ns: Vec<u64>,
    slots: usize,
}

impl<T: Send + 'static, C: Clone + Send + Sync + 'static> WorkerPool<T, C> {
    /// Creates a pool for `slots` jobs on up to `threads` OS threads
    /// (capped at `slots`; `threads <= 1` spawns none and runs epochs
    /// inline on the caller's thread).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new<F>(slots: usize, threads: usize, run: F) -> Self
    where
        F: Fn(usize, &mut T, &C) + Send + Sync + 'static,
    {
        assert!(slots > 0, "worker pool needs at least one slot");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: (0..slots).map(|_| None).collect(),
                results: (0..slots).map(|_| None).collect(),
                order: Vec::with_capacity(slots),
                cursor: 0,
                outstanding: 0,
                shutdown: false,
                panic: None,
            }),
            ctx: Mutex::new(None),
            work_ready: Condvar::new(),
            epoch_done: Condvar::new(),
            run: Box::new(run),
        });
        let worker_count = if threads <= 1 { 0 } else { threads.min(slots) };
        let workers = (0..worker_count)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            ewma_ns: vec![0.0; slots],
            last_busy_ns: vec![0; slots],
            slots,
        }
    }

    /// Runs one epoch: every item of `items` (which must have exactly
    /// the pool's slot count) is executed once with `ctx`, in place.
    /// Items are dispatched longest-predicted-first but always land
    /// back at their own index, so `items` comes back in the order it
    /// went in — the vector round-trips through the pool without
    /// reallocating.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by a job (after the epoch
    /// drains), and panics if `items.len()` differs from the pool's
    /// slot count.
    pub fn run_epoch(&mut self, items: &mut Vec<T>, ctx: C) {
        assert_eq!(items.len(), self.slots, "item count must match slots");
        let order = lpt_order(&self.ewma_ns);
        if self.workers.is_empty() {
            // Inline path: no worker threads — run the jobs on the
            // caller's thread in the same LPT order (order is
            // irrelevant to output either way).
            for &slot in &order {
                let started = Instant::now();
                (self.shared.run)(slot, &mut items[slot], &ctx);
                self.record_busy(slot, started.elapsed().as_nanos() as u64);
            }
            return;
        }

        *lock_ignore_poison(&self.shared.ctx) = Some(ctx);
        {
            let mut state = lock_ignore_poison(&self.shared.state);
            for (slot, item) in items.drain(..).enumerate() {
                state.jobs[slot] = Some(item);
            }
            state.order = order;
            state.cursor = 0;
            state.outstanding = self.slots;
            self.shared.work_ready.notify_all();
            while state.outstanding > 0 {
                state = self
                    .shared
                    .epoch_done
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
            if let Some(payload) = state.panic.take() {
                std::panic::resume_unwind(payload);
            }
            for slot in 0..self.slots {
                let (item, busy_ns) = state.results[slot]
                    .take()
                    .expect("every slot produced a result");
                items.push(item);
                self.last_busy_ns[slot] = busy_ns;
            }
        }
        for slot in 0..self.slots {
            self.record_busy_cell(slot, self.last_busy_ns[slot]);
        }
        *lock_ignore_poison(&self.shared.ctx) = None;
    }

    /// Measured busy nanoseconds per slot for the most recent epoch.
    pub fn last_busy_ns(&self) -> &[u64] {
        &self.last_busy_ns
    }

    /// Number of worker threads the pool spawned (0 = inline).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    fn record_busy(&mut self, slot: usize, busy_ns: u64) {
        self.record_busy_cell(slot, busy_ns);
    }

    fn record_busy_cell(&mut self, slot: usize, busy_ns: u64) {
        self.last_busy_ns[slot] = busy_ns;
        let prev = self.ewma_ns[slot];
        self.ewma_ns[slot] = if prev == 0.0 {
            busy_ns as f64
        } else {
            EWMA_ALPHA * busy_ns as f64 + (1.0 - EWMA_ALPHA) * prev
        };
    }
}

impl<T, C> Drop for WorkerPool<T, C> {
    fn drop(&mut self) {
        {
            let mut state = lock_ignore_poison(&self.shared.state);
            state.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for worker in self.workers.drain(..) {
            // A worker that panicked outside a job already surfaced its
            // payload through `run_epoch`; ignore the join error here.
            let _ = worker.join();
        }
    }
}

/// Locks `m`, recovering the guard if a panicking thread poisoned it
/// (the pool re-throws job panics through `resume_unwind` while a guard
/// is live, so later lock sites — `Drop` in particular — must not
/// treat poison as fatal).
fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The LPT dispatch order: slot indices sorted by descending predicted
/// cost, ties broken by ascending slot index (stable — the first epoch,
/// with no history, dispatches in plain slot order).
fn lpt_order(ewma_ns: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..ewma_ns.len()).collect();
    order.sort_by(|&a, &b| {
        ewma_ns[b]
            .partial_cmp(&ewma_ns[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

fn worker_loop<T, C>(shared: Arc<Shared<T, C>>)
where
    T: Send,
    C: Clone + Send + Sync,
{
    let mut state = lock_ignore_poison(&shared.state);
    loop {
        if state.shutdown {
            return;
        }
        if state.cursor < state.order.len() {
            let slot = state.order[state.cursor];
            state.cursor += 1;
            let mut job = state.jobs[slot].take().expect("job claimed exactly once");
            drop(state);
            // The context is only rewritten between epochs, while no
            // job is outstanding — this read never blocks dispatch.
            let ctx = lock_ignore_poison(&shared.ctx)
                .clone()
                .expect("epoch context set before dispatch");
            let started = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                (shared.run)(slot, &mut job, &ctx);
            }));
            let busy_ns = started.elapsed().as_nanos() as u64;
            state = lock_ignore_poison(&shared.state);
            match outcome {
                Ok(()) => state.results[slot] = Some((job, busy_ns)),
                Err(payload) => {
                    // Keep the first payload; the job is lost to the
                    // unwind either way.
                    state.panic.get_or_insert(payload);
                    // Park an empty-handed marker so the coordinator's
                    // drain logic stays uniform — it re-throws before
                    // reading the slots.
                }
            }
            state.outstanding -= 1;
            if state.outstanding == 0 {
                shared.epoch_done.notify_all();
            }
        } else {
            state = shared
                .work_ready
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_land_by_slot_index() {
        for threads in [1usize, 2, 4, 8] {
            let mut pool: WorkerPool<u64, u64> =
                WorkerPool::new(5, threads, |slot, job, ctx| *job += slot as u64 * 100 + ctx);
            let mut items = vec![0u64; 5];
            pool.run_epoch(&mut items, 7);
            assert_eq!(items, vec![7, 107, 207, 307, 407], "{threads} threads");
        }
    }

    #[test]
    fn epochs_reuse_the_same_threads() {
        let spawned = Arc::new(AtomicUsize::new(0));
        let seen = Arc::new(Mutex::new(std::collections::BTreeSet::new()));
        let seen2 = Arc::clone(&seen);
        let spawned2 = Arc::clone(&spawned);
        let mut pool: WorkerPool<u32, ()> = WorkerPool::new(4, 2, move |_, job, ()| {
            let id = std::thread::current().id();
            if seen2.lock().unwrap().insert(format!("{id:?}")) {
                spawned2.fetch_add(1, Ordering::SeqCst);
            }
            *job += 1;
        });
        let mut items = vec![0u32; 4];
        for _ in 0..20 {
            pool.run_epoch(&mut items, ());
        }
        assert_eq!(items, vec![20; 4]);
        assert!(
            spawned.load(Ordering::SeqCst) <= pool.worker_count(),
            "jobs ran on more threads than the pool owns"
        );
    }

    #[test]
    fn item_vector_round_trips_without_reallocating() {
        let mut pool: WorkerPool<Vec<u8>, ()> =
            WorkerPool::new(3, 2, |_, job: &mut Vec<u8>, ()| job.push(1));
        let mut items: Vec<Vec<u8>> = (0..3).map(|_| Vec::with_capacity(64)).collect();
        let before = items.as_ptr();
        for _ in 0..5 {
            pool.run_epoch(&mut items, ());
        }
        assert_eq!(items.as_ptr(), before, "outer vector was reallocated");
        assert!(items.iter().all(|v| v.len() == 5 && v.capacity() >= 64));
    }

    #[test]
    fn lpt_orders_descending_with_index_ties() {
        assert_eq!(lpt_order(&[0.0, 0.0, 0.0]), vec![0, 1, 2]);
        assert_eq!(lpt_order(&[1.0, 9.0, 4.0]), vec![1, 2, 0]);
        assert_eq!(lpt_order(&[4.0, 9.0, 4.0, 9.0]), vec![1, 3, 0, 2]);
    }

    #[test]
    fn ewma_tracks_busy_history() {
        let mut pool: WorkerPool<u64, ()> = WorkerPool::new(2, 1, |slot, _, ()| {
            if slot == 1 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
        });
        let mut items = vec![0u64; 2];
        for _ in 0..3 {
            pool.run_epoch(&mut items, ());
        }
        assert!(
            pool.ewma_ns[1] > pool.ewma_ns[0],
            "slower slot must predict slower"
        );
        assert_eq!(lpt_order(&pool.ewma_ns)[0], 1, "LPT starts the slow slot");
    }

    #[test]
    fn busy_ns_reported_per_slot() {
        let mut pool: WorkerPool<u64, ()> = WorkerPool::new(2, 2, |_, _, ()| {});
        let mut items = vec![0u64; 2];
        pool.run_epoch(&mut items, ());
        assert_eq!(pool.last_busy_ns().len(), 2);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn job_panics_propagate_to_the_coordinator() {
        let mut pool: WorkerPool<u32, ()> = WorkerPool::new(4, 2, |slot, _, ()| {
            if slot == 2 {
                panic!("boom");
            }
        });
        let mut items = vec![0u32; 4];
        pool.run_epoch(&mut items, ());
    }

    #[test]
    fn pool_survives_many_epochs_under_contention() {
        let mut pool: WorkerPool<u64, u64> = WorkerPool::new(8, 8, |_, job, ctx| *job += ctx);
        let mut items = vec![0u64; 8];
        for epoch in 0..200 {
            pool.run_epoch(&mut items, epoch % 3);
        }
        let expected: u64 = (0..200u64).map(|e| e % 3).sum();
        assert!(items.iter().all(|&v| v == expected));
    }
}

//! Property-based tests of the discrete-event engine: ordering, FIFO ties,
//! cancellation, and clock monotonicity under arbitrary schedules.

use proptest::prelude::*;
use telecast_sim::{Engine, SimTime};

proptest! {
    /// Events always fire in non-decreasing time order, whatever the
    /// scheduling order was.
    #[test]
    fn fires_in_nondecreasing_time(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut engine = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            engine.schedule_at(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut fired = 0usize;
        while let Some(ev) = engine.pop() {
            prop_assert!(ev.at >= last);
            last = ev.at;
            fired += 1;
        }
        prop_assert_eq!(fired, times.len());
    }

    /// Among events with the same timestamp, scheduling order is preserved.
    #[test]
    fn equal_times_fifo(groups in proptest::collection::vec(0u64..16, 1..100)) {
        let mut engine = Engine::new();
        for (i, &g) in groups.iter().enumerate() {
            engine.schedule_at(SimTime::from_millis(g), i);
        }
        let mut last_seq_per_time: std::collections::HashMap<u64, usize> = Default::default();
        while let Some(ev) = engine.pop() {
            if let Some(&prev) = last_seq_per_time.get(&ev.at.as_micros()) {
                prop_assert!(ev.payload > prev, "FIFO violated at {}", ev.at);
            }
            last_seq_per_time.insert(ev.at.as_micros(), ev.payload);
        }
    }

    /// Cancelled events never fire; everything else does exactly once.
    #[test]
    fn cancellation_is_exact(
        times in proptest::collection::vec(0u64..1_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut engine = Engine::new();
        let mut ids = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            ids.push((i, engine.schedule_at(SimTime::from_micros(t), i)));
        }
        let mut cancelled = std::collections::HashSet::new();
        for (&(i, id), &c) in ids.iter().zip(cancel_mask.iter()) {
            if c {
                engine.cancel(id);
                cancelled.insert(i);
            }
        }
        let mut seen = std::collections::HashSet::new();
        while let Some(ev) = engine.pop() {
            prop_assert!(!cancelled.contains(&ev.payload), "cancelled event fired");
            prop_assert!(seen.insert(ev.payload), "event fired twice");
        }
        prop_assert_eq!(seen.len(), times.len() - cancelled.len());
    }

    /// pop_until never yields an event beyond the deadline and always parks
    /// the clock at exactly the deadline when it returns None.
    #[test]
    fn pop_until_honours_deadline(
        times in proptest::collection::vec(0u64..2_000, 0..100),
        deadline in 0u64..2_000,
    ) {
        let mut engine = Engine::new();
        for &t in &times {
            engine.schedule_at(SimTime::from_micros(t), t);
        }
        let deadline = SimTime::from_micros(deadline);
        while let Some(ev) = engine.pop_until(deadline) {
            prop_assert!(ev.at <= deadline);
        }
        prop_assert!(engine.now() >= deadline);
    }
}

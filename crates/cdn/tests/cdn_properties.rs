//! Property tests of the CDN substrate: the outbound pool is conserved
//! under arbitrary serve/release interleavings and edge-server load
//! always equals the sum of its live sessions.

use proptest::prelude::*;
use telecast_cdn::{Cdn, CdnConfig, CdnLease};
use telecast_media::{SiteId, StreamId};
use telecast_net::{Bandwidth, Region};

#[derive(Debug, Clone, Copy)]
enum Op {
    Serve {
        camera: u16,
        mbps: u64,
        region: usize,
    },
    Release {
        index: usize,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..8, 1u64..6, 0usize..5).prop_map(|(camera, mbps, region)| Op::Serve {
            camera,
            mbps,
            region
        }),
        (0usize..64).prop_map(|index| Op::Release { index }),
    ]
}

proptest! {
    /// used = Σ live leases at every step; the pool never over-commits;
    /// edge loads sum to the pool usage.
    #[test]
    fn pool_is_conserved(
        cap_mbps in 1u64..200,
        ops in proptest::collection::vec(arb_op(), 0..200),
    ) {
        let cap = Bandwidth::from_mbps(cap_mbps);
        let mut cdn = Cdn::new(CdnConfig::default().with_outbound(cap));
        let mut live: Vec<(CdnLease, Bandwidth)> = Vec::new();
        for op in ops {
            match op {
                Op::Serve { camera, mbps, region } => {
                    let bw = Bandwidth::from_mbps(mbps);
                    let stream = StreamId::new(SiteId::new(0), camera);
                    match cdn.serve(stream, bw, Region::ALL[region]) {
                        Ok(lease) => live.push((lease, bw)),
                        Err(err) => {
                            prop_assert!(err.available < bw, "rejected despite headroom");
                        }
                    }
                }
                Op::Release { index } => {
                    if !live.is_empty() {
                        let (lease, _) = live.swap_remove(index % live.len());
                        cdn.release(lease);
                    }
                }
            }
            let expected: Bandwidth = live.iter().map(|&(_, bw)| bw).sum();
            prop_assert_eq!(cdn.outbound().used(), expected);
            prop_assert!(cdn.outbound().used() <= cap);
            prop_assert_eq!(cdn.active_leases(), live.len());
            let edge_total: Bandwidth = cdn.edges().iter().map(|e| e.load()).sum();
            prop_assert_eq!(edge_total, expected);
        }
    }
}

//! The CDN distribution storage: ingest point for producer frames.
//!
//! Producers upload 3D frames to the distribution storage; the storage
//! retains the latest frames per stream (a bounded window is plenty — the
//! CDN then re-serves from edge replicas) and tracks the freshest frame
//! number per stream, which the GSC monitoring component reports as the
//! "latest captured frame number `n`" used by Eq. 2.

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};
use telecast_media::{Frame, FrameNumber, StreamId};
use telecast_sim::SimTime;

/// Ingest statistics per stream, the producer metadata the GSC monitors
/// ("frame rate, frame number, and frame size for each stream").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Number of frames ingested.
    pub frames: u64,
    /// Total ingested bytes.
    pub bytes: u64,
    /// Highest frame number seen.
    pub latest_frame: FrameNumber,
    /// Capture timestamp of the freshest frame.
    pub latest_capture: SimTime,
}

/// Bounded per-stream frame store at the CDN core.
#[derive(Debug, Clone)]
pub struct Distribution {
    window: usize,
    frames: HashMap<StreamId, VecDeque<Frame>>,
    stats: HashMap<StreamId, IngestStats>,
}

impl Distribution {
    /// Creates a distribution storage retaining up to `window` frames per
    /// stream.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "distribution window must be positive");
        Distribution {
            window,
            frames: HashMap::new(),
            stats: HashMap::new(),
        }
    }

    /// Ingests one frame from a producer gateway.
    pub fn ingest(&mut self, frame: Frame) {
        let queue = self.frames.entry(frame.stream).or_default();
        queue.push_back(frame);
        while queue.len() > self.window {
            queue.pop_front();
        }
        let stats = self.stats.entry(frame.stream).or_insert(IngestStats {
            frames: 0,
            bytes: 0,
            latest_frame: FrameNumber::ZERO,
            latest_capture: SimTime::ZERO,
        });
        stats.frames += 1;
        stats.bytes += frame.bytes as u64;
        if frame.number >= stats.latest_frame {
            stats.latest_frame = frame.number;
            stats.latest_capture = frame.captured_at;
        }
    }

    /// Latest ingested frame number for `stream` (the `n` of Eq. 2).
    pub fn latest_frame(&self, stream: StreamId) -> Option<FrameNumber> {
        self.stats.get(&stream).map(|s| s.latest_frame)
    }

    /// Ingest statistics for `stream`.
    pub fn stats(&self, stream: StreamId) -> Option<IngestStats> {
        self.stats.get(&stream).copied()
    }

    /// Retrieves a retained frame by number, if still in the window.
    pub fn frame(&self, stream: StreamId, number: FrameNumber) -> Option<&Frame> {
        self.frames
            .get(&stream)?
            .iter()
            .find(|f| f.number == number)
    }

    /// Frames retained for `stream`, oldest first.
    pub fn retained(&self, stream: StreamId) -> impl Iterator<Item = &Frame> {
        self.frames.get(&stream).into_iter().flatten()
    }

    /// Number of streams with at least one retained frame.
    pub fn stream_count(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telecast_media::SiteId;

    fn frame(n: u64, bytes: u32) -> Frame {
        Frame {
            stream: StreamId::new(SiteId::new(0), 0),
            number: FrameNumber::new(n),
            captured_at: SimTime::from_millis(100 * n),
            bytes,
        }
    }

    #[test]
    fn ingest_tracks_latest() {
        let mut d = Distribution::new(10);
        d.ingest(frame(0, 100));
        d.ingest(frame(1, 200));
        let id = StreamId::new(SiteId::new(0), 0);
        assert_eq!(d.latest_frame(id), Some(FrameNumber::new(1)));
        let stats = d.stats(id).unwrap();
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.bytes, 300);
        assert_eq!(stats.latest_capture, SimTime::from_millis(100));
    }

    #[test]
    fn window_evicts_oldest() {
        let mut d = Distribution::new(3);
        for n in 0..5 {
            d.ingest(frame(n, 10));
        }
        let id = StreamId::new(SiteId::new(0), 0);
        assert_eq!(d.frame(id, FrameNumber::new(0)), None);
        assert_eq!(d.frame(id, FrameNumber::new(1)), None);
        assert!(d.frame(id, FrameNumber::new(2)).is_some());
        assert!(d.frame(id, FrameNumber::new(4)).is_some());
        // Stats still count everything ingested.
        assert_eq!(d.stats(id).unwrap().frames, 5);
    }

    #[test]
    fn unknown_stream_is_none() {
        let d = Distribution::new(4);
        let id = StreamId::new(SiteId::new(1), 7);
        assert_eq!(d.latest_frame(id), None);
        assert_eq!(d.stats(id), None);
        assert_eq!(d.retained(id).count(), 0);
        assert_eq!(d.stream_count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        Distribution::new(0);
    }
}

//! CDN edge servers.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use telecast_media::StreamId;
use telecast_net::{Bandwidth, Region};

/// Identifier of a CDN server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(u32);

impl ServerId {
    /// Creates a server id.
    pub const fn new(index: u32) -> Self {
        ServerId(index)
    }

    /// Raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "edge{}", self.0)
    }
}

/// A regional edge server: tracks the per-stream sessions it is feeding so
/// load distribution across edges can be inspected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeServer {
    id: ServerId,
    region: Region,
    sessions: HashMap<StreamId, u32>,
    load: Bandwidth,
}

impl EdgeServer {
    /// Creates an idle edge server in `region`.
    pub fn new(id: ServerId, region: Region) -> Self {
        EdgeServer {
            id,
            region,
            sessions: HashMap::new(),
            load: Bandwidth::ZERO,
        }
    }

    /// The server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The server's region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Registers one outbound session of `stream` at rate `bw`.
    pub fn add_session(&mut self, stream: StreamId, bw: Bandwidth) {
        *self.sessions.entry(stream).or_insert(0) += 1;
        self.load += bw;
    }

    /// Removes one outbound session of `stream` at rate `bw`.
    ///
    /// # Panics
    ///
    /// Panics if no session of `stream` is active.
    pub fn remove_session(&mut self, stream: StreamId, bw: Bandwidth) {
        let count = self
            .sessions
            .get_mut(&stream)
            .expect("removing a session that was never added");
        *count -= 1;
        if *count == 0 {
            self.sessions.remove(&stream);
        }
        self.load -= bw;
    }

    /// Total number of active outbound sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.values().map(|&c| c as usize).sum()
    }

    /// Number of distinct streams being served.
    pub fn distinct_streams(&self) -> usize {
        self.sessions.len()
    }

    /// Aggregate outbound load.
    pub fn load(&self) -> Bandwidth {
        self.load
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telecast_media::SiteId;

    fn stream(camera: u16) -> StreamId {
        StreamId::new(SiteId::new(0), camera)
    }

    #[test]
    fn sessions_accumulate_per_stream() {
        let mut edge = EdgeServer::new(ServerId::new(0), Region::Europe);
        edge.add_session(stream(0), Bandwidth::from_mbps(2));
        edge.add_session(stream(0), Bandwidth::from_mbps(2));
        edge.add_session(stream(1), Bandwidth::from_mbps(2));
        assert_eq!(edge.session_count(), 3);
        assert_eq!(edge.distinct_streams(), 2);
        assert_eq!(edge.load(), Bandwidth::from_mbps(6));
    }

    #[test]
    fn removal_clears_empty_streams() {
        let mut edge = EdgeServer::new(ServerId::new(1), Region::Asia);
        edge.add_session(stream(0), Bandwidth::from_mbps(2));
        edge.remove_session(stream(0), Bandwidth::from_mbps(2));
        assert_eq!(edge.session_count(), 0);
        assert_eq!(edge.distinct_streams(), 0);
        assert_eq!(edge.load(), Bandwidth::ZERO);
    }

    #[test]
    #[should_panic(expected = "never added")]
    fn removing_unknown_session_panics() {
        let mut edge = EdgeServer::new(ServerId::new(2), Region::Asia);
        edge.remove_session(stream(0), Bandwidth::from_mbps(2));
    }

    #[test]
    fn display() {
        assert_eq!(ServerId::new(3).to_string(), "edge3");
    }
}

//! CDN edge servers.

use std::fmt;
use telecast_sim::FxHashMap;

use serde::{Deserialize, Serialize};
use telecast_media::StreamId;
use telecast_net::{Bandwidth, Region};

/// Identifier of a CDN server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(u32);

impl ServerId {
    /// Creates a server id.
    pub const fn new(index: u32) -> Self {
        ServerId(index)
    }

    /// Raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "edge{}", self.0)
    }
}

/// A regional edge server: tracks the per-stream sessions it is feeding so
/// load distribution across edges can be inspected.
///
/// Edges are elastic: the autoscaler grows extra edges into a region when
/// the pool expands and retires drained ones when it shrinks. A retired
/// edge accepts no new sessions but stays addressable by [`ServerId`] so
/// the id → server mapping remains a direct index for the CDN's lifetime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeServer {
    id: ServerId,
    region: Region,
    sessions: FxHashMap<StreamId, u32>,
    /// Maintained total of active sessions — kept in sync with the
    /// per-stream map so [`EdgeServer::session_count`] is O(1) instead of
    /// a sum over every stream on every lease operation.
    session_total: usize,
    load: Bandwidth,
    retired: bool,
}

impl EdgeServer {
    /// Creates an idle edge server in `region`.
    pub fn new(id: ServerId, region: Region) -> Self {
        EdgeServer {
            id,
            region,
            sessions: FxHashMap::default(),
            session_total: 0,
            load: Bandwidth::ZERO,
            retired: false,
        }
    }

    /// The server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The server's region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Whether this edge was retired by a scale-down (it holds no
    /// sessions and accepts no new ones).
    pub fn is_retired(&self) -> bool {
        self.retired
    }

    /// Marks the edge retired.
    ///
    /// # Panics
    ///
    /// Panics if sessions are still active — the autoscaler only retires
    /// drained edges.
    pub(crate) fn retire(&mut self) {
        assert_eq!(self.session_total, 0, "retiring an edge with live sessions");
        self.retired = true;
    }

    /// Registers one outbound session of `stream` at rate `bw`.
    ///
    /// # Panics
    ///
    /// Panics if the edge was retired.
    pub fn add_session(&mut self, stream: StreamId, bw: Bandwidth) {
        assert!(!self.retired, "adding a session to a retired edge");
        *self.sessions.entry(stream).or_insert(0) += 1;
        self.session_total += 1;
        self.load += bw;
    }

    /// Removes one outbound session of `stream` at rate `bw`.
    ///
    /// # Panics
    ///
    /// Panics if no session of `stream` is active.
    pub fn remove_session(&mut self, stream: StreamId, bw: Bandwidth) {
        let count = self
            .sessions
            .get_mut(&stream)
            .expect("removing a session that was never added");
        *count -= 1;
        if *count == 0 {
            self.sessions.remove(&stream);
        }
        self.session_total -= 1;
        self.load -= bw;
    }

    /// Total number of active outbound sessions (O(1): maintained, not
    /// summed from the per-stream map).
    pub fn session_count(&self) -> usize {
        self.session_total
    }

    /// Number of distinct streams being served.
    pub fn distinct_streams(&self) -> usize {
        self.sessions.len()
    }

    /// Aggregate outbound load.
    pub fn load(&self) -> Bandwidth {
        self.load
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telecast_media::SiteId;

    fn stream(camera: u16) -> StreamId {
        StreamId::new(SiteId::new(0), camera)
    }

    #[test]
    fn sessions_accumulate_per_stream() {
        let mut edge = EdgeServer::new(ServerId::new(0), Region::Europe);
        edge.add_session(stream(0), Bandwidth::from_mbps(2));
        edge.add_session(stream(0), Bandwidth::from_mbps(2));
        edge.add_session(stream(1), Bandwidth::from_mbps(2));
        assert_eq!(edge.session_count(), 3);
        assert_eq!(edge.distinct_streams(), 2);
        assert_eq!(edge.load(), Bandwidth::from_mbps(6));
    }

    #[test]
    fn removal_clears_empty_streams() {
        let mut edge = EdgeServer::new(ServerId::new(1), Region::Asia);
        edge.add_session(stream(0), Bandwidth::from_mbps(2));
        edge.remove_session(stream(0), Bandwidth::from_mbps(2));
        assert_eq!(edge.session_count(), 0);
        assert_eq!(edge.distinct_streams(), 0);
        assert_eq!(edge.load(), Bandwidth::ZERO);
    }

    #[test]
    fn maintained_count_tracks_interleaved_adds_and_removes() {
        let mut edge = EdgeServer::new(ServerId::new(4), Region::Oceania);
        let mut expected = 0usize;
        for round in 0..20u16 {
            edge.add_session(stream(round % 3), Bandwidth::from_mbps(1));
            expected += 1;
            if round % 2 == 0 {
                edge.remove_session(stream(round % 3), Bandwidth::from_mbps(1));
                expected -= 1;
            }
            assert_eq!(edge.session_count(), expected);
        }
        assert_eq!(edge.session_count(), 10);
    }

    #[test]
    #[should_panic(expected = "never added")]
    fn removing_unknown_session_panics() {
        let mut edge = EdgeServer::new(ServerId::new(2), Region::Asia);
        edge.remove_session(stream(0), Bandwidth::from_mbps(2));
    }

    #[test]
    #[should_panic(expected = "retired edge")]
    fn retired_edge_rejects_sessions() {
        let mut edge = EdgeServer::new(ServerId::new(5), Region::Europe);
        edge.retire();
        assert!(edge.is_retired());
        edge.add_session(stream(0), Bandwidth::from_mbps(2));
    }

    #[test]
    fn display() {
        assert_eq!(ServerId::new(3).to_string(), "edge3");
    }
}

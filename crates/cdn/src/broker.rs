//! Multi-tenant capacity broker: M concurrent broadcasts sharing the
//! regional CDN pools.
//!
//! The paper evaluates one session that owns the whole CDN outbound
//! pool. Production scale means hundreds of concurrent broadcasts
//! sharing regional capacity, so this module lifts CDN ownership out of
//! the session: a [`CapacityBroker`] owns the [`Cdn`] (its per-region
//! `CapacityAccount`s, provisioned meters and edge fleets) and each
//! tenant session holds only a [`TenantHandle`] — a cloneable,
//! internally-locked view that mirrors the `Cdn` API the session used
//! to call directly.
//!
//! Each tenant carries a [`TenantQuota`]: a guaranteed **floor** and a
//! burstable **ceiling**, both expressed as a percentage of each
//! regional pool. Admission enforces three rules per pool slot:
//!
//! 1. a tenant may never hold more than its ceiling;
//! 2. capacity below a tenant's floor is always admissible to it (as
//!    long as the pool physically has room);
//! 3. demand *above* the floor is admissible only from the burstable
//!    slack — capacity left once every active tenant's unclaimed floor
//!    is set aside.
//!
//! A single tenant with [`TenantQuota::FULL`] reduces every check to
//! the plain `CapacityAccount::can_reserve` the session used before the
//! broker existed — including the [`CdnRejectedError`] fields — so the
//! legacy single-broadcast artifacts replay byte-identically.
//!
//! When several tenants' parked joins contend for the same freed
//! capacity, [`CapacityBroker::arbitrate_retry`] splits the headroom by
//! deficit round-robin: each round credits every demanding tenant a
//! quantum proportional to its quota weight and grants up to its
//! accumulated deficit, visiting tenants in ascending [`TenantId`]
//! order — the deterministic `(round, tenant_id)` tie-break. Deficits
//! persist across arbitrations (capped at one quantum) so a tenant
//! starved this round is first in line for the next one.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

use telecast_media::StreamId;
use telecast_net::{Bandwidth, CapacityAccount, Region};
use telecast_sim::{SimDuration, SimTime};

use crate::{Cdn, CdnConfig, CdnLease, CdnRejectedError, ProvisionedMeter};

/// Bandwidth credited per quota-weight point per arbitration round
/// (1 Mbps). Small enough that an 8-tenant split of a regional pool
/// interleaves fairly, large enough that arbitration terminates in a
/// handful of rounds.
const DEFICIT_QUANTUM_KBPS: u64 = 1_000;

/// Identifies one tenant broadcast registered with a broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(u32);

impl TenantId {
    /// Builds a tenant id from its registration index.
    pub fn new(index: u32) -> Self {
        TenantId(index)
    }

    /// The registration index (dense, starting at 0).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// A tenant's share of every regional pool: a guaranteed floor and a
/// burstable ceiling, as percentages of each slot's *current* (elastic)
/// capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Guaranteed percentage of each regional pool: capacity below the
    /// floor is always admissible to this tenant, and other tenants can
    /// never burst into it. The sum of active tenants' floors must stay
    /// ≤ 100.
    pub floor_percent: u32,
    /// Burst limit as a percentage of each regional pool — the tenant
    /// can use idle capacity beyond its floor up to this bound.
    pub ceiling_percent: u32,
}

impl TenantQuota {
    /// The whole pool: floor = ceiling = 100%. A single tenant with
    /// this quota is exactly the legacy one-session-owns-the-`Cdn`
    /// model.
    pub const FULL: TenantQuota = TenantQuota {
        floor_percent: 100,
        ceiling_percent: 100,
    };

    /// An even split of the pool across `n` tenants with `burst`×
    /// headroom: floor `100/n`, ceiling `min(100, burst·100/n)`.
    pub fn even_split(n: u32, burst: u32) -> TenantQuota {
        let n = n.max(1);
        TenantQuota {
            floor_percent: 100 / n,
            ceiling_percent: (burst.max(1) * 100 / n).min(100),
        }
    }

    /// Panics unless `floor ≤ ceiling ≤ 100` — the invariant
    /// [`CapacityBroker::register`] enforces on admission.
    pub fn validate(self) {
        assert!(
            self.floor_percent <= self.ceiling_percent,
            "tenant floor {}% exceeds ceiling {}%",
            self.floor_percent,
            self.ceiling_percent
        );
        assert!(
            self.ceiling_percent <= 100,
            "tenant ceiling {}% exceeds the pool",
            self.ceiling_percent
        );
    }
}

/// `pct` percent of `total_kbps`, exact in u128 so `pct == 100` returns
/// `total_kbps` unchanged even for the effectively-unbounded pool
/// (`u64::MAX / 2` kbps) — the single-tenant byte-identity path.
fn pct_of(total_kbps: u64, pct: u32) -> u64 {
    (u128::from(total_kbps) * u128::from(pct) / 100) as u64
}

/// Book-keeping for one registered tenant.
#[derive(Debug, Clone)]
struct TenantState {
    quota: TenantQuota,
    /// Arbitration weight: the floor percentage (min 1 so zero-floor
    /// best-effort tenants still make progress).
    weight: u64,
    /// Whether the tenant is still registered (departed tenants keep
    /// their slot so `TenantId`s stay dense and stable).
    active: bool,
    /// Reserved bandwidth per pool slot, in kbps.
    used_kbps: Vec<u64>,
    /// Deficit-round-robin credit per pool slot, in kbps; persists
    /// across arbitrations, capped at one quantum.
    deficit_kbps: Vec<u64>,
    /// Usage integral: Σ used × time, in Mbps-hours — the per-tenant
    /// served-capacity analogue of the pool's `ProvisionedMeter`.
    served_mbps_hours: f64,
}

/// Owns the CDN on behalf of many tenant broadcasts: per-region pools,
/// meters and edge fleets live here; sessions hold [`TenantHandle`]s.
#[derive(Debug)]
pub struct CapacityBroker {
    cdn: Cdn,
    tenants: Vec<TenantState>,
    /// Which tenant holds each live lease (and in which slot, at what
    /// rate) — the map that routes releases back to the right quota
    /// account, including leases released by a foreign shard.
    lease_owner: HashMap<CdnLease, (usize, usize, Bandwidth)>,
    /// Virtual time up to which tenant usage integrals have accrued.
    usage_accrued_to: SimTime,
}

impl CapacityBroker {
    /// Builds a broker owning a fresh [`Cdn`] with no tenants yet.
    pub fn new(config: CdnConfig) -> Self {
        CapacityBroker {
            cdn: Cdn::new(config),
            tenants: Vec::new(),
            lease_owner: HashMap::new(),
            usage_accrued_to: SimTime::ZERO,
        }
    }

    /// Builds a shared (lockable) broker — the form [`TenantHandle`]s
    /// and fleets hold.
    pub fn shared(config: CdnConfig) -> Arc<Mutex<CapacityBroker>> {
        Arc::new(Mutex::new(CapacityBroker::new(config)))
    }

    /// The legacy path: one tenant owning the whole pool. Returns a
    /// handle over every slot with [`TenantQuota::FULL`]; every
    /// admission decision and error matches a bare [`Cdn`] exactly.
    pub fn single(config: CdnConfig) -> TenantHandle {
        let broker = CapacityBroker::shared(config);
        let tenant = broker
            .lock()
            .expect("fresh broker lock")
            .register(TenantQuota::FULL);
        TenantHandle::new(broker, tenant, false)
    }

    /// Registers a tenant with `quota`, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the quota is malformed (floor > ceiling or ceiling >
    /// 100%) or if the active tenants' floors would sum past 100%.
    pub fn register(&mut self, quota: TenantQuota) -> TenantId {
        quota.validate();
        let committed: u32 = self
            .tenants
            .iter()
            .filter(|t| t.active)
            .map(|t| t.quota.floor_percent)
            .sum();
        assert!(
            committed + quota.floor_percent <= 100,
            "tenant floors oversubscribed: {}% committed + {}% requested",
            committed,
            quota.floor_percent
        );
        let slots = self.cdn.pool_slots();
        self.tenants.push(TenantState {
            quota,
            weight: u64::from(quota.floor_percent.max(1)),
            active: true,
            used_kbps: vec![0; slots],
            deficit_kbps: vec![0; slots],
            served_mbps_hours: 0.0,
        });
        TenantId::new((self.tenants.len() - 1) as u32)
    }

    /// Deregisters a tenant: releases every lease it still holds back
    /// to the shared pools and stops reserving its floor. Returns the
    /// number of leases released.
    pub fn depart(&mut self, tenant: TenantId) -> usize {
        let mut orphans: Vec<CdnLease> = self
            .lease_owner
            .iter()
            .filter(|(_, &(t, _, _))| t == tenant.index())
            .map(|(&lease, _)| lease)
            .collect();
        orphans.sort();
        let count = orphans.len();
        for lease in orphans {
            self.release(lease);
        }
        self.tenants[tenant.index()].active = false;
        count
    }

    /// Number of registered tenants, departed ones included.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Whether `tenant` is still registered.
    pub fn is_active(&self, tenant: TenantId) -> bool {
        self.tenants[tenant.index()].active
    }

    /// The quota `tenant` registered with.
    pub fn quota(&self, tenant: TenantId) -> TenantQuota {
        self.tenants[tenant.index()].quota
    }

    /// Read access to the owned CDN (pools, meters, edges).
    pub fn cdn(&self) -> &Cdn {
        &self.cdn
    }

    /// Bandwidth `tenant` currently reserves in `slot`, in kbps.
    pub fn used_kbps(&self, tenant: TenantId, slot: usize) -> u64 {
        self.tenants[tenant.index()].used_kbps[slot]
    }

    /// The usage integral accrued for `tenant` so far, in Mbps-hours
    /// (see [`CapacityBroker::accrue_usage`]).
    pub fn served_mbps_hours(&self, tenant: TenantId) -> f64 {
        self.tenants[tenant.index()].served_mbps_hours
    }

    fn floor_kbps(&self, tenant: usize, slot: usize) -> u64 {
        pct_of(
            self.cdn.pool(slot).total().as_kbps(),
            self.tenants[tenant].quota.floor_percent,
        )
    }

    fn ceiling_kbps(&self, tenant: usize, slot: usize) -> u64 {
        pct_of(
            self.cdn.pool(slot).total().as_kbps(),
            self.tenants[tenant].quota.ceiling_percent,
        )
    }

    /// Bandwidth `tenant` could reserve in `slot` right now, in kbps:
    /// the tenant's unclaimed floor (always admissible) plus the
    /// *burstable* headroom — pool capacity left after every active
    /// tenant's unclaimed floor (the requester's own included, since
    /// that part is already granted through the entitlement term) is
    /// set aside — capped by the pool's physical headroom and the
    /// tenant's remaining ceiling. All of it collapses to the physical
    /// headroom for a lone [`TenantQuota::FULL`] tenant.
    pub fn tenant_available_kbps(&self, tenant: TenantId, slot: usize) -> u64 {
        let t = tenant.index();
        let avail = self.cdn.pool(slot).available().as_kbps();
        let used = self.tenants[t].used_kbps[slot];
        let ceiling_headroom = self.ceiling_kbps(t, slot).saturating_sub(used);
        let entitlement = self.floor_kbps(t, slot).saturating_sub(used);
        let reserved_floors: u64 = self
            .tenants
            .iter()
            .enumerate()
            .filter(|(_, s)| s.active)
            .map(|(u, s)| self.floor_kbps(u, slot).saturating_sub(s.used_kbps[slot]))
            .sum();
        let burstable = avail.saturating_sub(reserved_floors);
        avail
            .min(ceiling_headroom)
            .min(entitlement.saturating_add(burstable))
    }

    /// Whether `tenant` could admit a stream of rate `bw` for a viewer
    /// in `region` under its quota.
    pub fn can_serve_in(&self, tenant: TenantId, bw: Bandwidth, region: Region) -> bool {
        let slot = self.cdn.slot_of(region);
        bw.as_kbps() <= self.tenant_available_kbps(tenant, slot)
    }

    /// Admits a stream of rate `bw` for `tenant` towards a viewer in
    /// `region`, drawing from that region's pool under the tenant's
    /// quota.
    ///
    /// # Errors
    ///
    /// Returns [`CdnRejectedError`] when the quota-constrained headroom
    /// is insufficient; `available` reports what this *tenant* could
    /// still draw (for a lone full-quota tenant, exactly the pool's
    /// headroom).
    pub fn serve(
        &mut self,
        tenant: TenantId,
        stream: StreamId,
        bw: Bandwidth,
        region: Region,
    ) -> Result<CdnLease, CdnRejectedError> {
        let slot = self.cdn.slot_of(region);
        let admissible = self.tenant_available_kbps(tenant, slot);
        if bw.as_kbps() > admissible {
            return Err(CdnRejectedError {
                requested: bw,
                available: Bandwidth::from_kbps(admissible),
            });
        }
        let lease = self.cdn.serve(stream, bw, region)?;
        self.tenants[tenant.index()].used_kbps[slot] += bw.as_kbps();
        self.lease_owner.insert(lease, (tenant.index(), slot, bw));
        Ok(lease)
    }

    /// Releases a lease, returning its bandwidth to the pool and the
    /// owning tenant's quota account — whichever tenant (or foreign
    /// shard) hands the lease back.
    ///
    /// # Panics
    ///
    /// Panics if the lease was already released.
    pub fn release(&mut self, lease: CdnLease) {
        let (tenant, slot, bw) = self
            .lease_owner
            .remove(&lease)
            .expect("release of unknown or already-released broker lease");
        self.cdn.release(lease);
        self.tenants[tenant].used_kbps[slot] -= bw.as_kbps();
    }

    /// Number of live leases held by `tenant` within `slots`.
    pub fn tenant_leases_in(&self, tenant: TenantId, slots: std::ops::Range<usize>) -> usize {
        self.lease_owner
            .values()
            .filter(|&&(t, s, _)| t == tenant.index() && slots.contains(&s))
            .count()
    }

    /// Resizes one pool slot (see [`Cdn::apply_scale_slot`]). Quota
    /// floors and ceilings are percentages of the *current* total, so
    /// they follow the elastic pool automatically.
    pub fn apply_scale_slot(
        &mut self,
        slot: usize,
        new_total: Bandwidth,
        now: SimTime,
    ) -> Bandwidth {
        self.cdn.apply_scale_slot(slot, new_total, now)
    }

    /// Accrues every tenant's usage integral up to `now`: each tenant
    /// earns `Σ_slots used` × elapsed time in Mbps-hours. Call at every
    /// fleet epoch barrier (and once at the end of a run).
    pub fn accrue_usage(&mut self, now: SimTime) {
        let dt_hours = now.saturating_since(self.usage_accrued_to).as_secs_f64() / 3_600.0;
        if dt_hours > 0.0 {
            for tenant in &mut self.tenants {
                let used_kbps: u64 = tenant.used_kbps.iter().sum();
                tenant.served_mbps_hours += used_kbps as f64 / 1_000.0 * dt_hours;
            }
        }
        self.usage_accrued_to = now;
    }

    /// Splits `slot`'s free headroom across tenants' pending retry
    /// demand by weighted deficit round-robin. `demands` pairs each
    /// tenant with its parked bandwidth (kbps); the returned budgets
    /// align with `demands` and sum to at most the slot's headroom.
    ///
    /// Deterministic: rounds visit tenants in ascending [`TenantId`]
    /// order and every quantum is integer kbps, so equal inputs always
    /// produce equal splits. Deficits persist on the tenant (capped at
    /// one quantum) so losing an arbitration raises priority in the
    /// next.
    pub fn arbitrate_retry(&mut self, slot: usize, demands: &[(TenantId, u64)]) -> Vec<u64> {
        let mut order: Vec<usize> = (0..demands.len()).collect();
        order.sort_by_key(|&i| demands[i].0);

        let mut remaining = self.cdn.pool(slot).available().as_kbps();
        let mut grants = vec![0u64; demands.len()];
        // Cap each tenant's reachable demand by its quota snapshot so a
        // budget is (almost) always honoured when the session drains.
        let mut pending: Vec<u64> = demands
            .iter()
            .map(|&(t, d)| d.min(self.tenant_available_kbps(t, slot)))
            .collect();
        let mut deficit: Vec<u64> = demands
            .iter()
            .map(|&(t, _)| self.tenants[t.index()].deficit_kbps[slot])
            .collect();
        let quantum: Vec<u64> = demands
            .iter()
            .map(|&(t, _)| self.tenants[t.index()].weight * DEFICIT_QUANTUM_KBPS)
            .collect();

        while remaining > 0 && pending.iter().any(|&p| p > 0) {
            for &i in &order {
                if pending[i] == 0 {
                    continue;
                }
                deficit[i] += quantum[i];
                let give = deficit[i].min(pending[i]).min(remaining);
                deficit[i] -= give;
                pending[i] -= give;
                grants[i] += give;
                remaining -= give;
                if remaining == 0 {
                    break;
                }
            }
        }

        for (i, &(t, _)) in demands.iter().enumerate() {
            let state = &mut self.tenants[t.index()];
            // Classic DRR: a drained queue forfeits its credit; an
            // unsatisfied one carries (at most) one quantum forward.
            state.deficit_kbps[slot] = if pending[i] == 0 {
                0
            } else {
                deficit[i].min(quantum[i])
            };
        }
        grants
    }
}

/// A tenant session's view of the shared broker: mirrors the [`Cdn`]
/// API (`serve`, `release`, `pool`, `outbound`, scaling and metering
/// accessors) so `TelecastSession` calls it exactly where it used to
/// call its own `Cdn`, while every operation is admission-checked
/// against the tenant's quota.
///
/// A handle may also *window* the broker's slots (`slot_base` /
/// `slot_count`): a per-region shard of a sharded session sees only its
/// own regional slot, numbered locally from 0, which preserves the
/// single-slot semantics the shards had when each owned a private
/// global-scope `Cdn`.
#[derive(Debug, Clone)]
pub struct TenantHandle {
    broker: Arc<Mutex<CapacityBroker>>,
    tenant: TenantId,
    slot_base: usize,
    slot_count: usize,
    fleet_managed: bool,
}

impl TenantHandle {
    /// A handle over every pool slot. `fleet_managed` marks sessions
    /// whose autoscaling and retry drain run at a fleet barrier instead
    /// of session-local autoscalers.
    pub fn new(broker: Arc<Mutex<CapacityBroker>>, tenant: TenantId, fleet_managed: bool) -> Self {
        let slot_count = broker
            .lock()
            .expect("broker lock for handle construction")
            .cdn
            .pool_slots();
        TenantHandle {
            broker,
            tenant,
            slot_base: 0,
            slot_count,
            fleet_managed,
        }
    }

    /// A single-slot window for a per-region shard: the shard sees the
    /// broker's `slot_base` pool as its local slot 0.
    pub fn window(broker: Arc<Mutex<CapacityBroker>>, tenant: TenantId, slot_base: usize) -> Self {
        TenantHandle {
            broker,
            tenant,
            slot_base,
            slot_count: 1,
            fleet_managed: false,
        }
    }

    fn lock(&self) -> MutexGuard<'_, CapacityBroker> {
        self.broker.lock().expect("capacity broker lock poisoned")
    }

    /// The shared broker behind this handle.
    pub fn broker(&self) -> Arc<Mutex<CapacityBroker>> {
        Arc::clone(&self.broker)
    }

    /// This handle's tenant.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Whether a fleet barrier (not session-local autoscalers) manages
    /// this tenant's scaling and retry drain.
    pub fn fleet_managed(&self) -> bool {
        self.fleet_managed
    }

    /// Number of pool slots visible through this handle.
    pub fn pool_slots(&self) -> usize {
        self.slot_count
    }

    /// The local slot serving `region`. A single-slot window maps every
    /// region to 0 — the global-scope semantics its shard session
    /// expects.
    pub fn slot_of(&self, region: Region) -> usize {
        let global = self.lock().cdn.slot_of(region);
        global
            .saturating_sub(self.slot_base)
            .min(self.slot_count - 1)
    }

    /// The region a local slot serves, or `None` for a global pool or a
    /// windowed handle (whose shard treats its slot as a global pool).
    pub fn slot_region(&self, slot: usize) -> Option<Region> {
        let broker = self.lock();
        if self.slot_count == broker.cdn.pool_slots() {
            broker.cdn.slot_region(slot)
        } else {
            None
        }
    }

    /// The capacity account of one visible pool slot, by value.
    pub fn pool(&self, slot: usize) -> CapacityAccount {
        *self.lock().cdn.pool(self.slot_base + slot)
    }

    /// The visible pool slots viewed as one aggregate account.
    pub fn outbound(&self) -> CapacityAccount {
        let broker = self.lock();
        let slots = self.slot_base..self.slot_base + self.slot_count;
        let total = slots.clone().map(|s| broker.cdn.pool(s).total()).sum();
        let used = slots.map(|s| broker.cdn.pool(s).used()).sum();
        let mut agg = CapacityAccount::new(total);
        agg.reserve(used)
            .expect("per-slot used never exceeds total");
        agg
    }

    /// Whether this tenant could admit a stream of rate `bw` for a
    /// viewer in `region` (see [`CapacityBroker::can_serve_in`]).
    pub fn can_serve_in(&self, bw: Bandwidth, region: Region) -> bool {
        self.lock().can_serve_in(self.tenant, bw, region)
    }

    /// Admits a stream for this tenant (see [`CapacityBroker::serve`]).
    ///
    /// # Errors
    ///
    /// Returns [`CdnRejectedError`] when the tenant's quota-constrained
    /// headroom in the region's pool is insufficient.
    pub fn serve(
        &self,
        stream: StreamId,
        bw: Bandwidth,
        region: Region,
    ) -> Result<CdnLease, CdnRejectedError> {
        self.lock().serve(self.tenant, stream, bw, region)
    }

    /// Releases a lease (see [`CapacityBroker::release`]).
    pub fn release(&self, lease: CdnLease) {
        self.lock().release(lease);
    }

    /// Live leases this tenant holds in the visible slots.
    pub fn active_leases(&self) -> usize {
        self.lock().tenant_leases_in(
            self.tenant,
            self.slot_base..self.slot_base + self.slot_count,
        )
    }

    /// Resizes one visible pool slot (see [`Cdn::apply_scale_slot`]).
    pub fn apply_scale_slot(&self, slot: usize, new_total: Bandwidth, now: SimTime) -> Bandwidth {
        self.lock()
            .apply_scale_slot(self.slot_base + slot, new_total, now)
    }

    /// The provisioned meter of the first visible slot, by value.
    pub fn provisioned_meter(&self) -> ProvisionedMeter {
        *self.lock().cdn.provisioned_meter_of(self.slot_base)
    }

    /// The provisioned meter of one visible slot, by value.
    pub fn provisioned_meter_of(&self, slot: usize) -> ProvisionedMeter {
        *self.lock().cdn.provisioned_meter_of(self.slot_base + slot)
    }

    /// Provisioned Mbps-hours up to `now`, summed over visible slots.
    pub fn provisioned_mbps_hours_at(&self, now: SimTime) -> f64 {
        let broker = self.lock();
        (self.slot_base..self.slot_base + self.slot_count)
            .map(|s| broker.cdn.provisioned_meter_of(s).mbps_hours_at(now))
            .sum()
    }

    /// Provisioned dollars up to `now`, summed over visible slots.
    pub fn provisioned_dollars_at(&self, now: SimTime) -> f64 {
        let broker = self.lock();
        (self.slot_base..self.slot_base + self.slot_count)
            .map(|s| broker.cdn.provisioned_meter_of(s).dollars_at(now))
            .sum()
    }

    /// This tenant's usage integral in Mbps-hours (see
    /// [`CapacityBroker::accrue_usage`]).
    pub fn served_mbps_hours(&self) -> f64 {
        self.lock().served_mbps_hours(self.tenant)
    }

    /// The producer→viewer delivery delay `Δ`.
    pub fn delta(&self) -> SimDuration {
        self.lock().cdn.delta()
    }

    /// The broker CDN's configuration, by value.
    pub fn config(&self) -> CdnConfig {
        *self.lock().cdn.config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PoolScope;
    use telecast_media::SiteId;

    fn stream(camera: u16) -> StreamId {
        StreamId::new(SiteId::new(0), camera)
    }

    fn per_region_config(mbps: u64) -> CdnConfig {
        CdnConfig::default()
            .with_outbound(Bandwidth::from_mbps(mbps))
            .with_pool_scope(PoolScope::PerRegion)
    }

    /// The byte-identity keystone: a lone FULL-quota tenant behaves
    /// exactly like a bare `Cdn` across serve/reject/release/scale —
    /// same admissions, same error fields, same pool arithmetic.
    #[test]
    fn single_full_tenant_matches_bare_cdn() {
        let config = per_region_config(100);
        let mut bare = Cdn::new(config);
        let handle = CapacityBroker::single(config);

        let mut bare_leases = Vec::new();
        let mut broker_leases = Vec::new();
        // Fill Oceania (5% = 5 Mbps) past the brim, then scale, release,
        // and refill — the legacy session's life cycle.
        for i in 0..4u16 {
            let bw = Bandwidth::from_mbps(2);
            let a = bare.serve(stream(i), bw, Region::Oceania);
            let b = handle.serve(stream(i), bw, Region::Oceania);
            match (a, b) {
                (Ok(la), Ok(lb)) => {
                    bare_leases.push(la);
                    broker_leases.push(lb);
                }
                (Err(ea), Err(eb)) => {
                    assert_eq!(ea.requested, eb.requested);
                    assert_eq!(ea.available, eb.available);
                }
                (a, b) => panic!("admission diverged: bare {a:?} vs broker {b:?}"),
            }
        }
        assert_eq!(bare.outbound().used(), handle.outbound().used());
        assert_eq!(bare.active_leases(), handle.active_leases());

        let now = SimTime::from_secs(30);
        let slot = bare.slot_of(Region::Oceania);
        let a = bare.apply_scale_slot(slot, Bandwidth::from_mbps(20), now);
        let b = handle.apply_scale_slot(slot, Bandwidth::from_mbps(20), now);
        assert_eq!(a, b);
        assert_eq!(
            bare.can_serve_in(Bandwidth::from_mbps(2), Region::Oceania),
            handle.can_serve_in(Bandwidth::from_mbps(2), Region::Oceania)
        );

        bare.release(bare_leases.pop().unwrap());
        handle.release(broker_leases.pop().unwrap());
        assert_eq!(bare.outbound().used(), handle.outbound().used());
        assert_eq!(bare.pool(slot).available(), handle.pool(slot).available());
    }

    #[test]
    fn full_quota_survives_unbounded_pool() {
        // pct_of must not overflow on the u64::MAX/2 unbounded pool.
        let handle = CapacityBroker::single(CdnConfig::unbounded());
        assert!(handle.can_serve_in(Bandwidth::from_mbps(1_000_000), Region::Asia));
        handle
            .serve(stream(0), Bandwidth::from_mbps(2), Region::Asia)
            .expect("unbounded admits");
    }

    #[test]
    fn ceiling_caps_a_tenant_even_with_free_pool() {
        let broker = CapacityBroker::shared(per_region_config(1_000));
        let (a, _b) = {
            let mut guard = broker.lock().unwrap();
            (
                guard.register(TenantQuota {
                    floor_percent: 20,
                    ceiling_percent: 40,
                }),
                guard.register(TenantQuota {
                    floor_percent: 20,
                    ceiling_percent: 100,
                }),
            )
        };
        let ha = TenantHandle::new(Arc::clone(&broker), a, true);
        // Europe holds 30% of 1000 = 300 Mbps; A's ceiling is 40% = 120.
        for i in 0..6u16 {
            ha.serve(stream(i), Bandwidth::from_mbps(20), Region::Europe)
                .expect("inside ceiling");
        }
        let err = ha
            .serve(stream(6), Bandwidth::from_mbps(20), Region::Europe)
            .unwrap_err();
        assert_eq!(err.available, Bandwidth::ZERO);
        assert!(!ha.can_serve_in(Bandwidth::from_mbps(1), Region::Europe));
        // The pool itself still has 180 Mbps free.
        assert_eq!(
            broker
                .lock()
                .unwrap()
                .cdn()
                .pool(Region::Europe.index())
                .available(),
            Bandwidth::from_mbps(180)
        );
    }

    #[test]
    fn floors_are_protected_from_bursting_neighbours() {
        let broker = CapacityBroker::shared(per_region_config(1_000));
        let (a, b) = {
            let mut guard = broker.lock().unwrap();
            (
                guard.register(TenantQuota {
                    floor_percent: 30,
                    ceiling_percent: 100,
                }),
                guard.register(TenantQuota {
                    floor_percent: 50,
                    ceiling_percent: 100,
                }),
            )
        };
        let ha = TenantHandle::new(Arc::clone(&broker), a, true);
        let hb = TenantHandle::new(Arc::clone(&broker), b, true);
        // Europe pool: 300 Mbps. A's floor is 90, B's floor reserves
        // 150, so the burstable slack is 60: A may take 90 + 60 = 150.
        let err = ha
            .serve(stream(0), Bandwidth::from_mbps(200), Region::Europe)
            .unwrap_err();
        assert_eq!(err.available, Bandwidth::from_mbps(150));
        ha.serve(stream(0), Bandwidth::from_mbps(150), Region::Europe)
            .expect("entitlement plus burstable slack");
        // B can still claim its whole floor.
        hb.serve(stream(1), Bandwidth::from_mbps(150), Region::Europe)
            .expect("floor is guaranteed");
        assert!(!ha.can_serve_in(Bandwidth::from_mbps(1), Region::Europe));
    }

    #[test]
    fn departure_returns_leases_to_the_pool() {
        let broker = CapacityBroker::shared(per_region_config(1_000));
        let (a, b) = {
            let mut guard = broker.lock().unwrap();
            (
                guard.register(TenantQuota::even_split(2, 2)),
                guard.register(TenantQuota::even_split(2, 2)),
            )
        };
        let ha = TenantHandle::new(Arc::clone(&broker), a, true);
        let hb = TenantHandle::new(Arc::clone(&broker), b, true);
        for i in 0..5u16 {
            ha.serve(stream(i), Bandwidth::from_mbps(20), Region::Europe)
                .expect("fits");
        }
        assert_eq!(ha.active_leases(), 5);
        let released = broker.lock().unwrap().depart(a);
        assert_eq!(released, 5);
        let guard = broker.lock().unwrap();
        assert!(guard.cdn().pool(Region::Europe.index()).used().is_zero());
        assert_eq!(guard.used_kbps(a, Region::Europe.index()), 0);
        drop(guard);
        // B no longer competes with A's floor: the whole 300 Mbps pool
        // is admissible (B's ceiling is 100% of its even_split? no —
        // even_split(2,2) caps at 100/2*2 = 100%).
        assert!(hb.can_serve_in(Bandwidth::from_mbps(300), Region::Europe));
    }

    #[test]
    fn conservation_under_mixed_traffic() {
        let broker = CapacityBroker::shared(per_region_config(500));
        let tenants: Vec<TenantId> = {
            let mut guard = broker.lock().unwrap();
            (0..4)
                .map(|_| guard.register(TenantQuota::even_split(4, 3)))
                .collect()
        };
        let handles: Vec<TenantHandle> = tenants
            .iter()
            .map(|&t| TenantHandle::new(Arc::clone(&broker), t, true))
            .collect();
        let mut leases = Vec::new();
        for round in 0..20u16 {
            for (i, h) in handles.iter().enumerate() {
                let region = Region::ALL[(round as usize + i) % Region::ALL.len()];
                if let Ok(l) = h.serve(stream(round), Bandwidth::from_mbps(3), region) {
                    leases.push((i, l));
                }
            }
            if round % 3 == 0 && !leases.is_empty() {
                let (i, l) = leases.remove(0);
                handles[i].release(l);
            }
        }
        let guard = broker.lock().unwrap();
        for slot in 0..guard.cdn().pool_slots() {
            let summed: u64 = tenants.iter().map(|&t| guard.used_kbps(t, slot)).sum();
            assert_eq!(summed, guard.cdn().pool(slot).used().as_kbps());
            assert!(summed <= guard.cdn().pool(slot).total().as_kbps());
            for &t in &tenants {
                assert!(
                    guard.used_kbps(t, slot)
                        <= pct_of(
                            guard.cdn().pool(slot).total().as_kbps(),
                            guard.quota(t).ceiling_percent
                        )
                );
            }
        }
    }

    #[test]
    fn arbitration_splits_by_weight_deterministically() {
        let broker = CapacityBroker::shared(per_region_config(1_000));
        let (a, b) = {
            let mut guard = broker.lock().unwrap();
            (
                guard.register(TenantQuota {
                    floor_percent: 40,
                    ceiling_percent: 100,
                }),
                guard.register(TenantQuota {
                    floor_percent: 20,
                    ceiling_percent: 100,
                }),
            )
        };
        let mut guard = broker.lock().unwrap();
        let slot = Region::Europe.index(); // 300 Mbps free
                                           // Demand far exceeding supply: grants follow the 2:1 weights.
        let grants = guard.arbitrate_retry(slot, &[(a, 400_000), (b, 400_000)]);
        assert_eq!(grants.iter().sum::<u64>(), 300_000);
        assert_eq!(grants[0], 200_000);
        assert_eq!(grants[1], 100_000);
        // Determinism: same demands on a fresh broker → same split.
        let broker2 = CapacityBroker::shared(per_region_config(1_000));
        let (a2, b2) = {
            let mut g = broker2.lock().unwrap();
            (
                g.register(TenantQuota {
                    floor_percent: 40,
                    ceiling_percent: 100,
                }),
                g.register(TenantQuota {
                    floor_percent: 20,
                    ceiling_percent: 100,
                }),
            )
        };
        let grants2 = broker2
            .lock()
            .unwrap()
            .arbitrate_retry(slot, &[(a2, 400_000), (b2, 400_000)]);
        assert_eq!(grants, grants2);
    }

    #[test]
    fn arbitration_satisfies_small_demands_exactly() {
        let broker = CapacityBroker::shared(per_region_config(1_000));
        let (a, b) = {
            let mut guard = broker.lock().unwrap();
            (
                guard.register(TenantQuota::even_split(2, 2)),
                guard.register(TenantQuota::even_split(2, 2)),
            )
        };
        let mut guard = broker.lock().unwrap();
        let grants = guard.arbitrate_retry(Region::Europe.index(), &[(a, 12_000), (b, 24_000)]);
        assert_eq!(grants, vec![12_000, 24_000]);
        // No demand → no grant.
        let grants = guard.arbitrate_retry(Region::Europe.index(), &[(a, 0), (b, 0)]);
        assert_eq!(grants, vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "oversubscribed")]
    fn oversubscribed_floors_are_rejected() {
        let mut broker = CapacityBroker::new(per_region_config(1_000));
        broker.register(TenantQuota {
            floor_percent: 60,
            ceiling_percent: 100,
        });
        broker.register(TenantQuota {
            floor_percent: 50,
            ceiling_percent: 100,
        });
    }

    #[test]
    fn usage_integral_accrues_per_tenant() {
        let broker = CapacityBroker::shared(per_region_config(1_000));
        let a = broker.lock().unwrap().register(TenantQuota::FULL);
        let ha = TenantHandle::new(Arc::clone(&broker), a, true);
        ha.serve(stream(0), Bandwidth::from_mbps(100), Region::Europe)
            .expect("fits");
        broker
            .lock()
            .unwrap()
            .accrue_usage(SimTime::from_secs(1_800));
        // 100 Mbps for half an hour = 50 Mbps-hours.
        assert!((ha.served_mbps_hours() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn window_handle_sees_one_slot_as_global() {
        let broker = CapacityBroker::shared(per_region_config(1_000));
        let t = broker.lock().unwrap().register(TenantQuota::FULL);
        let eu = TenantHandle::window(Arc::clone(&broker), t, Region::Europe.index());
        assert_eq!(eu.pool_slots(), 1);
        assert_eq!(eu.slot_of(Region::Europe), 0);
        assert_eq!(eu.slot_of(Region::Oceania), 0);
        assert_eq!(eu.slot_region(0), None);
        assert_eq!(eu.outbound().total(), Bandwidth::from_mbps(300));
        eu.serve(stream(0), Bandwidth::from_mbps(10), Region::Europe)
            .expect("fits");
        assert_eq!(eu.pool(0).used(), Bandwidth::from_mbps(10));
        assert_eq!(eu.active_leases(), 1);
        // A sibling window over another slot sees none of it.
        let asia = TenantHandle::window(Arc::clone(&broker), t, Region::Asia.index());
        assert_eq!(asia.active_leases(), 0);
        assert!(asia.pool(0).used().is_zero());
    }
}

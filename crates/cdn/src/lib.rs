#![warn(missing_docs)]

//! CDN substrate for the 4D TeleCast reproduction (paper §III-A).
//!
//! 4D TeleCast uses a commercial CDN "as a storage and first layer
//! distribution server": producers upload 3D frames to the distribution
//! storage, core servers replicate them to regional edge servers, and
//! viewers (or the P2P layer's tree roots) pull from the nearest edge. The
//! paper's evaluation models the CDN as a bounded outbound pool
//! (`C_cdn_obw = 6000 Mbps`) with a constant producer→viewer first-hop
//! delay `Δ = 60 s`; this crate implements that plus the storage/edge
//! plumbing and the CloudFront-style transfer cost model ($0.18/GB).
//!
//! On top of the paper's static pool the crate adds an *elastic* mode
//! (see [`autoscale`]): [`Cdn::apply_scale`] resizes the outbound pool
//! at virtual time, growing extra per-region edge servers when capacity
//! expands and retiring drained ones when it shrinks, while a
//! [`ProvisionedMeter`] prices the provisioned Mbps-hours alongside the
//! egress bytes so over-provisioning is visible in dollars.
//!
//! # Example
//!
//! ```
//! use telecast_cdn::{Cdn, CdnConfig};
//! use telecast_net::{Bandwidth, Region};
//! use telecast_media::{SiteId, StreamId};
//!
//! let mut cdn = Cdn::new(CdnConfig::default());
//! let stream = StreamId::new(SiteId::new(0), 3);
//! let lease = cdn.serve(stream, Bandwidth::from_mbps(2), Region::Europe)?;
//! assert_eq!(cdn.outbound().used(), Bandwidth::from_mbps(2));
//! cdn.release(lease);
//! assert!(cdn.outbound().used().is_zero());
//! # Ok::<(), telecast_cdn::CdnRejectedError>(())
//! ```

pub mod autoscale;
mod cost;
mod distribution;
mod server;

pub use autoscale::{AutoscalePolicy, Autoscaler, ScaleDecision, ScaleDirection};
pub use cost::{CostModel, ProvisionedMeter, TrafficMeter};
pub use distribution::{Distribution, IngestStats};
pub use server::{EdgeServer, ServerId};

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};
use telecast_media::StreamId;
use telecast_net::{Bandwidth, CapacityAccount, Region};
use telecast_sim::{SimDuration, SimTime};

/// Hard cap on edge servers per region — a backstop against effectively
/// unbounded pools ([`CdnConfig::unbounded`]) materialising millions of
/// edges.
pub const MAX_EDGES_PER_REGION: u64 = 8;

/// Configuration of the simulated CDN.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdnConfig {
    /// Total outbound capacity usable by the 3DTI session (`C_cdn_obw`).
    pub outbound_capacity: Bandwidth,
    /// Producer→viewer delivery delay through the CDN (the paper's `Δ`;
    /// 60 s in the evaluation — the non-interactive viewers tolerate it).
    pub delta: SimDuration,
    /// Transfer price per gigabyte (Amazon CloudFront 2012: $0.18/GB).
    pub dollars_per_gb: f64,
    /// Committed-rate price per provisioned Mbps-hour (the elastic
    /// pool's standing cost; ~$20/Mbps-month ≈ $0.03/Mbps-hour).
    pub dollars_per_mbps_hour: f64,
    /// Nominal outbound capacity per edge server; the elastic CDN grows
    /// one edge per `edge_unit` of pool share in each region (at least
    /// one per region, at most [`MAX_EDGES_PER_REGION`]).
    pub edge_unit: Bandwidth,
}

impl Default for CdnConfig {
    /// The evaluation configuration: 6000 Mbps pool, Δ = 60 s, $0.18/GB,
    /// $0.03/Mbps-hour provisioned, 1500 Mbps edge units.
    fn default() -> Self {
        CdnConfig {
            outbound_capacity: Bandwidth::from_mbps(6_000),
            delta: SimDuration::from_secs(60),
            dollars_per_gb: 0.18,
            dollars_per_mbps_hour: 0.03,
            edge_unit: Bandwidth::from_mbps(1_500),
        }
    }
}

impl CdnConfig {
    /// An effectively unbounded CDN — used to measure *required* CDN
    /// bandwidth (Fig. 13(a) provisions every request and reports the
    /// peak).
    pub fn unbounded() -> Self {
        CdnConfig {
            outbound_capacity: Bandwidth::from_kbps(u64::MAX / 2),
            ..Default::default()
        }
    }

    /// Same configuration with a different outbound pool.
    pub fn with_outbound(self, outbound: Bandwidth) -> Self {
        CdnConfig {
            outbound_capacity: outbound,
            ..self
        }
    }
}

/// Error returned when the CDN pool cannot admit another stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CdnRejectedError {
    /// Bandwidth that was requested.
    pub requested: Bandwidth,
    /// Bandwidth that remained available.
    pub available: Bandwidth,
}

impl fmt::Display for CdnRejectedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CDN outbound pool exhausted: requested {}, available {}",
            self.requested, self.available
        )
    }
}

impl Error for CdnRejectedError {}

/// Handle to an active CDN-served stream; release it to return the
/// bandwidth to the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CdnLease(u64);

/// The simulated CDN: bounded (but elastic) outbound pool + per-region
/// edge servers.
#[derive(Debug, Clone)]
pub struct Cdn {
    config: CdnConfig,
    outbound: CapacityAccount,
    /// Every edge ever provisioned, indexed directly by
    /// [`ServerId::index`]; retired edges stay as drained tombstones so
    /// the id → server mapping never shifts.
    edges: Vec<EdgeServer>,
    /// Active (non-retired) edge ids per region, in [`Region::ALL`]
    /// order — the O(1) region lookup behind [`Cdn::serve`].
    region_active: Vec<Vec<ServerId>>,
    leases: HashMap<CdnLease, (StreamId, Bandwidth, ServerId)>,
    next_lease: u64,
    meter: TrafficMeter,
    provisioned: ProvisionedMeter,
}

impl Cdn {
    /// Builds a CDN with at least one edge server per region (more when
    /// the initial pool spans several `edge_unit`s).
    pub fn new(config: CdnConfig) -> Self {
        let mut cdn = Cdn {
            config,
            outbound: CapacityAccount::new(config.outbound_capacity),
            edges: Vec::new(),
            region_active: vec![Vec::new(); Region::ALL.len()],
            leases: HashMap::new(),
            next_lease: 0,
            meter: TrafficMeter::new(CostModel::per_gb(config.dollars_per_gb)),
            provisioned: ProvisionedMeter::new(
                config.dollars_per_mbps_hour,
                config.outbound_capacity,
            ),
        };
        cdn.retarget_edges();
        cdn
    }

    /// How many edges each region should hold for `capacity`.
    fn target_edges_per_region(&self, capacity: Bandwidth) -> u64 {
        let unit = self.config.edge_unit.as_kbps().max(1);
        let regions = Region::ALL.len() as u64;
        let per_region_share = capacity.as_kbps() / regions;
        let target = per_region_share / unit + u64::from(per_region_share % unit != 0);
        target.clamp(1, MAX_EDGES_PER_REGION)
    }

    /// Grows/retires edges so each region holds the target count for the
    /// current pool. Growth appends fresh [`ServerId`]s; shrinking
    /// retires only *drained* edges (never the last one of a region), so
    /// every live lease keeps a valid server behind it.
    fn retarget_edges(&mut self) {
        let target = self.target_edges_per_region(self.outbound.total()) as usize;
        for (idx, &region) in Region::ALL.iter().enumerate() {
            while self.region_active[idx].len() < target {
                let id = ServerId::new(self.edges.len() as u32);
                self.edges.push(EdgeServer::new(id, region));
                self.region_active[idx].push(id);
            }
            while self.region_active[idx].len() > target.max(1) {
                // Prefer retiring a drained edge from the back; stop if
                // every candidate still carries sessions.
                let active = &self.region_active[idx];
                let victim = active
                    .iter()
                    .rposition(|&id| self.edges[id.index()].session_count() == 0);
                match victim {
                    Some(pos) => {
                        let id = self.region_active[idx].remove(pos);
                        self.edges[id.index()].retire();
                    }
                    None => break,
                }
            }
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &CdnConfig {
        &self.config
    }

    /// The producer→viewer delivery delay `Δ`.
    pub fn delta(&self) -> SimDuration {
        self.config.delta
    }

    /// The outbound pool account.
    pub fn outbound(&self) -> &CapacityAccount {
        &self.outbound
    }

    /// Whether a stream of rate `bw` could currently be admitted.
    pub fn can_serve(&self, bw: Bandwidth) -> bool {
        self.outbound.can_reserve(bw)
    }

    /// Admits a stream of rate `bw` towards a viewer in `region`, serving
    /// it from that region's edge server.
    ///
    /// # Errors
    ///
    /// Returns [`CdnRejectedError`] if the pool lacks capacity; nothing is
    /// reserved in that case.
    pub fn serve(
        &mut self,
        stream: StreamId,
        bw: Bandwidth,
        region: Region,
    ) -> Result<CdnLease, CdnRejectedError> {
        self.outbound.reserve(bw).map_err(|e| CdnRejectedError {
            requested: e.requested,
            available: e.available,
        })?;
        // Direct region index, then least-loaded active edge (ties break
        // on the lower id, keeping placement deterministic).
        let id = self.region_active[region.index()]
            .iter()
            .copied()
            .min_by_key(|&id| (self.edges[id.index()].load(), id))
            .expect("every region keeps at least one active edge");
        self.edges[id.index()].add_session(stream, bw);
        let lease = CdnLease(self.next_lease);
        self.next_lease += 1;
        self.leases.insert(lease, (stream, bw, id));
        Ok(lease)
    }

    /// Releases a lease, returning its bandwidth to the pool.
    ///
    /// # Panics
    ///
    /// Panics if the lease was already released — double release is an
    /// accounting bug.
    pub fn release(&mut self, lease: CdnLease) {
        let (stream, bw, server) = self
            .leases
            .remove(&lease)
            .expect("release of unknown or already-released CDN lease");
        self.outbound.release(bw);
        // ServerIds are Vec indexes: O(1), no scan over the edge list.
        self.edges[server.index()].remove_session(stream, bw);
    }

    /// Number of active leases.
    pub fn active_leases(&self) -> usize {
        self.leases.len()
    }

    /// Records `bytes` of egress for cost accounting.
    pub fn record_egress(&mut self, bytes: u64) {
        self.meter.record(bytes);
    }

    /// Accumulated egress meter.
    pub fn meter(&self) -> &TrafficMeter {
        &self.meter
    }

    /// Resizes the outbound pool to `new_total` at virtual time `now`:
    /// accrues the provisioned-capacity meter for the segment ending
    /// now, resizes the pool (clamped so live reservations survive), and
    /// grows or retires per-region edges to match. Returns the capacity
    /// actually in effect after clamping.
    pub fn apply_scale(&mut self, new_total: Bandwidth, now: SimTime) -> Bandwidth {
        let clamped = new_total.max(self.outbound.used());
        self.provisioned.accrue(now, clamped);
        self.outbound.resize(clamped);
        self.retarget_edges();
        clamped
    }

    /// The provisioned-capacity meter (Mbps-hours of pool, priced at the
    /// committed rate).
    pub fn provisioned_meter(&self) -> &ProvisionedMeter {
        &self.provisioned
    }

    /// Total CDN dollars up to `now`: egress bytes plus provisioned
    /// Mbps-hours.
    pub fn total_dollars_at(&self, now: SimTime) -> f64 {
        self.meter.dollars() + self.provisioned.dollars_at(now)
    }

    /// Every edge server ever provisioned, including retired tombstones
    /// (drained, `is_retired`), indexed by [`ServerId::index`].
    pub fn edges(&self) -> &[EdgeServer] {
        &self.edges
    }

    /// Number of active (non-retired) edges in `region`.
    pub fn active_edges_in(&self, region: Region) -> usize {
        self.region_active[region.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telecast_media::SiteId;

    fn stream(camera: u16) -> StreamId {
        StreamId::new(SiteId::new(0), camera)
    }

    #[test]
    fn default_config_matches_evaluation() {
        let c = CdnConfig::default();
        assert_eq!(c.outbound_capacity, Bandwidth::from_mbps(6_000));
        assert_eq!(c.delta, SimDuration::from_secs(60));
        assert_eq!(c.dollars_per_gb, 0.18);
        assert_eq!(c.dollars_per_mbps_hour, 0.03);
        assert_eq!(c.edge_unit, Bandwidth::from_mbps(1_500));
        // The default pool still materialises exactly one edge per
        // region, in Region::ALL order — the paper's static layout.
        let cdn = Cdn::new(c);
        assert_eq!(cdn.edges().len(), Region::ALL.len());
        for (i, edge) in cdn.edges().iter().enumerate() {
            assert_eq!(edge.region(), Region::ALL[i]);
            assert!(!edge.is_retired());
        }
    }

    #[test]
    fn serve_reserves_and_release_returns() {
        let mut cdn = Cdn::new(CdnConfig::default());
        let lease = cdn
            .serve(stream(0), Bandwidth::from_mbps(2), Region::Asia)
            .expect("capacity available");
        assert_eq!(cdn.outbound().used(), Bandwidth::from_mbps(2));
        assert_eq!(cdn.active_leases(), 1);
        cdn.release(lease);
        assert_eq!(cdn.outbound().used(), Bandwidth::ZERO);
        assert_eq!(cdn.active_leases(), 0);
    }

    #[test]
    fn pool_exhaustion_rejects() {
        let mut cdn = Cdn::new(CdnConfig::default().with_outbound(Bandwidth::from_mbps(3)));
        cdn.serve(stream(0), Bandwidth::from_mbps(2), Region::Europe)
            .expect("first fits");
        let err = cdn
            .serve(stream(1), Bandwidth::from_mbps(2), Region::Europe)
            .unwrap_err();
        assert_eq!(err.available, Bandwidth::from_mbps(1));
        assert_eq!(cdn.active_leases(), 1);
    }

    #[test]
    fn unbounded_config_admits_thousands() {
        let mut cdn = Cdn::new(CdnConfig::unbounded());
        for i in 0..10_000u16 {
            cdn.serve(stream(i % 8), Bandwidth::from_mbps(2), Region::NorthAmerica)
                .expect("unbounded");
        }
        assert_eq!(cdn.active_leases(), 10_000);
    }

    #[test]
    fn sessions_land_on_regional_edge() {
        let mut cdn = Cdn::new(CdnConfig::default());
        cdn.serve(stream(0), Bandwidth::from_mbps(2), Region::Oceania)
            .expect("fits");
        let edge = cdn
            .edges()
            .iter()
            .find(|e| e.region() == Region::Oceania)
            .unwrap();
        assert_eq!(edge.session_count(), 1);
        assert_eq!(edge.load(), Bandwidth::from_mbps(2));
        for other in cdn.edges().iter().filter(|e| e.region() != Region::Oceania) {
            assert_eq!(other.session_count(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "already-released")]
    fn double_release_panics() {
        let mut cdn = Cdn::new(CdnConfig::default());
        let lease = cdn
            .serve(stream(0), Bandwidth::from_mbps(2), Region::Asia)
            .unwrap();
        cdn.release(lease);
        cdn.release(lease);
    }

    #[test]
    fn apply_scale_grows_and_retires_edges() {
        let config = CdnConfig::default().with_outbound(Bandwidth::from_mbps(6_000));
        let mut cdn = Cdn::new(config);
        assert_eq!(cdn.active_edges_in(Region::Europe), 1);
        // 30 Gbps over 5 regions at 1500 Mbps units: 4 edges per region.
        cdn.apply_scale(Bandwidth::from_mbps(30_000), SimTime::from_secs(10));
        assert_eq!(cdn.outbound().total(), Bandwidth::from_mbps(30_000));
        for &region in &Region::ALL {
            assert_eq!(cdn.active_edges_in(region), 4);
        }
        // Shrink back: drained edges retire, one per region survives.
        cdn.apply_scale(Bandwidth::from_mbps(6_000), SimTime::from_secs(20));
        for &region in &Region::ALL {
            assert_eq!(cdn.active_edges_in(region), 1);
        }
        let retired = cdn.edges().iter().filter(|e| e.is_retired()).count();
        assert_eq!(retired, Region::ALL.len() * 3);
    }

    #[test]
    fn apply_scale_clamps_to_live_reservations_and_keeps_loaded_edges() {
        let mut cdn = Cdn::new(CdnConfig::default().with_outbound(Bandwidth::from_mbps(4)));
        let lease = cdn
            .serve(stream(0), Bandwidth::from_mbps(3), Region::Asia)
            .expect("fits");
        // Shrinking under the reservation clamps to the used amount.
        let actual = cdn.apply_scale(Bandwidth::from_mbps(1), SimTime::from_secs(5));
        assert_eq!(actual, Bandwidth::from_mbps(3));
        assert_eq!(cdn.outbound().available(), Bandwidth::ZERO);
        cdn.release(lease);
        assert_eq!(cdn.outbound().used(), Bandwidth::ZERO);
    }

    #[test]
    fn scale_up_spreads_sessions_across_region_edges() {
        let mut cdn = Cdn::new(CdnConfig::default());
        cdn.apply_scale(Bandwidth::from_mbps(30_000), SimTime::ZERO);
        for i in 0..8u16 {
            cdn.serve(stream(i), Bandwidth::from_mbps(2), Region::Europe)
                .expect("fits");
        }
        // Least-loaded placement: 8 sessions over 4 active edges = 2 each.
        let counts: Vec<usize> = cdn
            .edges()
            .iter()
            .filter(|e| e.region() == Region::Europe && !e.is_retired())
            .map(|e| e.session_count())
            .collect();
        assert_eq!(counts, vec![2, 2, 2, 2]);
    }

    #[test]
    fn provisioned_capacity_is_priced_over_time() {
        // 6000 Mbps for one hour at $0.03/Mbps-hour = $180.
        let cdn = Cdn::new(CdnConfig::default());
        let after_1h = SimTime::from_secs(3_600);
        assert!((cdn.provisioned_meter().dollars_at(after_1h) - 180.0).abs() < 1e-9);
        assert_eq!(cdn.total_dollars_at(after_1h), 180.0);
    }

    #[test]
    fn egress_metering_accumulates_cost() {
        let mut cdn = Cdn::new(CdnConfig::default());
        cdn.record_egress(5_000_000_000); // 5 GB
        assert!((cdn.meter().dollars() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn rejected_error_displays() {
        let err = CdnRejectedError {
            requested: Bandwidth::from_mbps(2),
            available: Bandwidth::ZERO,
        };
        assert!(err.to_string().contains("exhausted"));
    }
}

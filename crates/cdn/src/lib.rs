#![warn(missing_docs)]

//! CDN substrate for the 4D TeleCast reproduction (paper §III-A).
//!
//! 4D TeleCast uses a commercial CDN "as a storage and first layer
//! distribution server": producers upload 3D frames to the distribution
//! storage, core servers replicate them to regional edge servers, and
//! viewers (or the P2P layer's tree roots) pull from the nearest edge. The
//! paper's evaluation models the CDN as a bounded outbound pool
//! (`C_cdn_obw = 6000 Mbps`) with a constant producer→viewer first-hop
//! delay `Δ = 60 s`; this crate implements that plus the storage/edge
//! plumbing and the CloudFront-style transfer cost model ($0.18/GB).
//!
//! On top of the paper's static pool the crate adds an *elastic* mode
//! (see [`autoscale`]): [`Cdn::apply_scale`] resizes the outbound pool
//! at virtual time, growing extra per-region edge servers when capacity
//! expands and retiring drained ones when it shrinks, while a
//! [`ProvisionedMeter`] prices the provisioned Mbps-hours alongside the
//! egress bytes so over-provisioning is visible in dollars.
//!
//! # Example
//!
//! ```
//! use telecast_cdn::{Cdn, CdnConfig};
//! use telecast_net::{Bandwidth, Region};
//! use telecast_media::{SiteId, StreamId};
//!
//! let mut cdn = Cdn::new(CdnConfig::default());
//! let stream = StreamId::new(SiteId::new(0), 3);
//! let lease = cdn.serve(stream, Bandwidth::from_mbps(2), Region::Europe)?;
//! assert_eq!(cdn.outbound().used(), Bandwidth::from_mbps(2));
//! cdn.release(lease);
//! assert!(cdn.outbound().used().is_zero());
//! # Ok::<(), telecast_cdn::CdnRejectedError>(())
//! ```

pub mod autoscale;
pub mod broker;
mod cost;
mod distribution;
mod server;

pub use autoscale::{AutoscalePolicy, Autoscaler, PredictivePolicy, ScaleDecision, ScaleDirection};
pub use broker::{CapacityBroker, TenantHandle, TenantId, TenantQuota};
pub use cost::{CostModel, ProvisionedMeter, TrafficMeter};
pub use distribution::{Distribution, IngestStats};
pub use server::{EdgeServer, ServerId};

use std::error::Error;
use std::fmt;
use telecast_sim::FxHashMap;

use serde::{Deserialize, Serialize};
use telecast_media::StreamId;
use telecast_net::{Bandwidth, CapacityAccount, Region};
use telecast_sim::{SimDuration, SimTime};

/// Hard cap on edge servers per region — a backstop against effectively
/// unbounded pools ([`CdnConfig::unbounded`]) materialising millions of
/// edges.
pub const MAX_EDGES_PER_REGION: u64 = 8;

/// How the CDN's outbound capacity is pooled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PoolScope {
    /// One shared pool for every region — the paper's model and the
    /// default. A stream for any region draws from the same account.
    #[default]
    Global,
    /// One pool per [`Region`], the total split by
    /// [`Region::weight_percent`] (the viewer-population shares). A
    /// stream can only draw from its own region's pool, so a saturated
    /// region rejects even while another has headroom — the regime
    /// regional autoscaling exists to manage.
    PerRegion,
}

/// Splits `total` into per-slot capacities under `scope`: one slot
/// holding everything for [`PoolScope::Global`], one per region
/// (weighted by [`Region::weight_percent`], remainder to the first
/// region) for [`PoolScope::PerRegion`]. The slot capacities always sum
/// exactly to `total`.
pub fn split_capacity(total: Bandwidth, scope: PoolScope) -> Vec<Bandwidth> {
    match scope {
        PoolScope::Global => vec![total],
        PoolScope::PerRegion => {
            let kbps = total.as_kbps();
            let mut slots: Vec<Bandwidth> = Region::ALL
                .iter()
                .map(|r| Bandwidth::from_kbps(kbps / 100 * r.weight_percent()))
                .collect();
            let assigned: u64 = slots.iter().map(|b| b.as_kbps()).sum();
            slots[0] += Bandwidth::from_kbps(kbps - assigned);
            slots
        }
    }
}

/// Configuration of the simulated CDN.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdnConfig {
    /// Total outbound capacity usable by the 3DTI session (`C_cdn_obw`).
    pub outbound_capacity: Bandwidth,
    /// Whether the outbound capacity is one global pool (the paper's
    /// model) or split into per-region pools.
    pub pool_scope: PoolScope,
    /// Producer→viewer delivery delay through the CDN (the paper's `Δ`;
    /// 60 s in the evaluation — the non-interactive viewers tolerate it).
    pub delta: SimDuration,
    /// Transfer price per gigabyte (Amazon CloudFront 2012: $0.18/GB).
    pub dollars_per_gb: f64,
    /// Committed-rate price per provisioned Mbps-hour (the elastic
    /// pool's standing cost; ~$20/Mbps-month ≈ $0.03/Mbps-hour).
    pub dollars_per_mbps_hour: f64,
    /// Nominal outbound capacity per edge server; the elastic CDN grows
    /// one edge per `edge_unit` of pool share in each region (at least
    /// one per region, at most [`MAX_EDGES_PER_REGION`]).
    pub edge_unit: Bandwidth,
}

impl Default for CdnConfig {
    /// The evaluation configuration: 6000 Mbps pool, Δ = 60 s, $0.18/GB,
    /// $0.03/Mbps-hour provisioned, 1500 Mbps edge units.
    fn default() -> Self {
        CdnConfig {
            outbound_capacity: Bandwidth::from_mbps(6_000),
            pool_scope: PoolScope::Global,
            delta: SimDuration::from_secs(60),
            dollars_per_gb: 0.18,
            dollars_per_mbps_hour: 0.03,
            edge_unit: Bandwidth::from_mbps(1_500),
        }
    }
}

impl CdnConfig {
    /// An effectively unbounded CDN — used to measure *required* CDN
    /// bandwidth (Fig. 13(a) provisions every request and reports the
    /// peak).
    pub fn unbounded() -> Self {
        CdnConfig {
            outbound_capacity: Bandwidth::from_kbps(u64::MAX / 2),
            ..Default::default()
        }
    }

    /// Same configuration with a different outbound pool.
    pub fn with_outbound(self, outbound: Bandwidth) -> Self {
        CdnConfig {
            outbound_capacity: outbound,
            ..self
        }
    }

    /// Same configuration with a different pool scope.
    pub fn with_pool_scope(self, scope: PoolScope) -> Self {
        CdnConfig {
            pool_scope: scope,
            ..self
        }
    }
}

/// Error returned when the CDN pool cannot admit another stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CdnRejectedError {
    /// Bandwidth that was requested.
    pub requested: Bandwidth,
    /// Bandwidth that remained available.
    pub available: Bandwidth,
}

impl fmt::Display for CdnRejectedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CDN outbound pool exhausted: requested {}, available {}",
            self.requested, self.available
        )
    }
}

impl Error for CdnRejectedError {}

/// Handle to an active CDN-served stream; release it to return the
/// bandwidth to the pool. Ordered by issue sequence so holders of many
/// leases (the [`broker`]) can walk them deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CdnLease(u64);

/// The simulated CDN: bounded (but elastic) outbound pool(s) + per-region
/// edge servers.
#[derive(Debug, Clone)]
pub struct Cdn {
    config: CdnConfig,
    /// The outbound capacity accounts — one slot under
    /// [`PoolScope::Global`], one per region (in [`Region::ALL`] order)
    /// under [`PoolScope::PerRegion`].
    pools: Vec<CapacityAccount>,
    /// Every edge ever provisioned, indexed directly by
    /// [`ServerId::index`]; retired edges stay as drained tombstones so
    /// the id → server mapping never shifts.
    edges: Vec<EdgeServer>,
    /// Active (non-retired) edge ids per region, in [`Region::ALL`]
    /// order — the O(1) region lookup behind [`Cdn::serve`].
    region_active: Vec<Vec<ServerId>>,
    leases: FxHashMap<CdnLease, (StreamId, Bandwidth, ServerId, usize)>,
    next_lease: u64,
    meter: TrafficMeter,
    /// Provisioned-capacity meters, one per pool slot.
    provisioned: Vec<ProvisionedMeter>,
}

impl Cdn {
    /// Builds a CDN with at least one edge server per region (more when
    /// the initial pool spans several `edge_unit`s).
    pub fn new(config: CdnConfig) -> Self {
        let slots = split_capacity(config.outbound_capacity, config.pool_scope);
        let mut cdn = Cdn {
            config,
            pools: slots.iter().map(|&cap| CapacityAccount::new(cap)).collect(),
            edges: Vec::new(),
            region_active: vec![Vec::new(); Region::ALL.len()],
            leases: FxHashMap::default(),
            next_lease: 0,
            meter: TrafficMeter::new(CostModel::per_gb(config.dollars_per_gb)),
            provisioned: slots
                .iter()
                .map(|&cap| ProvisionedMeter::new(config.dollars_per_mbps_hour, cap))
                .collect(),
        };
        cdn.retarget_edges();
        cdn
    }

    /// Number of pool slots: 1 under [`PoolScope::Global`],
    /// [`Region::ALL`]`.len()` under [`PoolScope::PerRegion`].
    pub fn pool_slots(&self) -> usize {
        self.pools.len()
    }

    /// The pool slot serving `region`.
    pub fn slot_of(&self, region: Region) -> usize {
        match self.config.pool_scope {
            PoolScope::Global => 0,
            PoolScope::PerRegion => region.index(),
        }
    }

    /// The capacity account of one pool slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.pool_slots()`.
    pub fn pool(&self, slot: usize) -> &CapacityAccount {
        &self.pools[slot]
    }

    /// The region a slot serves, or `None` for the global slot.
    pub fn slot_region(&self, slot: usize) -> Option<Region> {
        match self.config.pool_scope {
            PoolScope::Global => None,
            PoolScope::PerRegion => Some(Region::ALL[slot]),
        }
    }

    /// How many edges `region` should hold when its pool share is
    /// `capacity`.
    fn target_edges_for_share(&self, capacity: Bandwidth) -> u64 {
        let unit = self.config.edge_unit.as_kbps().max(1);
        let share = capacity.as_kbps();
        let target = share / unit + u64::from(share % unit != 0);
        target.clamp(1, MAX_EDGES_PER_REGION)
    }

    /// The pool share backing `region`'s edges: an even split of the
    /// global pool, or the region's own pool under per-region scope.
    fn region_share(&self, region: Region) -> Bandwidth {
        match self.config.pool_scope {
            PoolScope::Global => {
                Bandwidth::from_kbps(self.pools[0].total().as_kbps() / Region::ALL.len() as u64)
            }
            PoolScope::PerRegion => self.pools[region.index()].total(),
        }
    }

    /// Grows/retires edges so each region holds the target count for the
    /// current pool(s). Growth appends fresh [`ServerId`]s; shrinking
    /// retires only *drained* edges (never the last one of a region), so
    /// every live lease keeps a valid server behind it.
    fn retarget_edges(&mut self) {
        for (idx, &region) in Region::ALL.iter().enumerate() {
            let target = self.target_edges_for_share(self.region_share(region)) as usize;
            while self.region_active[idx].len() < target {
                let id = ServerId::new(self.edges.len() as u32);
                self.edges.push(EdgeServer::new(id, region));
                self.region_active[idx].push(id);
            }
            while self.region_active[idx].len() > target.max(1) {
                // Prefer retiring a drained edge from the back; stop if
                // every candidate still carries sessions.
                let active = &self.region_active[idx];
                let victim = active
                    .iter()
                    .rposition(|&id| self.edges[id.index()].session_count() == 0);
                match victim {
                    Some(pos) => {
                        let id = self.region_active[idx].remove(pos);
                        self.edges[id.index()].retire();
                    }
                    None => break,
                }
            }
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &CdnConfig {
        &self.config
    }

    /// The producer→viewer delivery delay `Δ`.
    pub fn delta(&self) -> SimDuration {
        self.config.delta
    }

    /// The outbound pool viewed as one aggregate account (total and used
    /// summed over every slot). Under [`PoolScope::Global`] this *is*
    /// the pool; under [`PoolScope::PerRegion`] it is a read-only
    /// summary — admission is decided per region (see
    /// [`Cdn::can_serve_in`]), so aggregate headroom can overstate what
    /// any single stream can draw.
    pub fn outbound(&self) -> CapacityAccount {
        let total = self.pools.iter().map(|p| p.total()).sum();
        let used = self.pools.iter().map(|p| p.used()).sum();
        let mut agg = CapacityAccount::new(total);
        agg.reserve(used)
            .expect("per-slot used never exceeds total");
        agg
    }

    /// Whether a stream of rate `bw` could currently be admitted in
    /// *some* region (the single pool under [`PoolScope::Global`]).
    pub fn can_serve(&self, bw: Bandwidth) -> bool {
        self.pools.iter().any(|p| p.can_reserve(bw))
    }

    /// Whether a stream of rate `bw` could currently be admitted for a
    /// viewer in `region` — the region-scoped admission check.
    pub fn can_serve_in(&self, bw: Bandwidth, region: Region) -> bool {
        self.pools[self.slot_of(region)].can_reserve(bw)
    }

    /// Admits a stream of rate `bw` towards a viewer in `region`, serving
    /// it from that region's edge server. Under
    /// [`PoolScope::PerRegion`] the reservation comes from the region's
    /// own pool; a saturated region rejects even while others have
    /// headroom.
    ///
    /// # Errors
    ///
    /// Returns [`CdnRejectedError`] if the pool lacks capacity; nothing is
    /// reserved in that case.
    pub fn serve(
        &mut self,
        stream: StreamId,
        bw: Bandwidth,
        region: Region,
    ) -> Result<CdnLease, CdnRejectedError> {
        let slot = self.slot_of(region);
        self.pools[slot].reserve(bw).map_err(|e| CdnRejectedError {
            requested: e.requested,
            available: e.available,
        })?;
        // Direct region index, then least-loaded active edge (ties break
        // on the lower id, keeping placement deterministic).
        let id = self.region_active[region.index()]
            .iter()
            .copied()
            .min_by_key(|&id| (self.edges[id.index()].load(), id))
            .expect("every region keeps at least one active edge");
        self.edges[id.index()].add_session(stream, bw);
        let lease = CdnLease(self.next_lease);
        self.next_lease += 1;
        self.leases.insert(lease, (stream, bw, id, slot));
        Ok(lease)
    }

    /// Releases a lease, returning its bandwidth to the pool.
    ///
    /// # Panics
    ///
    /// Panics if the lease was already released — double release is an
    /// accounting bug.
    pub fn release(&mut self, lease: CdnLease) {
        let (stream, bw, server, slot) = self
            .leases
            .remove(&lease)
            .expect("release of unknown or already-released CDN lease");
        self.pools[slot].release(bw);
        // ServerIds are Vec indexes: O(1), no scan over the edge list.
        self.edges[server.index()].remove_session(stream, bw);
    }

    /// Number of active leases.
    pub fn active_leases(&self) -> usize {
        self.leases.len()
    }

    /// Records `bytes` of egress for cost accounting.
    pub fn record_egress(&mut self, bytes: u64) {
        self.meter.record(bytes);
    }

    /// Accumulated egress meter.
    pub fn meter(&self) -> &TrafficMeter {
        &self.meter
    }

    /// Resizes the first pool slot to `new_total` at virtual time `now`
    /// — the whole pool under [`PoolScope::Global`] (pre-region-split
    /// callers keep their semantics). Region-scoped controllers use
    /// [`Cdn::apply_scale_slot`]. Returns the capacity actually in
    /// effect after clamping.
    pub fn apply_scale(&mut self, new_total: Bandwidth, now: SimTime) -> Bandwidth {
        self.apply_scale_slot(0, new_total, now)
    }

    /// Resizes one pool slot to `new_total` at virtual time `now`:
    /// accrues that slot's provisioned-capacity meter for the segment
    /// ending now, resizes the slot's account (clamped so live
    /// reservations survive), and grows or retires per-region edges to
    /// match. Returns the slot capacity actually in effect after
    /// clamping.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.pool_slots()`.
    pub fn apply_scale_slot(
        &mut self,
        slot: usize,
        new_total: Bandwidth,
        now: SimTime,
    ) -> Bandwidth {
        let clamped = new_total.max(self.pools[slot].used());
        self.provisioned[slot].accrue(now, clamped);
        self.pools[slot].resize(clamped);
        self.retarget_edges();
        clamped
    }

    /// Resizes the pool slot serving `region` (see
    /// [`Cdn::apply_scale_slot`]).
    pub fn apply_scale_region(
        &mut self,
        region: Region,
        new_total: Bandwidth,
        now: SimTime,
    ) -> Bandwidth {
        self.apply_scale_slot(self.slot_of(region), new_total, now)
    }

    /// The provisioned-capacity meter of the first pool slot (the whole
    /// pool under [`PoolScope::Global`]); per-slot meters are reached
    /// through [`Cdn::provisioned_meter_of`], the aggregate bill through
    /// [`Cdn::provisioned_mbps_hours_at`]/[`Cdn::provisioned_dollars_at`].
    pub fn provisioned_meter(&self) -> &ProvisionedMeter {
        &self.provisioned[0]
    }

    /// The provisioned-capacity meter of one pool slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.pool_slots()`.
    pub fn provisioned_meter_of(&self, slot: usize) -> &ProvisionedMeter {
        &self.provisioned[slot]
    }

    /// Provisioned Mbps-hours accrued up to `now`, summed over every
    /// pool slot.
    pub fn provisioned_mbps_hours_at(&self, now: SimTime) -> f64 {
        self.provisioned.iter().map(|m| m.mbps_hours_at(now)).sum()
    }

    /// Provisioned-capacity dollars accrued up to `now`, summed over
    /// every pool slot.
    pub fn provisioned_dollars_at(&self, now: SimTime) -> f64 {
        self.provisioned.iter().map(|m| m.dollars_at(now)).sum()
    }

    /// Total CDN dollars up to `now`: egress bytes plus provisioned
    /// Mbps-hours across every pool slot.
    pub fn total_dollars_at(&self, now: SimTime) -> f64 {
        self.meter.dollars() + self.provisioned_dollars_at(now)
    }

    /// Every edge server ever provisioned, including retired tombstones
    /// (drained, `is_retired`), indexed by [`ServerId::index`].
    pub fn edges(&self) -> &[EdgeServer] {
        &self.edges
    }

    /// Number of active (non-retired) edges in `region`.
    pub fn active_edges_in(&self, region: Region) -> usize {
        self.region_active[region.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telecast_media::SiteId;

    fn stream(camera: u16) -> StreamId {
        StreamId::new(SiteId::new(0), camera)
    }

    #[test]
    fn default_config_matches_evaluation() {
        let c = CdnConfig::default();
        assert_eq!(c.outbound_capacity, Bandwidth::from_mbps(6_000));
        assert_eq!(c.delta, SimDuration::from_secs(60));
        assert_eq!(c.dollars_per_gb, 0.18);
        assert_eq!(c.dollars_per_mbps_hour, 0.03);
        assert_eq!(c.edge_unit, Bandwidth::from_mbps(1_500));
        // The default pool still materialises exactly one edge per
        // region, in Region::ALL order — the paper's static layout.
        let cdn = Cdn::new(c);
        assert_eq!(cdn.edges().len(), Region::ALL.len());
        for (i, edge) in cdn.edges().iter().enumerate() {
            assert_eq!(edge.region(), Region::ALL[i]);
            assert!(!edge.is_retired());
        }
    }

    #[test]
    fn serve_reserves_and_release_returns() {
        let mut cdn = Cdn::new(CdnConfig::default());
        let lease = cdn
            .serve(stream(0), Bandwidth::from_mbps(2), Region::Asia)
            .expect("capacity available");
        assert_eq!(cdn.outbound().used(), Bandwidth::from_mbps(2));
        assert_eq!(cdn.active_leases(), 1);
        cdn.release(lease);
        assert_eq!(cdn.outbound().used(), Bandwidth::ZERO);
        assert_eq!(cdn.active_leases(), 0);
    }

    #[test]
    fn pool_exhaustion_rejects() {
        let mut cdn = Cdn::new(CdnConfig::default().with_outbound(Bandwidth::from_mbps(3)));
        cdn.serve(stream(0), Bandwidth::from_mbps(2), Region::Europe)
            .expect("first fits");
        let err = cdn
            .serve(stream(1), Bandwidth::from_mbps(2), Region::Europe)
            .unwrap_err();
        assert_eq!(err.available, Bandwidth::from_mbps(1));
        assert_eq!(cdn.active_leases(), 1);
    }

    #[test]
    fn unbounded_config_admits_thousands() {
        let mut cdn = Cdn::new(CdnConfig::unbounded());
        for i in 0..10_000u16 {
            cdn.serve(stream(i % 8), Bandwidth::from_mbps(2), Region::NorthAmerica)
                .expect("unbounded");
        }
        assert_eq!(cdn.active_leases(), 10_000);
    }

    #[test]
    fn sessions_land_on_regional_edge() {
        let mut cdn = Cdn::new(CdnConfig::default());
        cdn.serve(stream(0), Bandwidth::from_mbps(2), Region::Oceania)
            .expect("fits");
        let edge = cdn
            .edges()
            .iter()
            .find(|e| e.region() == Region::Oceania)
            .unwrap();
        assert_eq!(edge.session_count(), 1);
        assert_eq!(edge.load(), Bandwidth::from_mbps(2));
        for other in cdn.edges().iter().filter(|e| e.region() != Region::Oceania) {
            assert_eq!(other.session_count(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "already-released")]
    fn double_release_panics() {
        let mut cdn = Cdn::new(CdnConfig::default());
        let lease = cdn
            .serve(stream(0), Bandwidth::from_mbps(2), Region::Asia)
            .unwrap();
        cdn.release(lease);
        cdn.release(lease);
    }

    #[test]
    fn apply_scale_grows_and_retires_edges() {
        let config = CdnConfig::default().with_outbound(Bandwidth::from_mbps(6_000));
        let mut cdn = Cdn::new(config);
        assert_eq!(cdn.active_edges_in(Region::Europe), 1);
        // 30 Gbps over 5 regions at 1500 Mbps units: 4 edges per region.
        cdn.apply_scale(Bandwidth::from_mbps(30_000), SimTime::from_secs(10));
        assert_eq!(cdn.outbound().total(), Bandwidth::from_mbps(30_000));
        for &region in &Region::ALL {
            assert_eq!(cdn.active_edges_in(region), 4);
        }
        // Shrink back: drained edges retire, one per region survives.
        cdn.apply_scale(Bandwidth::from_mbps(6_000), SimTime::from_secs(20));
        for &region in &Region::ALL {
            assert_eq!(cdn.active_edges_in(region), 1);
        }
        let retired = cdn.edges().iter().filter(|e| e.is_retired()).count();
        assert_eq!(retired, Region::ALL.len() * 3);
    }

    #[test]
    fn apply_scale_clamps_to_live_reservations_and_keeps_loaded_edges() {
        let mut cdn = Cdn::new(CdnConfig::default().with_outbound(Bandwidth::from_mbps(4)));
        let lease = cdn
            .serve(stream(0), Bandwidth::from_mbps(3), Region::Asia)
            .expect("fits");
        // Shrinking under the reservation clamps to the used amount.
        let actual = cdn.apply_scale(Bandwidth::from_mbps(1), SimTime::from_secs(5));
        assert_eq!(actual, Bandwidth::from_mbps(3));
        assert_eq!(cdn.outbound().available(), Bandwidth::ZERO);
        cdn.release(lease);
        assert_eq!(cdn.outbound().used(), Bandwidth::ZERO);
    }

    #[test]
    fn scale_up_spreads_sessions_across_region_edges() {
        let mut cdn = Cdn::new(CdnConfig::default());
        cdn.apply_scale(Bandwidth::from_mbps(30_000), SimTime::ZERO);
        for i in 0..8u16 {
            cdn.serve(stream(i), Bandwidth::from_mbps(2), Region::Europe)
                .expect("fits");
        }
        // Least-loaded placement: 8 sessions over 4 active edges = 2 each.
        let counts: Vec<usize> = cdn
            .edges()
            .iter()
            .filter(|e| e.region() == Region::Europe && !e.is_retired())
            .map(|e| e.session_count())
            .collect();
        assert_eq!(counts, vec![2, 2, 2, 2]);
    }

    #[test]
    fn provisioned_capacity_is_priced_over_time() {
        // 6000 Mbps for one hour at $0.03/Mbps-hour = $180.
        let cdn = Cdn::new(CdnConfig::default());
        let after_1h = SimTime::from_secs(3_600);
        assert!((cdn.provisioned_meter().dollars_at(after_1h) - 180.0).abs() < 1e-9);
        assert_eq!(cdn.total_dollars_at(after_1h), 180.0);
    }

    #[test]
    fn egress_metering_accumulates_cost() {
        let mut cdn = Cdn::new(CdnConfig::default());
        cdn.record_egress(5_000_000_000); // 5 GB
        assert!((cdn.meter().dollars() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn split_capacity_conserves_the_total() {
        for mbps in [1, 7, 1_000, 6_000, 48_000] {
            let total = Bandwidth::from_mbps(mbps);
            for scope in [PoolScope::Global, PoolScope::PerRegion] {
                let slots = split_capacity(total, scope);
                let sum: u64 = slots.iter().map(|b| b.as_kbps()).sum();
                assert_eq!(sum, total.as_kbps(), "{scope:?} split lost capacity");
            }
        }
        let slots = split_capacity(Bandwidth::from_mbps(1_000), PoolScope::PerRegion);
        assert_eq!(slots.len(), Region::ALL.len());
        assert_eq!(slots[Region::Europe.index()], Bandwidth::from_mbps(300));
        assert_eq!(slots[Region::Oceania.index()], Bandwidth::from_mbps(50));
    }

    #[test]
    fn per_region_pools_reject_locally_while_others_have_headroom() {
        let config = CdnConfig::default()
            .with_outbound(Bandwidth::from_mbps(1_000))
            .with_pool_scope(PoolScope::PerRegion);
        let mut cdn = Cdn::new(config);
        assert_eq!(cdn.pool_slots(), Region::ALL.len());
        // Oceania holds 5% = 50 Mbps; exhaust it.
        for i in 0..25u16 {
            cdn.serve(stream(i % 8), Bandwidth::from_mbps(2), Region::Oceania)
                .expect("inside the regional share");
        }
        assert!(!cdn.can_serve_in(Bandwidth::from_mbps(2), Region::Oceania));
        let err = cdn
            .serve(stream(0), Bandwidth::from_mbps(2), Region::Oceania)
            .unwrap_err();
        assert_eq!(err.available, Bandwidth::ZERO);
        // Europe (300 Mbps) is untouched: regional isolation, and the
        // aggregate view still reports the global headroom.
        assert!(cdn.can_serve_in(Bandwidth::from_mbps(2), Region::Europe));
        cdn.serve(stream(0), Bandwidth::from_mbps(2), Region::Europe)
            .expect("other regions unaffected");
        assert_eq!(cdn.outbound().used(), Bandwidth::from_mbps(52));
        assert_eq!(cdn.outbound().total(), Bandwidth::from_mbps(1_000));
    }

    #[test]
    fn per_region_release_returns_to_the_owning_pool() {
        let config = CdnConfig::default()
            .with_outbound(Bandwidth::from_mbps(1_000))
            .with_pool_scope(PoolScope::PerRegion);
        let mut cdn = Cdn::new(config);
        let lease = cdn
            .serve(stream(0), Bandwidth::from_mbps(4), Region::Asia)
            .expect("fits");
        assert_eq!(
            cdn.pool(cdn.slot_of(Region::Asia)).used(),
            Bandwidth::from_mbps(4)
        );
        cdn.release(lease);
        assert!(cdn.pool(cdn.slot_of(Region::Asia)).used().is_zero());
    }

    #[test]
    fn apply_scale_slot_is_region_scoped() {
        let config = CdnConfig::default()
            .with_outbound(Bandwidth::from_mbps(7_500))
            .with_pool_scope(PoolScope::PerRegion);
        let mut cdn = Cdn::new(config);
        let eu = cdn.slot_of(Region::Europe);
        let asia = cdn.slot_of(Region::Asia);
        let asia_before = cdn.pool(asia).total();
        let eu_edges_before = cdn.active_edges_in(Region::Europe);
        // Grow Europe alone: 2250 → 6000 Mbps (4 × 1500 Mbps units).
        let actual = cdn.apply_scale_region(
            Region::Europe,
            Bandwidth::from_mbps(6_000),
            SimTime::from_secs(30),
        );
        assert_eq!(actual, Bandwidth::from_mbps(6_000));
        assert_eq!(cdn.pool(eu).total(), Bandwidth::from_mbps(6_000));
        assert_eq!(
            cdn.pool(asia).total(),
            asia_before,
            "other region's pool moved"
        );
        assert_eq!(cdn.active_edges_in(Region::Europe), 4);
        assert!(cdn.active_edges_in(Region::Europe) > eu_edges_before);
        // Only Europe's meter switched rate: one hour later the Asia
        // meter still bills its original share.
        let hour = SimTime::from_secs(3_600 + 30);
        let asia_hours = cdn.provisioned_meter_of(asia).mbps_hours_at(hour);
        assert!(
            (asia_hours - asia_before.as_mbps_f64() * (3_600.0 + 30.0) / 3_600.0).abs() < 1e-6,
            "asia meter drifted: {asia_hours}"
        );
        // The aggregate bill sums every slot.
        let sum: f64 = (0..cdn.pool_slots())
            .map(|s| cdn.provisioned_meter_of(s).mbps_hours_at(hour))
            .sum();
        assert!((cdn.provisioned_mbps_hours_at(hour) - sum).abs() < 1e-9);
    }

    #[test]
    fn global_scope_keeps_single_slot_semantics() {
        let cdn = Cdn::new(CdnConfig::default());
        assert_eq!(cdn.pool_slots(), 1);
        for &region in &Region::ALL {
            assert_eq!(cdn.slot_of(region), 0);
        }
        assert_eq!(cdn.slot_region(0), None);
        assert_eq!(cdn.pool(0).total(), cdn.outbound().total());
    }

    #[test]
    fn rejected_error_displays() {
        let err = CdnRejectedError {
            requested: Bandwidth::from_mbps(2),
            available: Bandwidth::ZERO,
        };
        assert!(err.to_string().contains("exhausted"));
    }
}

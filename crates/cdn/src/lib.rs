#![warn(missing_docs)]

//! CDN substrate for the 4D TeleCast reproduction (paper §III-A).
//!
//! 4D TeleCast uses a commercial CDN "as a storage and first layer
//! distribution server": producers upload 3D frames to the distribution
//! storage, core servers replicate them to regional edge servers, and
//! viewers (or the P2P layer's tree roots) pull from the nearest edge. The
//! paper's evaluation models the CDN as a bounded outbound pool
//! (`C_cdn_obw = 6000 Mbps`) with a constant producer→viewer first-hop
//! delay `Δ = 60 s`; this crate implements that plus the storage/edge
//! plumbing and the CloudFront-style transfer cost model ($0.18/GB).
//!
//! # Example
//!
//! ```
//! use telecast_cdn::{Cdn, CdnConfig};
//! use telecast_net::{Bandwidth, Region};
//! use telecast_media::{SiteId, StreamId};
//!
//! let mut cdn = Cdn::new(CdnConfig::default());
//! let stream = StreamId::new(SiteId::new(0), 3);
//! let lease = cdn.serve(stream, Bandwidth::from_mbps(2), Region::Europe)?;
//! assert_eq!(cdn.outbound().used(), Bandwidth::from_mbps(2));
//! cdn.release(lease);
//! assert!(cdn.outbound().used().is_zero());
//! # Ok::<(), telecast_cdn::CdnRejectedError>(())
//! ```

mod cost;
mod distribution;
mod server;

pub use cost::{CostModel, TrafficMeter};
pub use distribution::{Distribution, IngestStats};
pub use server::{EdgeServer, ServerId};

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};
use telecast_media::StreamId;
use telecast_net::{Bandwidth, CapacityAccount, Region};
use telecast_sim::SimDuration;

/// Configuration of the simulated CDN.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdnConfig {
    /// Total outbound capacity usable by the 3DTI session (`C_cdn_obw`).
    pub outbound_capacity: Bandwidth,
    /// Producer→viewer delivery delay through the CDN (the paper's `Δ`;
    /// 60 s in the evaluation — the non-interactive viewers tolerate it).
    pub delta: SimDuration,
    /// Transfer price per gigabyte (Amazon CloudFront 2012: $0.18/GB).
    pub dollars_per_gb: f64,
}

impl Default for CdnConfig {
    /// The evaluation configuration: 6000 Mbps pool, Δ = 60 s, $0.18/GB.
    fn default() -> Self {
        CdnConfig {
            outbound_capacity: Bandwidth::from_mbps(6_000),
            delta: SimDuration::from_secs(60),
            dollars_per_gb: 0.18,
        }
    }
}

impl CdnConfig {
    /// An effectively unbounded CDN — used to measure *required* CDN
    /// bandwidth (Fig. 13(a) provisions every request and reports the
    /// peak).
    pub fn unbounded() -> Self {
        CdnConfig {
            outbound_capacity: Bandwidth::from_kbps(u64::MAX / 2),
            ..Default::default()
        }
    }

    /// Same configuration with a different outbound pool.
    pub fn with_outbound(self, outbound: Bandwidth) -> Self {
        CdnConfig {
            outbound_capacity: outbound,
            ..self
        }
    }
}

/// Error returned when the CDN pool cannot admit another stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CdnRejectedError {
    /// Bandwidth that was requested.
    pub requested: Bandwidth,
    /// Bandwidth that remained available.
    pub available: Bandwidth,
}

impl fmt::Display for CdnRejectedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CDN outbound pool exhausted: requested {}, available {}",
            self.requested, self.available
        )
    }
}

impl Error for CdnRejectedError {}

/// Handle to an active CDN-served stream; release it to return the
/// bandwidth to the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CdnLease(u64);

/// The simulated CDN: bounded outbound pool + per-region edge servers.
#[derive(Debug, Clone)]
pub struct Cdn {
    config: CdnConfig,
    outbound: CapacityAccount,
    edges: Vec<EdgeServer>,
    leases: HashMap<CdnLease, (StreamId, Bandwidth, ServerId)>,
    next_lease: u64,
    meter: TrafficMeter,
}

impl Cdn {
    /// Builds a CDN with one edge server per region.
    pub fn new(config: CdnConfig) -> Self {
        let edges = Region::ALL
            .iter()
            .enumerate()
            .map(|(i, &region)| EdgeServer::new(ServerId::new(i as u32), region))
            .collect();
        Cdn {
            config,
            outbound: CapacityAccount::new(config.outbound_capacity),
            edges,
            leases: HashMap::new(),
            next_lease: 0,
            meter: TrafficMeter::new(CostModel::per_gb(config.dollars_per_gb)),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &CdnConfig {
        &self.config
    }

    /// The producer→viewer delivery delay `Δ`.
    pub fn delta(&self) -> SimDuration {
        self.config.delta
    }

    /// The outbound pool account.
    pub fn outbound(&self) -> &CapacityAccount {
        &self.outbound
    }

    /// Whether a stream of rate `bw` could currently be admitted.
    pub fn can_serve(&self, bw: Bandwidth) -> bool {
        self.outbound.can_reserve(bw)
    }

    /// Admits a stream of rate `bw` towards a viewer in `region`, serving
    /// it from that region's edge server.
    ///
    /// # Errors
    ///
    /// Returns [`CdnRejectedError`] if the pool lacks capacity; nothing is
    /// reserved in that case.
    pub fn serve(
        &mut self,
        stream: StreamId,
        bw: Bandwidth,
        region: Region,
    ) -> Result<CdnLease, CdnRejectedError> {
        self.outbound.reserve(bw).map_err(|e| CdnRejectedError {
            requested: e.requested,
            available: e.available,
        })?;
        let edge = self
            .edges
            .iter_mut()
            .find(|e| e.region() == region)
            .expect("an edge exists per region");
        edge.add_session(stream, bw);
        let lease = CdnLease(self.next_lease);
        self.next_lease += 1;
        self.leases.insert(lease, (stream, bw, edge.id()));
        Ok(lease)
    }

    /// Releases a lease, returning its bandwidth to the pool.
    ///
    /// # Panics
    ///
    /// Panics if the lease was already released — double release is an
    /// accounting bug.
    pub fn release(&mut self, lease: CdnLease) {
        let (stream, bw, server) = self
            .leases
            .remove(&lease)
            .expect("release of unknown or already-released CDN lease");
        self.outbound.release(bw);
        let edge = self
            .edges
            .iter_mut()
            .find(|e| e.id() == server)
            .expect("edge exists");
        edge.remove_session(stream, bw);
    }

    /// Number of active leases.
    pub fn active_leases(&self) -> usize {
        self.leases.len()
    }

    /// Records `bytes` of egress for cost accounting.
    pub fn record_egress(&mut self, bytes: u64) {
        self.meter.record(bytes);
    }

    /// Accumulated egress meter.
    pub fn meter(&self) -> &TrafficMeter {
        &self.meter
    }

    /// The per-region edge servers.
    pub fn edges(&self) -> &[EdgeServer] {
        &self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telecast_media::SiteId;

    fn stream(camera: u16) -> StreamId {
        StreamId::new(SiteId::new(0), camera)
    }

    #[test]
    fn default_config_matches_evaluation() {
        let c = CdnConfig::default();
        assert_eq!(c.outbound_capacity, Bandwidth::from_mbps(6_000));
        assert_eq!(c.delta, SimDuration::from_secs(60));
        assert_eq!(c.dollars_per_gb, 0.18);
    }

    #[test]
    fn serve_reserves_and_release_returns() {
        let mut cdn = Cdn::new(CdnConfig::default());
        let lease = cdn
            .serve(stream(0), Bandwidth::from_mbps(2), Region::Asia)
            .expect("capacity available");
        assert_eq!(cdn.outbound().used(), Bandwidth::from_mbps(2));
        assert_eq!(cdn.active_leases(), 1);
        cdn.release(lease);
        assert_eq!(cdn.outbound().used(), Bandwidth::ZERO);
        assert_eq!(cdn.active_leases(), 0);
    }

    #[test]
    fn pool_exhaustion_rejects() {
        let mut cdn = Cdn::new(CdnConfig::default().with_outbound(Bandwidth::from_mbps(3)));
        cdn.serve(stream(0), Bandwidth::from_mbps(2), Region::Europe)
            .expect("first fits");
        let err = cdn
            .serve(stream(1), Bandwidth::from_mbps(2), Region::Europe)
            .unwrap_err();
        assert_eq!(err.available, Bandwidth::from_mbps(1));
        assert_eq!(cdn.active_leases(), 1);
    }

    #[test]
    fn unbounded_config_admits_thousands() {
        let mut cdn = Cdn::new(CdnConfig::unbounded());
        for i in 0..10_000u16 {
            cdn.serve(stream(i % 8), Bandwidth::from_mbps(2), Region::NorthAmerica)
                .expect("unbounded");
        }
        assert_eq!(cdn.active_leases(), 10_000);
    }

    #[test]
    fn sessions_land_on_regional_edge() {
        let mut cdn = Cdn::new(CdnConfig::default());
        cdn.serve(stream(0), Bandwidth::from_mbps(2), Region::Oceania)
            .expect("fits");
        let edge = cdn
            .edges()
            .iter()
            .find(|e| e.region() == Region::Oceania)
            .unwrap();
        assert_eq!(edge.session_count(), 1);
        assert_eq!(edge.load(), Bandwidth::from_mbps(2));
        for other in cdn.edges().iter().filter(|e| e.region() != Region::Oceania) {
            assert_eq!(other.session_count(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "already-released")]
    fn double_release_panics() {
        let mut cdn = Cdn::new(CdnConfig::default());
        let lease = cdn
            .serve(stream(0), Bandwidth::from_mbps(2), Region::Asia)
            .unwrap();
        cdn.release(lease);
        cdn.release(lease);
    }

    #[test]
    fn egress_metering_accumulates_cost() {
        let mut cdn = Cdn::new(CdnConfig::default());
        cdn.record_egress(5_000_000_000); // 5 GB
        assert!((cdn.meter().dollars() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn rejected_error_displays() {
        let err = CdnRejectedError {
            requested: Bandwidth::from_mbps(2),
            available: Bandwidth::ZERO,
        };
        assert!(err.to_string().contains("exhausted"));
    }
}

//! Elastic CDN pool autoscaling.
//!
//! The paper provisions the CDN as a *static* bounded outbound pool
//! (`C_cdn_obw = 6000 Mbps`). Under time-varying churn — flash-crowd
//! kickoffs, diurnal audience waves — a static pool is either saturated
//! at the peak (rejecting joins) or bleeding money at the trough
//! (provisioned Mbps-hours nobody uses). This module adds the control
//! side of an elastic pool:
//!
//! * [`AutoscalePolicy`] — a target-utilisation band with min/max
//!   capacity bounds, a capacity step per action, and independent
//!   scale-up/scale-down cooldowns;
//! * [`Autoscaler`] — the stateful controller: it evaluates the policy
//!   against the pool at each tick and emits [`ScaleDecision`]s, which
//!   the owner applies with [`crate::Cdn::apply_scale`].
//!
//! The controller is deliberately deterministic and side-effect free —
//! decisions are pure functions of `(policy, pool state, last action
//! times)`, so two sessions with identical event timelines autoscale
//! identically.

use serde::{Deserialize, Serialize};
use telecast_net::{Bandwidth, CapacityAccount};
use telecast_sim::{SimDuration, SimTime};

use crate::{split_capacity, PoolScope};

/// Direction of one scaling action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleDirection {
    /// Capacity was added to the pool.
    Up,
    /// Capacity was removed from the pool.
    Down,
}

/// One scaling action decided by the [`Autoscaler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaleDecision {
    /// Whether this grows or shrinks the pool.
    pub direction: ScaleDirection,
    /// Pool capacity before the action.
    pub from: Bandwidth,
    /// Pool capacity after the action.
    pub to: Bandwidth,
}

/// The target-utilisation autoscaling policy.
///
/// The pool is resized to keep utilisation inside
/// `[low_watermark, high_watermark]`: a tick observing utilisation above
/// the high watermark scales up by [`AutoscalePolicy::step`] (clamped to
/// `max`), one observing utilisation below the low watermark scales down
/// by the same step (clamped to `min` and to the currently reserved
/// amount). Cooldowns rate-limit each direction independently so the
/// controller neither thrashes on a spike nor collapses the pool during
/// a short lull.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscalePolicy {
    /// Period between autoscale evaluations (the engine tick).
    pub period: SimDuration,
    /// Scale down when utilisation falls below this fraction.
    pub low_watermark: f64,
    /// Scale up when utilisation rises above this fraction.
    pub high_watermark: f64,
    /// Smallest pool the controller will shrink to.
    pub min: Bandwidth,
    /// Largest pool the controller will grow to.
    pub max: Bandwidth,
    /// Capacity added or removed per action.
    pub step: Bandwidth,
    /// Minimum virtual time between two scale-ups.
    pub up_cooldown: SimDuration,
    /// Minimum virtual time between two scale-downs.
    pub down_cooldown: SimDuration,
}

impl Default for AutoscalePolicy {
    /// A conservative band: evaluate every 15 s, keep utilisation in
    /// `[0.50, 0.85]`, move in 1000 Mbps steps between 1000 Mbps and
    /// 100 Gbps, with a 30 s up- and 120 s down-cooldown (scale up fast,
    /// scale down slowly — the classic asymmetry).
    fn default() -> Self {
        AutoscalePolicy {
            period: SimDuration::from_secs(15),
            low_watermark: 0.50,
            high_watermark: 0.85,
            min: Bandwidth::from_mbps(1_000),
            max: Bandwidth::from_mbps(100_000),
            step: Bandwidth::from_mbps(1_000),
            up_cooldown: SimDuration::from_secs(30),
            down_cooldown: SimDuration::from_secs(120),
        }
    }
}

impl AutoscalePolicy {
    /// A policy sized for a pool that starts at `initial`: min = initial,
    /// max = `ceiling`, step = a quarter of the initial pool (at least
    /// 250 Mbps) so under-provisioned starts recover in a few ticks.
    pub fn for_pool(initial: Bandwidth, ceiling: Bandwidth) -> Self {
        let quarter = Bandwidth::from_kbps(initial.as_kbps() / 4);
        let step = quarter.max(Bandwidth::from_mbps(250));
        AutoscalePolicy {
            min: initial,
            max: ceiling.max(initial),
            step,
            ..AutoscalePolicy::default()
        }
    }

    /// Splits this policy into per-slot policies under `scope`: the
    /// policy itself for [`PoolScope::Global`], or one per region with
    /// `min`/`max`/`step` divided by the same region weights as the pool
    /// capacity (see [`crate::split_capacity`]). A 5%-share region of a
    /// small step would round to dust, so each slot's quantum is floored
    /// at a quarter of that slot's own `min` (the
    /// [`AutoscalePolicy::for_pool`] heuristic) and at 1 Mbps so a
    /// zero-share split still validates. Watermarks, period and
    /// cooldowns are inherited unchanged — each slot's controller owns
    /// its own clocks.
    pub fn split(&self, scope: PoolScope) -> Vec<AutoscalePolicy> {
        if matches!(scope, PoolScope::Global) {
            return vec![*self];
        }
        let mins = split_capacity(self.min, scope);
        let maxs = split_capacity(self.max, scope);
        let steps = split_capacity(self.step, scope);
        mins.iter()
            .enumerate()
            .map(|(slot, &min)| {
                let step_floor =
                    Bandwidth::from_kbps(min.as_kbps() / 4).max(Bandwidth::from_mbps(1));
                AutoscalePolicy {
                    min,
                    max: maxs[slot].max(min),
                    step: steps[slot].max(step_floor),
                    ..*self
                }
            })
            .collect()
    }

    /// Validates the policy's parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.period.is_zero() {
            return Err("autoscale period must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.low_watermark) || !(0.0..=1.0).contains(&self.high_watermark)
        {
            return Err(format!(
                "watermarks out of [0, 1]: low {} high {}",
                self.low_watermark, self.high_watermark
            ));
        }
        if self.low_watermark >= self.high_watermark {
            return Err(format!(
                "low watermark {} must be below high watermark {}",
                self.low_watermark, self.high_watermark
            ));
        }
        if self.min > self.max {
            return Err(format!(
                "min capacity {} exceeds max capacity {}",
                self.min, self.max
            ));
        }
        if self.step.is_zero() {
            return Err("scale step must be positive".into());
        }
        Ok(())
    }
}

/// The predictive extension of an [`AutoscalePolicy`]: instead of
/// reacting to the utilisation band alone, the controller provisions for
/// a short-horizon *demand forecast*,
///
/// ```text
/// forecast(t) = used(t) + horizon · (trend(t) + inflow(t) · (phase_ratio − 1))
/// ```
///
/// where `trend` is an EWMA of the observed *net* demand drift (how fast
/// the pool's reserved Mbps is moving — the stock the standing audience
/// integrates), `inflow` an EWMA of the observed *fresh arrival* demand
/// rate (the flow the churn profile modulates; both fed by the owner
/// via [`Autoscaler::observe_demand`]), and `phase_ratio` the session's
/// arrival-rate profile looked up `horizon` ahead relative to now (see
/// `telecast_media::RateProfile::forecast_ratio`). In steady state
/// (flat trend, `phase_ratio ≈ 1`) the forecast is just the current
/// demand — no standing over-provision; under audience growth the trend
/// term leads the demand instead of lagging a step behind it; ahead of
/// a spike the `(ratio − 1)` surge term grows the pool *before* the
/// first rejected join, and ahead of a trough it releases early. The
/// pool is steered toward `forecast / target_utilisation`, moving up to
/// [`PREDICTIVE_MAX_UP_STEPS`] steps per decision upward (several times
/// the reactive climb rate, without betting the whole ceiling on one
/// noisy observation) and directly to the target downward — never below
/// the headroom today's demand needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictivePolicy {
    /// How far ahead demand is forecast. Should cover at least one
    /// policy period plus the scale-up cooldown so the pool is grown
    /// before the forecast materialises.
    pub horizon: SimDuration,
    /// EWMA smoothing factor for the observed arrival demand, in
    /// `(0, 1]` — higher weighs recent ticks more.
    pub alpha: f64,
    /// Utilisation the forecast demand is provisioned at (the point
    /// inside the reactive band the pool is steered to), in `(0, 1]`.
    pub target_utilisation: f64,
}

/// Most steps one predictive scale-up may jump at once.
pub const PREDICTIVE_MAX_UP_STEPS: u64 = 3;

impl Default for PredictivePolicy {
    /// Forecast 90 s ahead, EWMA α = 0.3, provision the forecast at 70%
    /// utilisation.
    fn default() -> Self {
        PredictivePolicy {
            horizon: SimDuration::from_secs(90),
            alpha: 0.3,
            target_utilisation: 0.70,
        }
    }
}

impl PredictivePolicy {
    /// Validates the policy's parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.horizon.is_zero() {
            return Err("predictive horizon must be positive".into());
        }
        if !(self.alpha.is_finite() && self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(format!("predictive alpha out of (0, 1]: {}", self.alpha));
        }
        if !(self.target_utilisation.is_finite()
            && self.target_utilisation > 0.0
            && self.target_utilisation <= 1.0)
        {
            return Err(format!(
                "predictive target utilisation out of (0, 1]: {}",
                self.target_utilisation
            ));
        }
        Ok(())
    }
}

/// The stateful autoscale controller: policy plus per-direction cooldown
/// bookkeeping and action counters. Every regional pool gets its *own*
/// instance — the cooldown timestamps live here, so one region's
/// scale-up never silences another region's (a shared controller would
/// gate all regions on whichever scaled last).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Autoscaler {
    policy: AutoscalePolicy,
    predictive: Option<PredictivePolicy>,
    /// EWMA of observed fresh arrival demand, Mbps per second.
    ewma_demand: f64,
    /// EWMA of the observed net drift of reserved pool demand, Mbps per
    /// second (positive while the audience grows).
    ewma_trend: f64,
    last_up: Option<SimTime>,
    last_down: Option<SimTime>,
    ups: u64,
    downs: u64,
    /// The most recent demand forecast: (when it comes due, forecast
    /// demand in Mbps). Refreshed on every predictive evaluation so
    /// callers can later score forecast vs realised demand.
    last_forecast: Option<(SimTime, f64)>,
}

impl Autoscaler {
    /// Creates a reactive (utilisation-band) controller for `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid (see [`AutoscalePolicy::validate`]).
    pub fn new(policy: AutoscalePolicy) -> Self {
        if let Err(msg) = policy.validate() {
            panic!("invalid autoscale policy: {msg}");
        }
        Autoscaler {
            policy,
            predictive: None,
            ewma_demand: 0.0,
            ewma_trend: 0.0,
            last_up: None,
            last_down: None,
            ups: 0,
            downs: 0,
            last_forecast: None,
        }
    }

    /// Creates a predictive controller: `policy` still supplies the
    /// bounds, step quantum, period and cooldowns; `predictive` drives
    /// the forecast-based target (see [`PredictivePolicy`]).
    ///
    /// # Panics
    ///
    /// Panics if either policy is invalid.
    pub fn predictive(policy: AutoscalePolicy, predictive: PredictivePolicy) -> Self {
        if let Err(msg) = predictive.validate() {
            panic!("invalid predictive policy: {msg}");
        }
        Autoscaler {
            predictive: Some(predictive),
            ..Autoscaler::new(policy)
        }
    }

    /// Whether this controller scales on a demand forecast rather than
    /// the utilisation band alone.
    pub fn is_predictive(&self) -> bool {
        self.predictive.is_some()
    }

    /// The predictive extension, when configured.
    pub fn predictive_policy(&self) -> Option<&PredictivePolicy> {
        self.predictive.as_ref()
    }

    /// Feeds one tick's observations into the forecaster's EWMAs:
    /// `inflow_mbps_per_sec` is the fresh arrival demand (Mbps of new
    /// stream requests per second since the last tick), and
    /// `trend_mbps_per_sec` the net drift of the pool's reserved demand
    /// over the same window. No-op on reactive controllers.
    pub fn observe_demand(&mut self, inflow_mbps_per_sec: f64, trend_mbps_per_sec: f64) {
        if let Some(pred) = self.predictive {
            self.ewma_demand =
                pred.alpha * inflow_mbps_per_sec + (1.0 - pred.alpha) * self.ewma_demand;
            self.ewma_trend =
                pred.alpha * trend_mbps_per_sec + (1.0 - pred.alpha) * self.ewma_trend;
        }
    }

    /// The current EWMA of observed arrival demand, Mbps per second.
    pub fn demand_rate(&self) -> f64 {
        self.ewma_demand
    }

    /// The current EWMA of the net reserved-demand drift, Mbps per
    /// second.
    pub fn demand_trend(&self) -> f64 {
        self.ewma_trend
    }

    /// The policy in effect.
    pub fn policy(&self) -> &AutoscalePolicy {
        &self.policy
    }

    /// Scale-up actions taken so far.
    pub fn scale_ups(&self) -> u64 {
        self.ups
    }

    /// Scale-down actions taken so far.
    pub fn scale_downs(&self) -> u64 {
        self.downs
    }

    /// The most recent predictive forecast: (due time `now + horizon`,
    /// forecast demand in Mbps). `None` on reactive controllers or
    /// before the first predictive evaluation. Callers compare it
    /// against the demand realised at the due time to score the
    /// forecaster (see `SessionMetrics::forecast_error_by_slot`).
    pub fn last_forecast(&self) -> Option<(SimTime, f64)> {
        self.last_forecast
    }

    /// Evaluates the policy against `pool` at virtual time `now` and, if
    /// a resize is warranted (band violated, bounds allow movement,
    /// cooldown elapsed), records the action and returns it. The caller
    /// applies the returned decision to the pool.
    pub fn evaluate(&mut self, now: SimTime, pool: &CapacityAccount) -> Option<ScaleDecision> {
        let p = &self.policy;
        let total = pool.total();
        let util = pool.utilisation();
        if util > p.high_watermark && total < p.max && self.cooled(self.last_up, p.up_cooldown, now)
        {
            let to = (total + p.step).min(p.max);
            self.last_up = Some(now);
            self.ups += 1;
            return Some(ScaleDecision {
                direction: ScaleDirection::Up,
                from: total,
                to,
            });
        }
        if util < p.low_watermark
            && total > p.min
            && self.cooled(self.last_down, p.down_cooldown, now)
        {
            // Never shrink below the reserved amount, and leave the pool
            // at the high watermark at most so the shrink itself does not
            // immediately re-trigger a scale-up.
            let floor = pool.used().max(p.min);
            let to = total.saturating_sub(p.step).max(floor);
            if to < total {
                self.last_down = Some(now);
                self.downs += 1;
                return Some(ScaleDecision {
                    direction: ScaleDirection::Down,
                    from: total,
                    to,
                });
            }
        }
        None
    }

    /// Evaluates the *predictive* policy against `pool` at virtual time
    /// `now`. `phase_ratio` is the arrival-rate profile's multiplier at
    /// `now + horizon` relative to now (1.0 when no profile is known).
    /// Falls back to [`Autoscaler::evaluate`] on reactive controllers.
    ///
    /// Unlike the reactive step walk, a predictive decision moves the
    /// pool *directly* to the forecast target (quantised to step
    /// multiples above `min`, clamped to the policy bounds), in either
    /// direction, still rate-limited by the per-direction cooldowns.
    pub fn evaluate_predictive(
        &mut self,
        now: SimTime,
        pool: &CapacityAccount,
        phase_ratio: f64,
    ) -> Option<ScaleDecision> {
        let Some(pred) = self.predictive else {
            return self.evaluate(now, pool);
        };
        let p = self.policy;
        let used = pool.used().as_mbps_f64();
        // The surge term: the demand drift already underway plus the
        // scheduled change of the arrival flow over the horizon (the
        // steady-state flow itself is balanced by departures).
        let surge = pred.horizon.as_secs_f64()
            * (self.ewma_trend + self.ewma_demand * (phase_ratio.max(0.0) - 1.0));
        self.last_forecast = Some((now + pred.horizon, (used + surge).max(0.0)));
        let target_mbps = {
            let raw = (used + surge).max(0.0) / pred.target_utilisation;
            let min = p.min.as_mbps_f64();
            let step = p.step.as_mbps_f64();
            let stepped = if raw <= min {
                min
            } else {
                min + ((raw - min) / step).ceil() * step
            };
            stepped.clamp(min, p.max.as_mbps_f64())
        };
        let target = Bandwidth::from_kbps((target_mbps * 1_000.0).round() as u64);
        let total = pool.total();
        // A confident forecast still moves in bounded jumps upward.
        let target = target.min(total + p.step * PREDICTIVE_MAX_UP_STEPS);
        if target > total && self.cooled(self.last_up, p.up_cooldown, now) {
            self.last_up = Some(now);
            self.ups += 1;
            return Some(ScaleDecision {
                direction: ScaleDirection::Up,
                from: total,
                to: target,
            });
        }
        // Downward moves carry a two-step deadband: a one-step dip in
        // the forecast is noise more often than a lull, and a release
        // that has to be re-bought a tick later costs both money and
        // (briefly) headroom.
        if target + p.step * 2 <= total && self.cooled(self.last_down, p.down_cooldown, now) {
            // An anticipated lull never strips the *current* demand of
            // its headroom — release only what today's load does not
            // need, and let the rest follow `used` down. Shrinking to
            // exactly `used` would reject the very next arrival.
            let floor = Bandwidth::from_kbps(
                (pool.used().as_mbps_f64() / pred.target_utilisation * 1_000.0).round() as u64,
            );
            let to = target.max(floor).max(p.min);
            if to < total {
                self.last_down = Some(now);
                self.downs += 1;
                return Some(ScaleDecision {
                    direction: ScaleDirection::Down,
                    from: total,
                    to,
                });
            }
        }
        None
    }

    fn cooled(&self, last: Option<SimTime>, cooldown: SimDuration, now: SimTime) -> bool {
        match last {
            None => true,
            Some(at) => now.saturating_since(at) >= cooldown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(total_mbps: u64, used_mbps: u64) -> CapacityAccount {
        let mut acct = CapacityAccount::new(Bandwidth::from_mbps(total_mbps));
        acct.reserve(Bandwidth::from_mbps(used_mbps)).expect("fits");
        acct
    }

    fn policy() -> AutoscalePolicy {
        AutoscalePolicy {
            period: SimDuration::from_secs(10),
            low_watermark: 0.5,
            high_watermark: 0.85,
            min: Bandwidth::from_mbps(1_000),
            max: Bandwidth::from_mbps(4_000),
            step: Bandwidth::from_mbps(1_000),
            up_cooldown: SimDuration::from_secs(30),
            down_cooldown: SimDuration::from_secs(60),
        }
    }

    #[test]
    fn scales_up_above_the_band() {
        let mut scaler = Autoscaler::new(policy());
        let d = scaler
            .evaluate(SimTime::from_secs(10), &pool(1_000, 950))
            .expect("above high watermark");
        assert_eq!(d.direction, ScaleDirection::Up);
        assert_eq!(d.to, Bandwidth::from_mbps(2_000));
        assert_eq!(scaler.scale_ups(), 1);
    }

    #[test]
    fn respects_the_max_bound_and_up_cooldown() {
        let mut scaler = Autoscaler::new(policy());
        assert!(scaler
            .evaluate(SimTime::from_secs(10), &pool(1_000, 950))
            .is_some());
        // Cooldown: 10 s later nothing happens despite saturation.
        assert!(scaler
            .evaluate(SimTime::from_secs(20), &pool(2_000, 1_950))
            .is_none());
        // After the cooldown the next step lands, clamped at max.
        let d = scaler
            .evaluate(SimTime::from_secs(40), &pool(3_500, 3_400))
            .expect("cooled down");
        assert_eq!(d.to, Bandwidth::from_mbps(4_000));
        // At max: no further ups.
        assert!(scaler
            .evaluate(SimTime::from_secs(80), &pool(4_000, 3_999))
            .is_none());
    }

    #[test]
    fn scales_down_below_the_band_with_its_own_cooldown() {
        let mut scaler = Autoscaler::new(policy());
        let d = scaler
            .evaluate(SimTime::from_secs(10), &pool(4_000, 100))
            .expect("below low watermark");
        assert_eq!(d.direction, ScaleDirection::Down);
        assert_eq!(d.to, Bandwidth::from_mbps(3_000));
        // Down-cooldown (60 s) still running: no action.
        assert!(scaler
            .evaluate(SimTime::from_secs(40), &pool(3_000, 100))
            .is_none());
        let d = scaler
            .evaluate(SimTime::from_secs(80), &pool(3_000, 100))
            .expect("down-cooldown elapsed");
        assert_eq!(d.to, Bandwidth::from_mbps(2_000));
        assert_eq!(scaler.scale_downs(), 2);
    }

    #[test]
    fn never_shrinks_below_min_or_used() {
        // Below the low watermark but already at min: no action.
        let mut scaler = Autoscaler::new(policy());
        assert!(scaler
            .evaluate(SimTime::from_secs(10), &pool(1_000, 10))
            .is_none());
        // A big step is floored by the reserved amount, not by min.
        let mut big_step = policy();
        big_step.step = Bandwidth::from_mbps(3_000);
        let mut scaler = Autoscaler::new(big_step);
        let d = scaler
            .evaluate(SimTime::from_secs(10), &pool(4_000, 1_500))
            .expect("util 0.375 below the low watermark");
        assert_eq!(d.to, Bandwidth::from_mbps(1_500));
    }

    #[test]
    fn quiet_inside_the_band() {
        let mut scaler = Autoscaler::new(policy());
        assert!(scaler
            .evaluate(SimTime::from_secs(10), &pool(2_000, 1_400))
            .is_none());
        assert_eq!(scaler.scale_ups() + scaler.scale_downs(), 0);
    }

    #[test]
    fn for_pool_sizes_the_step_to_the_start() {
        let p =
            AutoscalePolicy::for_pool(Bandwidth::from_mbps(8_000), Bandwidth::from_mbps(20_000));
        assert_eq!(p.min, Bandwidth::from_mbps(8_000));
        assert_eq!(p.max, Bandwidth::from_mbps(20_000));
        assert_eq!(p.step, Bandwidth::from_mbps(2_000));
        assert!(p.validate().is_ok());
        // Tiny pools still move in useful steps.
        let p = AutoscalePolicy::for_pool(Bandwidth::from_mbps(100), Bandwidth::from_mbps(5_000));
        assert_eq!(p.step, Bandwidth::from_mbps(250));
    }

    #[test]
    fn predictive_prescales_on_the_forecast_despite_low_utilisation() {
        let pred = PredictivePolicy {
            horizon: SimDuration::from_secs(60),
            alpha: 1.0,
            target_utilisation: 0.5,
        };
        let mut scaler = Autoscaler::predictive(
            AutoscalePolicy {
                max: Bandwidth::from_mbps(10_000),
                ..policy()
            },
            pred,
        );
        // Utilisation 0.4 — the reactive band would scale *down*. The
        // forecast (10 Mbps/s of fresh demand, a 5× spike one horizon
        // ahead) steers the pool up instead, several steps at once.
        scaler.observe_demand(10.0, 0.0);
        let d = scaler
            .evaluate_predictive(SimTime::from_secs(10), &pool(1_000, 400), 5.0)
            .expect("forecast exceeds the pool");
        assert_eq!(d.direction, ScaleDirection::Up);
        // Surge 10·60·(5−1) = 2400 over used 400 at 50% target → 5600,
        // quantised to 6000, capped at 3 steps above the pool → 4000.
        assert_eq!(d.to, Bandwidth::from_mbps(4_000));
        assert_eq!(scaler.scale_ups(), 1);
    }

    #[test]
    fn predictive_holds_steady_state_without_over_provisioning() {
        let pred = PredictivePolicy {
            horizon: SimDuration::from_secs(60),
            alpha: 1.0,
            target_utilisation: 0.8,
        };
        let mut scaler = Autoscaler::predictive(
            AutoscalePolicy {
                max: Bandwidth::from_mbps(10_000),
                ..policy()
            },
            pred,
        );
        // Steady state: arrivals flow but the phase ratio is 1, so the
        // surge term vanishes — a pool sitting at the target utilisation
        // is left alone in both directions.
        scaler.observe_demand(25.0, 0.0);
        assert!(scaler
            .evaluate_predictive(SimTime::from_secs(10), &pool(2_000, 1_500), 1.0)
            .is_none());
    }

    #[test]
    fn predictive_releases_capacity_when_the_forecast_falls() {
        let pred = PredictivePolicy {
            horizon: SimDuration::from_secs(60),
            alpha: 1.0,
            target_utilisation: 0.5,
        };
        let mut scaler = Autoscaler::predictive(
            AutoscalePolicy {
                max: Bandwidth::from_mbps(10_000),
                ..policy()
            },
            pred,
        );
        scaler.observe_demand(0.0, 0.0);
        // 7000 Mbps provisioned, 400 used, no inflow: the target drops
        // to min in one decision instead of one step per cooldown.
        let d = scaler
            .evaluate_predictive(SimTime::from_secs(10), &pool(7_000, 400), 1.0)
            .expect("forecast far below the pool");
        assert_eq!(d.direction, ScaleDirection::Down);
        assert_eq!(d.to, Bandwidth::from_mbps(1_000));
    }

    #[test]
    fn predictive_still_respects_cooldowns_and_bounds() {
        let pred = PredictivePolicy {
            horizon: SimDuration::from_secs(60),
            alpha: 1.0,
            target_utilisation: 0.5,
        };
        let mut scaler = Autoscaler::predictive(policy(), pred);
        scaler.observe_demand(50.0, 0.0);
        // Target would be huge; clamped at max (4000).
        let d = scaler
            .evaluate_predictive(SimTime::from_secs(10), &pool(1_000, 900), 2.0)
            .expect("scale up");
        assert_eq!(d.to, Bandwidth::from_mbps(4_000));
        // Up-cooldown (30 s) still gates the next action.
        assert!(scaler
            .evaluate_predictive(SimTime::from_secs(20), &pool(1_000, 900), 2.0)
            .is_none());
    }

    #[test]
    fn reactive_controllers_ignore_demand_observations() {
        let mut scaler = Autoscaler::new(policy());
        scaler.observe_demand(1_000.0, 500.0);
        assert_eq!(scaler.demand_rate(), 0.0);
        assert!(!scaler.is_predictive());
        // evaluate_predictive falls back to the reactive band.
        assert!(scaler
            .evaluate_predictive(SimTime::from_secs(10), &pool(2_000, 1_400), 9.0)
            .is_none());
    }

    #[test]
    fn regional_instances_keep_independent_cooldown_clocks() {
        // One controller per regional pool: region A scaling up at t=10
        // must not start region B's cooldown. (A shared controller — the
        // pre-region-split bug this guards against — would return None
        // for B at t=12.)
        let mut a = Autoscaler::new(policy());
        let mut b = Autoscaler::new(policy());
        assert!(a
            .evaluate(SimTime::from_secs(10), &pool(1_000, 950))
            .is_some());
        assert!(
            b.evaluate(SimTime::from_secs(12), &pool(1_000, 980))
                .is_some(),
            "region B's fresh controller was gated by region A's cooldown"
        );
        // And A itself is still cooling.
        assert!(a
            .evaluate(SimTime::from_secs(12), &pool(2_000, 1_990))
            .is_none());
    }

    #[test]
    fn predictive_validation_catches_bad_parameters() {
        assert!(PredictivePolicy::default().validate().is_ok());
        let p = PredictivePolicy {
            alpha: 0.0,
            ..Default::default()
        };
        assert!(p.validate().unwrap_err().contains("alpha"));
        let p = PredictivePolicy {
            horizon: SimDuration::ZERO,
            ..Default::default()
        };
        assert!(p.validate().unwrap_err().contains("horizon"));
        let p = PredictivePolicy {
            target_utilisation: 1.5,
            ..Default::default()
        };
        assert!(p.validate().unwrap_err().contains("utilisation"));
    }

    #[test]
    fn validation_catches_bad_policies() {
        let mut p = policy();
        p.low_watermark = 0.9;
        assert!(p.validate().unwrap_err().contains("below high"));
        let mut p = policy();
        p.step = Bandwidth::ZERO;
        assert!(p.validate().unwrap_err().contains("step"));
        let mut p = policy();
        p.min = Bandwidth::from_mbps(10_000);
        assert!(p.validate().unwrap_err().contains("exceeds max"));
        let mut p = policy();
        p.period = SimDuration::ZERO;
        assert!(p.validate().unwrap_err().contains("period"));
    }

    #[test]
    fn split_global_is_identity() {
        let p = AutoscalePolicy::default();
        assert_eq!(p.split(PoolScope::Global), vec![p]);
    }

    #[test]
    fn split_per_region_mirrors_capacity_split() {
        let p = AutoscalePolicy {
            min: Bandwidth::from_mbps(10_000),
            max: Bandwidth::from_mbps(80_000),
            step: Bandwidth::from_mbps(2_000),
            ..AutoscalePolicy::default()
        };
        let slots = p.split(PoolScope::PerRegion);
        let mins = split_capacity(p.min, PoolScope::PerRegion);
        assert_eq!(slots.len(), mins.len());
        for (slot, policy) in slots.iter().enumerate() {
            assert_eq!(policy.min, mins[slot]);
            assert!(policy.max >= policy.min);
            assert!(policy.validate().is_ok(), "slot {slot} invalid");
            // Inherited knobs are untouched.
            assert_eq!(policy.period, p.period);
            assert_eq!(policy.high_watermark, p.high_watermark);
        }
        // The shares sum back to the whole.
        let total: u64 = slots.iter().map(|s| s.min.as_kbps()).sum();
        assert_eq!(total, p.min.as_kbps());
    }

    #[test]
    fn split_floors_dust_steps() {
        // A tiny step would round a 5%-share region's quantum to dust;
        // the floor keeps every slot's policy valid and useful.
        let p = AutoscalePolicy {
            min: Bandwidth::from_mbps(100),
            max: Bandwidth::from_mbps(1_000),
            step: Bandwidth::from_mbps(4),
            ..AutoscalePolicy::default()
        };
        for slot in p.split(PoolScope::PerRegion) {
            assert!(slot.step >= Bandwidth::from_mbps(1));
            assert!(slot.validate().is_ok());
        }
    }
}

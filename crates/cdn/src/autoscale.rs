//! Elastic CDN pool autoscaling.
//!
//! The paper provisions the CDN as a *static* bounded outbound pool
//! (`C_cdn_obw = 6000 Mbps`). Under time-varying churn — flash-crowd
//! kickoffs, diurnal audience waves — a static pool is either saturated
//! at the peak (rejecting joins) or bleeding money at the trough
//! (provisioned Mbps-hours nobody uses). This module adds the control
//! side of an elastic pool:
//!
//! * [`AutoscalePolicy`] — a target-utilisation band with min/max
//!   capacity bounds, a capacity step per action, and independent
//!   scale-up/scale-down cooldowns;
//! * [`Autoscaler`] — the stateful controller: it evaluates the policy
//!   against the pool at each tick and emits [`ScaleDecision`]s, which
//!   the owner applies with [`crate::Cdn::apply_scale`].
//!
//! The controller is deliberately deterministic and side-effect free —
//! decisions are pure functions of `(policy, pool state, last action
//! times)`, so two sessions with identical event timelines autoscale
//! identically.

use serde::{Deserialize, Serialize};
use telecast_net::{Bandwidth, CapacityAccount};
use telecast_sim::{SimDuration, SimTime};

/// Direction of one scaling action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleDirection {
    /// Capacity was added to the pool.
    Up,
    /// Capacity was removed from the pool.
    Down,
}

/// One scaling action decided by the [`Autoscaler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaleDecision {
    /// Whether this grows or shrinks the pool.
    pub direction: ScaleDirection,
    /// Pool capacity before the action.
    pub from: Bandwidth,
    /// Pool capacity after the action.
    pub to: Bandwidth,
}

/// The target-utilisation autoscaling policy.
///
/// The pool is resized to keep utilisation inside
/// `[low_watermark, high_watermark]`: a tick observing utilisation above
/// the high watermark scales up by [`AutoscalePolicy::step`] (clamped to
/// `max`), one observing utilisation below the low watermark scales down
/// by the same step (clamped to `min` and to the currently reserved
/// amount). Cooldowns rate-limit each direction independently so the
/// controller neither thrashes on a spike nor collapses the pool during
/// a short lull.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscalePolicy {
    /// Period between autoscale evaluations (the engine tick).
    pub period: SimDuration,
    /// Scale down when utilisation falls below this fraction.
    pub low_watermark: f64,
    /// Scale up when utilisation rises above this fraction.
    pub high_watermark: f64,
    /// Smallest pool the controller will shrink to.
    pub min: Bandwidth,
    /// Largest pool the controller will grow to.
    pub max: Bandwidth,
    /// Capacity added or removed per action.
    pub step: Bandwidth,
    /// Minimum virtual time between two scale-ups.
    pub up_cooldown: SimDuration,
    /// Minimum virtual time between two scale-downs.
    pub down_cooldown: SimDuration,
}

impl Default for AutoscalePolicy {
    /// A conservative band: evaluate every 15 s, keep utilisation in
    /// `[0.50, 0.85]`, move in 1000 Mbps steps between 1000 Mbps and
    /// 100 Gbps, with a 30 s up- and 120 s down-cooldown (scale up fast,
    /// scale down slowly — the classic asymmetry).
    fn default() -> Self {
        AutoscalePolicy {
            period: SimDuration::from_secs(15),
            low_watermark: 0.50,
            high_watermark: 0.85,
            min: Bandwidth::from_mbps(1_000),
            max: Bandwidth::from_mbps(100_000),
            step: Bandwidth::from_mbps(1_000),
            up_cooldown: SimDuration::from_secs(30),
            down_cooldown: SimDuration::from_secs(120),
        }
    }
}

impl AutoscalePolicy {
    /// A policy sized for a pool that starts at `initial`: min = initial,
    /// max = `ceiling`, step = a quarter of the initial pool (at least
    /// 250 Mbps) so under-provisioned starts recover in a few ticks.
    pub fn for_pool(initial: Bandwidth, ceiling: Bandwidth) -> Self {
        let quarter = Bandwidth::from_kbps(initial.as_kbps() / 4);
        let step = quarter.max(Bandwidth::from_mbps(250));
        AutoscalePolicy {
            min: initial,
            max: ceiling.max(initial),
            step,
            ..AutoscalePolicy::default()
        }
    }

    /// Validates the policy's parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.period.is_zero() {
            return Err("autoscale period must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.low_watermark) || !(0.0..=1.0).contains(&self.high_watermark)
        {
            return Err(format!(
                "watermarks out of [0, 1]: low {} high {}",
                self.low_watermark, self.high_watermark
            ));
        }
        if self.low_watermark >= self.high_watermark {
            return Err(format!(
                "low watermark {} must be below high watermark {}",
                self.low_watermark, self.high_watermark
            ));
        }
        if self.min > self.max {
            return Err(format!(
                "min capacity {} exceeds max capacity {}",
                self.min, self.max
            ));
        }
        if self.step.is_zero() {
            return Err("scale step must be positive".into());
        }
        Ok(())
    }
}

/// The stateful autoscale controller: policy plus per-direction cooldown
/// bookkeeping and action counters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Autoscaler {
    policy: AutoscalePolicy,
    last_up: Option<SimTime>,
    last_down: Option<SimTime>,
    ups: u64,
    downs: u64,
}

impl Autoscaler {
    /// Creates a controller for `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid (see [`AutoscalePolicy::validate`]).
    pub fn new(policy: AutoscalePolicy) -> Self {
        if let Err(msg) = policy.validate() {
            panic!("invalid autoscale policy: {msg}");
        }
        Autoscaler {
            policy,
            last_up: None,
            last_down: None,
            ups: 0,
            downs: 0,
        }
    }

    /// The policy in effect.
    pub fn policy(&self) -> &AutoscalePolicy {
        &self.policy
    }

    /// Scale-up actions taken so far.
    pub fn scale_ups(&self) -> u64 {
        self.ups
    }

    /// Scale-down actions taken so far.
    pub fn scale_downs(&self) -> u64 {
        self.downs
    }

    /// Evaluates the policy against `pool` at virtual time `now` and, if
    /// a resize is warranted (band violated, bounds allow movement,
    /// cooldown elapsed), records the action and returns it. The caller
    /// applies the returned decision to the pool.
    pub fn evaluate(&mut self, now: SimTime, pool: &CapacityAccount) -> Option<ScaleDecision> {
        let p = &self.policy;
        let total = pool.total();
        let util = pool.utilisation();
        if util > p.high_watermark && total < p.max && self.cooled(self.last_up, p.up_cooldown, now)
        {
            let to = (total + p.step).min(p.max);
            self.last_up = Some(now);
            self.ups += 1;
            return Some(ScaleDecision {
                direction: ScaleDirection::Up,
                from: total,
                to,
            });
        }
        if util < p.low_watermark
            && total > p.min
            && self.cooled(self.last_down, p.down_cooldown, now)
        {
            // Never shrink below the reserved amount, and leave the pool
            // at the high watermark at most so the shrink itself does not
            // immediately re-trigger a scale-up.
            let floor = pool.used().max(p.min);
            let to = total.saturating_sub(p.step).max(floor);
            if to < total {
                self.last_down = Some(now);
                self.downs += 1;
                return Some(ScaleDecision {
                    direction: ScaleDirection::Down,
                    from: total,
                    to,
                });
            }
        }
        None
    }

    fn cooled(&self, last: Option<SimTime>, cooldown: SimDuration, now: SimTime) -> bool {
        match last {
            None => true,
            Some(at) => now.saturating_since(at) >= cooldown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(total_mbps: u64, used_mbps: u64) -> CapacityAccount {
        let mut acct = CapacityAccount::new(Bandwidth::from_mbps(total_mbps));
        acct.reserve(Bandwidth::from_mbps(used_mbps)).expect("fits");
        acct
    }

    fn policy() -> AutoscalePolicy {
        AutoscalePolicy {
            period: SimDuration::from_secs(10),
            low_watermark: 0.5,
            high_watermark: 0.85,
            min: Bandwidth::from_mbps(1_000),
            max: Bandwidth::from_mbps(4_000),
            step: Bandwidth::from_mbps(1_000),
            up_cooldown: SimDuration::from_secs(30),
            down_cooldown: SimDuration::from_secs(60),
        }
    }

    #[test]
    fn scales_up_above_the_band() {
        let mut scaler = Autoscaler::new(policy());
        let d = scaler
            .evaluate(SimTime::from_secs(10), &pool(1_000, 950))
            .expect("above high watermark");
        assert_eq!(d.direction, ScaleDirection::Up);
        assert_eq!(d.to, Bandwidth::from_mbps(2_000));
        assert_eq!(scaler.scale_ups(), 1);
    }

    #[test]
    fn respects_the_max_bound_and_up_cooldown() {
        let mut scaler = Autoscaler::new(policy());
        assert!(scaler
            .evaluate(SimTime::from_secs(10), &pool(1_000, 950))
            .is_some());
        // Cooldown: 10 s later nothing happens despite saturation.
        assert!(scaler
            .evaluate(SimTime::from_secs(20), &pool(2_000, 1_950))
            .is_none());
        // After the cooldown the next step lands, clamped at max.
        let d = scaler
            .evaluate(SimTime::from_secs(40), &pool(3_500, 3_400))
            .expect("cooled down");
        assert_eq!(d.to, Bandwidth::from_mbps(4_000));
        // At max: no further ups.
        assert!(scaler
            .evaluate(SimTime::from_secs(80), &pool(4_000, 3_999))
            .is_none());
    }

    #[test]
    fn scales_down_below_the_band_with_its_own_cooldown() {
        let mut scaler = Autoscaler::new(policy());
        let d = scaler
            .evaluate(SimTime::from_secs(10), &pool(4_000, 100))
            .expect("below low watermark");
        assert_eq!(d.direction, ScaleDirection::Down);
        assert_eq!(d.to, Bandwidth::from_mbps(3_000));
        // Down-cooldown (60 s) still running: no action.
        assert!(scaler
            .evaluate(SimTime::from_secs(40), &pool(3_000, 100))
            .is_none());
        let d = scaler
            .evaluate(SimTime::from_secs(80), &pool(3_000, 100))
            .expect("down-cooldown elapsed");
        assert_eq!(d.to, Bandwidth::from_mbps(2_000));
        assert_eq!(scaler.scale_downs(), 2);
    }

    #[test]
    fn never_shrinks_below_min_or_used() {
        // Below the low watermark but already at min: no action.
        let mut scaler = Autoscaler::new(policy());
        assert!(scaler
            .evaluate(SimTime::from_secs(10), &pool(1_000, 10))
            .is_none());
        // A big step is floored by the reserved amount, not by min.
        let mut big_step = policy();
        big_step.step = Bandwidth::from_mbps(3_000);
        let mut scaler = Autoscaler::new(big_step);
        let d = scaler
            .evaluate(SimTime::from_secs(10), &pool(4_000, 1_500))
            .expect("util 0.375 below the low watermark");
        assert_eq!(d.to, Bandwidth::from_mbps(1_500));
    }

    #[test]
    fn quiet_inside_the_band() {
        let mut scaler = Autoscaler::new(policy());
        assert!(scaler
            .evaluate(SimTime::from_secs(10), &pool(2_000, 1_400))
            .is_none());
        assert_eq!(scaler.scale_ups() + scaler.scale_downs(), 0);
    }

    #[test]
    fn for_pool_sizes_the_step_to_the_start() {
        let p =
            AutoscalePolicy::for_pool(Bandwidth::from_mbps(8_000), Bandwidth::from_mbps(20_000));
        assert_eq!(p.min, Bandwidth::from_mbps(8_000));
        assert_eq!(p.max, Bandwidth::from_mbps(20_000));
        assert_eq!(p.step, Bandwidth::from_mbps(2_000));
        assert!(p.validate().is_ok());
        // Tiny pools still move in useful steps.
        let p = AutoscalePolicy::for_pool(Bandwidth::from_mbps(100), Bandwidth::from_mbps(5_000));
        assert_eq!(p.step, Bandwidth::from_mbps(250));
    }

    #[test]
    fn validation_catches_bad_policies() {
        let mut p = policy();
        p.low_watermark = 0.9;
        assert!(p.validate().unwrap_err().contains("below high"));
        let mut p = policy();
        p.step = Bandwidth::ZERO;
        assert!(p.validate().unwrap_err().contains("step"));
        let mut p = policy();
        p.min = Bandwidth::from_mbps(10_000);
        assert!(p.validate().unwrap_err().contains("exceeds max"));
        let mut p = policy();
        p.period = SimDuration::ZERO;
        assert!(p.validate().unwrap_err().contains("period"));
    }
}

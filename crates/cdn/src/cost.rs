//! CDN cost accounting: egress transfer pricing and provisioned-capacity
//! pricing.
//!
//! The paper motivates minimising CDN outbound usage with CloudFront's
//! 2012 pricing: "the use of 1GB traffic in Amazon CloudFront CDN costs
//! $0.18". The elastic pool adds a second bill: *provisioned* outbound
//! capacity is metered in Mbps-hours (the committed-rate model of
//! dedicated CDN contracts), so over-provisioning shows up in dollars
//! even when no byte of egress flows.

use serde::{Deserialize, Serialize};
use telecast_net::Bandwidth;
use telecast_sim::SimTime;

/// A per-gigabyte transfer pricing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    dollars_per_gb: f64,
}

impl CostModel {
    /// Flat price per gigabyte of egress.
    ///
    /// # Panics
    ///
    /// Panics if the price is negative or not finite.
    pub fn per_gb(dollars: f64) -> Self {
        assert!(
            dollars.is_finite() && dollars >= 0.0,
            "invalid price: {dollars}"
        );
        CostModel {
            dollars_per_gb: dollars,
        }
    }

    /// Amazon CloudFront's 2012 price referenced by the paper.
    pub fn cloudfront_2012() -> Self {
        CostModel::per_gb(0.18)
    }

    /// Cost of transferring `bytes`.
    pub fn cost_of(&self, bytes: u64) -> f64 {
        bytes as f64 / 1e9 * self.dollars_per_gb
    }
}

/// Accumulates egress bytes and prices them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficMeter {
    model: CostModel,
    bytes: u64,
}

impl TrafficMeter {
    /// A zeroed meter under the given pricing.
    pub fn new(model: CostModel) -> Self {
        TrafficMeter { model, bytes: 0 }
    }

    /// Records `bytes` of egress.
    pub fn record(&mut self, bytes: u64) {
        self.bytes += bytes;
    }

    /// Total recorded bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total cost in dollars of the recorded traffic.
    pub fn dollars(&self) -> f64 {
        self.model.cost_of(self.bytes)
    }
}

/// Meters *provisioned* (not used) outbound capacity over virtual time,
/// in Mbps-hours, and prices it at a committed-rate tariff.
///
/// The meter is driven by the pool owner: every capacity change first
/// [`accrues`](ProvisionedMeter::accrue) the segment since the previous
/// change at the old rate, then records the new rate. Reads are
/// non-mutating and include the in-flight segment, so the bill at any
/// instant is exact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProvisionedMeter {
    dollars_per_mbps_hour: f64,
    current: Bandwidth,
    since: SimTime,
    accrued_mbps_hours: f64,
}

impl ProvisionedMeter {
    /// Starts metering `capacity` at virtual time zero.
    ///
    /// # Panics
    ///
    /// Panics if the tariff is negative or not finite.
    pub fn new(dollars_per_mbps_hour: f64, capacity: Bandwidth) -> Self {
        assert!(
            dollars_per_mbps_hour.is_finite() && dollars_per_mbps_hour >= 0.0,
            "invalid tariff: {dollars_per_mbps_hour}"
        );
        ProvisionedMeter {
            dollars_per_mbps_hour,
            current: capacity,
            since: SimTime::ZERO,
            accrued_mbps_hours: 0.0,
        }
    }

    /// The capacity currently being metered.
    pub fn current_capacity(&self) -> Bandwidth {
        self.current
    }

    /// Closes the running segment at `now` and switches the metered rate
    /// to `capacity`. Call this *before* applying a pool resize.
    pub fn accrue(&mut self, now: SimTime, capacity: Bandwidth) {
        self.accrued_mbps_hours += self.segment_mbps_hours(now);
        self.since = now.max(self.since);
        self.current = capacity;
    }

    /// Mbps-hours accrued up to `now`, including the running segment.
    pub fn mbps_hours_at(&self, now: SimTime) -> f64 {
        self.accrued_mbps_hours + self.segment_mbps_hours(now)
    }

    /// Provisioned-capacity dollars accrued up to `now`.
    pub fn dollars_at(&self, now: SimTime) -> f64 {
        self.mbps_hours_at(now) * self.dollars_per_mbps_hour
    }

    fn segment_mbps_hours(&self, now: SimTime) -> f64 {
        let hours = now.saturating_since(self.since).as_secs_f64() / 3_600.0;
        self.current.as_mbps_f64() * hours
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloudfront_price_matches_paper() {
        let model = CostModel::cloudfront_2012();
        assert!((model.cost_of(1_000_000_000) - 0.18).abs() < 1e-12);
    }

    #[test]
    fn meter_accumulates() {
        let mut meter = TrafficMeter::new(CostModel::per_gb(0.18));
        meter.record(500_000_000);
        meter.record(500_000_000);
        assert_eq!(meter.bytes(), 1_000_000_000);
        assert!((meter.dollars() - 0.18).abs() < 1e-12);
    }

    #[test]
    fn zero_price_is_free() {
        let model = CostModel::per_gb(0.0);
        assert_eq!(model.cost_of(u64::MAX), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid price")]
    fn negative_price_panics() {
        CostModel::per_gb(-1.0);
    }

    #[test]
    fn provisioned_meter_accrues_across_capacity_changes() {
        // 1000 Mbps for 1 hour, then 2000 Mbps for 30 minutes.
        let mut meter = ProvisionedMeter::new(0.03, Bandwidth::from_mbps(1_000));
        meter.accrue(SimTime::from_secs(3_600), Bandwidth::from_mbps(2_000));
        let at = SimTime::from_secs(3_600 + 1_800);
        assert!((meter.mbps_hours_at(at) - 2_000.0).abs() < 1e-9);
        assert!((meter.dollars_at(at) - 60.0).abs() < 1e-9);
        assert_eq!(meter.current_capacity(), Bandwidth::from_mbps(2_000));
    }

    #[test]
    fn provisioned_meter_reads_are_non_mutating() {
        let meter = ProvisionedMeter::new(0.1, Bandwidth::from_mbps(100));
        let at = SimTime::from_secs(7_200);
        assert!((meter.mbps_hours_at(at) - 200.0).abs() < 1e-9);
        assert!((meter.mbps_hours_at(at) - 200.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid tariff")]
    fn negative_tariff_panics() {
        ProvisionedMeter::new(f64::NAN, Bandwidth::ZERO);
    }
}

//! CDN transfer cost accounting.
//!
//! The paper motivates minimising CDN outbound usage with CloudFront's
//! 2012 pricing: "the use of 1GB traffic in Amazon CloudFront CDN costs
//! $0.18".

use serde::{Deserialize, Serialize};

/// A per-gigabyte transfer pricing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    dollars_per_gb: f64,
}

impl CostModel {
    /// Flat price per gigabyte of egress.
    ///
    /// # Panics
    ///
    /// Panics if the price is negative or not finite.
    pub fn per_gb(dollars: f64) -> Self {
        assert!(
            dollars.is_finite() && dollars >= 0.0,
            "invalid price: {dollars}"
        );
        CostModel {
            dollars_per_gb: dollars,
        }
    }

    /// Amazon CloudFront's 2012 price referenced by the paper.
    pub fn cloudfront_2012() -> Self {
        CostModel::per_gb(0.18)
    }

    /// Cost of transferring `bytes`.
    pub fn cost_of(&self, bytes: u64) -> f64 {
        bytes as f64 / 1e9 * self.dollars_per_gb
    }
}

/// Accumulates egress bytes and prices them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficMeter {
    model: CostModel,
    bytes: u64,
}

impl TrafficMeter {
    /// A zeroed meter under the given pricing.
    pub fn new(model: CostModel) -> Self {
        TrafficMeter { model, bytes: 0 }
    }

    /// Records `bytes` of egress.
    pub fn record(&mut self, bytes: u64) {
        self.bytes += bytes;
    }

    /// Total recorded bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total cost in dollars of the recorded traffic.
    pub fn dollars(&self) -> f64 {
        self.model.cost_of(self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloudfront_price_matches_paper() {
        let model = CostModel::cloudfront_2012();
        assert!((model.cost_of(1_000_000_000) - 0.18).abs() < 1e-12);
    }

    #[test]
    fn meter_accumulates() {
        let mut meter = TrafficMeter::new(CostModel::per_gb(0.18));
        meter.record(500_000_000);
        meter.record(500_000_000);
        assert_eq!(meter.bytes(), 1_000_000_000);
        assert!((meter.dollars() - 0.18).abs() < 1e-12);
    }

    #[test]
    fn zero_price_is_free() {
        let model = CostModel::per_gb(0.0);
        assert_eq!(model.cost_of(u64::MAX), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid price")]
    fn negative_price_panics() {
        CostModel::per_gb(-1.0);
    }
}

//! Host crate for the runnable example applications in `/examples`.
//!
//! The examples exercise the public 4D TeleCast API end to end:
//!
//! * `quickstart` — smallest possible session, headline metrics;
//! * `collaborative_dancing` — the paper's motivating broadcast with a
//!   frame-level synchronisation close-up;
//! * `exergaming_audience` — view-change-heavy audience and victim
//!   recovery;
//! * `flash_crowd` — simultaneous arrival/departure storm, TeleCast vs
//!   the Random baseline;
//! * `trace_import` — loading a real PlanetLab ping trace behind the
//!   same `DelayModel` trait as the synthetic matrix.
//!
//! Run any of them with
//! `cargo run --release -p telecast-apps --example <name>`.

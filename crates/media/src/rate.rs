//! Time-varying arrival-rate profiles for the churn process.
//!
//! The paper's churn counterpart ([`crate::ChurnSpec`]) originally drew
//! arrivals from a *constant-rate* Poisson process. Real audiences are
//! not constant: they follow diurnal waves (the day/night cycle of a
//! global 3DTI broadcast) and flash spikes (a kickoff, a replayed
//! highlight). [`RateProfile`] generalises the arrival process into a
//! non-homogeneous Poisson process whose instantaneous rate is
//! `base_rate × multiplier(t)`, sampled by thinning (Lewis–Shedler):
//! candidate gaps are drawn at the profile's peak rate and accepted with
//! probability `multiplier(t) / max_multiplier`, which reproduces the
//! exact time-varying process without numerical integration.
//!
//! [`RateProfile::Constant`] bypasses thinning entirely and draws one
//! exponential gap per arrival — the *identical* random-stream
//! consumption of the original constant process, so every existing seed
//! replays byte-identically.

use serde::{Deserialize, Serialize};
use telecast_sim::{SimDuration, SimRng, SimTime};

/// Maximum number of spike windows a [`RateProfile::Spikes`] profile can
/// hold (a fixed array keeps the profile `Copy`, like the spec that
/// embeds it).
pub const MAX_SPIKE_WINDOWS: usize = 4;

/// One piecewise rate spike: the arrival rate is multiplied by
/// `multiplier` inside `[start, start + duration)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpikeWindow {
    /// When the spike begins.
    pub start: SimTime,
    /// How long it lasts.
    pub duration: SimDuration,
    /// Rate multiplier inside the window (≥ 0; above 1 is a flash crowd,
    /// below 1 a lull, 0 silences arrivals).
    pub multiplier: f64,
}

impl Default for SpikeWindow {
    fn default() -> Self {
        SpikeWindow {
            start: SimTime::ZERO,
            duration: SimDuration::ZERO,
            multiplier: 1.0,
        }
    }
}

impl SpikeWindow {
    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.start + self.duration
    }
}

/// How the churn arrival rate varies over virtual time, as a
/// dimensionless multiplier on the spec's base rate.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum RateProfile {
    /// The original homogeneous process: multiplier 1 forever.
    #[default]
    Constant,
    /// A sinusoidal day/night wave:
    /// `1 + amplitude · sin(2π · (t + phase) / period)`.
    Diurnal {
        /// Length of one full day/night cycle.
        period: SimDuration,
        /// Wave amplitude in `[0, 1]` — 0 degenerates to constant, 1
        /// silences the trough completely.
        amplitude: f64,
        /// Phase offset added to `t` before the sine (use
        /// [`RateProfile::diurnal_from_trough`] to start a run at the
        /// quiet point of the cycle).
        phase: SimDuration,
    },
    /// Piecewise flash spikes over an otherwise constant rate.
    Spikes {
        /// The spike windows; only the first `active` entries are live.
        windows: [SpikeWindow; MAX_SPIKE_WINDOWS],
        /// Number of live windows.
        active: usize,
    },
    /// Flash spikes *composed onto* a sinusoidal diurnal baseline: the
    /// multiplier is the diurnal wave's value times the spike windows'
    /// (a replayed-highlight burst during the evening peak multiplies
    /// the already-elevated rate). This is the `spike_storm` audience
    /// model.
    DiurnalSpikes {
        /// Length of one full day/night cycle.
        period: SimDuration,
        /// Wave amplitude in `[0, 1]`.
        amplitude: f64,
        /// Phase offset added to `t` before the sine.
        phase: SimDuration,
        /// The spike windows; only the first `active` entries are live.
        windows: [SpikeWindow; MAX_SPIKE_WINDOWS],
        /// Number of live windows.
        active: usize,
    },
}

/// The multiplier contributed by spike windows at `t`: the maximum
/// multiplier among the windows containing `t` (overlapping spikes do
/// not stack — the tallest wins), 1 outside every window. Zero-width
/// windows contain no instant, so they contribute nothing.
fn spike_multiplier(windows: &[SpikeWindow], t: SimTime) -> f64 {
    windows
        .iter()
        .filter(|w| w.contains(t))
        .map(|w| w.multiplier)
        .reduce(f64::max)
        .unwrap_or(1.0)
}

/// The supremum of [`spike_multiplier`] over all `t` (≥ 1: outside every
/// window the multiplier is 1).
fn spike_envelope(windows: &[SpikeWindow]) -> f64 {
    windows
        .iter()
        .filter(|w| !w.duration.is_zero())
        .map(|w| w.multiplier)
        .fold(1.0, f64::max)
}

/// The sinusoidal diurnal multiplier at `t`.
fn diurnal_multiplier(period: SimDuration, amplitude: f64, phase: SimDuration, t: SimTime) -> f64 {
    let cycle = (t + phase).as_micros() % period.as_micros().max(1);
    let angle = cycle as f64 / period.as_micros().max(1) as f64 * std::f64::consts::TAU;
    (1.0 + amplitude * angle.sin()).max(0.0)
}

impl RateProfile {
    /// A diurnal wave that starts at its trough (the sine's minimum), so
    /// a run beginning at `t = 0` ramps up into the first "day".
    pub fn diurnal_from_trough(period: SimDuration, amplitude: f64) -> Self {
        // sin is minimal at 3/4 of the cycle.
        RateProfile::Diurnal {
            period,
            amplitude,
            phase: period / 2 + period / 4,
        }
    }

    /// A spikes profile over the given windows.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_SPIKE_WINDOWS`] windows are given.
    pub fn spikes(windows: &[SpikeWindow]) -> Self {
        let (fixed, active) = pack_windows(windows);
        RateProfile::Spikes {
            windows: fixed,
            active,
        }
    }

    /// Spike windows composed onto a diurnal baseline that starts at its
    /// trough — the `spike_storm` audience: replayed-highlight bursts on
    /// the day/night wave.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_SPIKE_WINDOWS`] windows are given.
    pub fn diurnal_with_spikes(
        period: SimDuration,
        amplitude: f64,
        windows: &[SpikeWindow],
    ) -> Self {
        let (fixed, active) = pack_windows(windows);
        RateProfile::DiurnalSpikes {
            period,
            amplitude,
            phase: period / 2 + period / 4,
            windows: fixed,
            active,
        }
    }

    /// Whether this is the constant profile (the exponential fast path).
    pub fn is_constant(&self) -> bool {
        matches!(self, RateProfile::Constant)
    }

    /// The rate multiplier at virtual time `t` (≥ 0). Overlapping spike
    /// windows do not stack: the largest containing multiplier wins.
    pub fn multiplier_at(&self, t: SimTime) -> f64 {
        match *self {
            RateProfile::Constant => 1.0,
            RateProfile::Diurnal {
                period,
                amplitude,
                phase,
            } => diurnal_multiplier(period, amplitude, phase, t),
            RateProfile::Spikes { windows, active } => spike_multiplier(&windows[..active], t),
            RateProfile::DiurnalSpikes {
                period,
                amplitude,
                phase,
                windows,
                active,
            } => {
                diurnal_multiplier(period, amplitude, phase, t)
                    * spike_multiplier(&windows[..active], t)
            }
        }
    }

    /// The supremum of [`RateProfile::multiplier_at`] over all `t` — the
    /// thinning envelope rate.
    pub fn max_multiplier(&self) -> f64 {
        match *self {
            RateProfile::Constant => 1.0,
            RateProfile::Diurnal { amplitude, .. } => 1.0 + amplitude,
            RateProfile::Spikes { windows, active } => spike_envelope(&windows[..active]),
            RateProfile::DiurnalSpikes {
                amplitude,
                windows,
                active,
                ..
            } => (1.0 + amplitude) * spike_envelope(&windows[..active]),
        }
    }

    /// The demand-forecast ratio: the rate multiplier `horizon` ahead of
    /// `now`, relative to the multiplier at `now`. Above 1 the audience
    /// is about to grow (a spike window opening, the diurnal wave
    /// climbing); below 1 it is about to shrink. The predictive
    /// autoscaler feeds this straight into its scale decision. Clamped
    /// against a vanishing present multiplier so a silent trough does
    /// not produce an infinite ratio.
    pub fn forecast_ratio(&self, now: SimTime, horizon: SimDuration) -> f64 {
        self.forecast_ratio_lagged(now, horizon, SimDuration::ZERO)
    }

    /// [`RateProfile::forecast_ratio`] measured against the multiplier a
    /// little in the *past* instead of right now. A forecaster whose
    /// demand observations are EWMA-smoothed effectively sees the rate
    /// of `lag` ago; comparing the future against that reference keeps
    /// the ratio elevated through a spike's onset (when the rate has
    /// already jumped but the smoothed observations — and the demand
    /// itself — have not caught up yet) instead of collapsing to 1 and
    /// releasing capacity into the front of the burst.
    pub fn forecast_ratio_lagged(
        &self,
        now: SimTime,
        horizon: SimDuration,
        lag: SimDuration,
    ) -> f64 {
        let ahead = self.multiplier_at(now + horizon);
        let here = self.multiplier_at(now - lag).max(1e-3);
        (ahead / here).min(self.max_multiplier().max(1.0))
    }

    /// Validates the profile's parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            RateProfile::Constant => Ok(()),
            RateProfile::Diurnal {
                period, amplitude, ..
            } => validate_diurnal(period, amplitude),
            RateProfile::Spikes { windows, active } => validate_spikes(&windows, active),
            RateProfile::DiurnalSpikes {
                period,
                amplitude,
                windows,
                active,
                ..
            } => {
                validate_diurnal(period, amplitude)?;
                validate_spikes(&windows, active)
            }
        }
    }

    /// Draws the next arrival of the non-homogeneous Poisson process
    /// with base rate `1 / mean_gap`, starting the search at `from`.
    /// Returns `None` once the (thinned) arrival lands past `horizon`.
    ///
    /// The constant profile draws exactly one exponential gap — the same
    /// random-stream consumption as the original homogeneous process.
    pub fn sample_next_arrival(
        &self,
        mean_gap: SimDuration,
        from: SimTime,
        horizon: SimTime,
        rng: &mut SimRng,
    ) -> Option<SimTime> {
        if self.is_constant() {
            let gap = SimDuration::from_secs_f64(rng.exponential(mean_gap.as_secs_f64()));
            let at = from + gap;
            return (at <= horizon).then_some(at);
        }
        // Lewis–Shedler thinning at the envelope rate.
        let envelope = self.max_multiplier();
        debug_assert!(envelope >= 1.0, "multiplier supremum below the base rate");
        let envelope_gap = mean_gap.as_secs_f64() / envelope;
        let mut t = from;
        loop {
            t += SimDuration::from_secs_f64(rng.exponential(envelope_gap));
            if t > horizon {
                return None;
            }
            if rng.unit() < self.multiplier_at(t) / envelope {
                return Some(t);
            }
        }
    }
}

/// Copies `windows` into the fixed-size array a profile embeds.
///
/// # Panics
///
/// Panics if more than [`MAX_SPIKE_WINDOWS`] windows are given.
fn pack_windows(windows: &[SpikeWindow]) -> ([SpikeWindow; MAX_SPIKE_WINDOWS], usize) {
    assert!(
        windows.len() <= MAX_SPIKE_WINDOWS,
        "at most {MAX_SPIKE_WINDOWS} spike windows, got {}",
        windows.len()
    );
    let mut fixed = [SpikeWindow::default(); MAX_SPIKE_WINDOWS];
    fixed[..windows.len()].copy_from_slice(windows);
    (fixed, windows.len())
}

fn validate_diurnal(period: SimDuration, amplitude: f64) -> Result<(), String> {
    if period.is_zero() {
        return Err("diurnal period must be positive".into());
    }
    if !amplitude.is_finite() || !(0.0..=1.0).contains(&amplitude) {
        return Err(format!("diurnal amplitude out of [0, 1]: {amplitude}"));
    }
    Ok(())
}

fn validate_spikes(
    windows: &[SpikeWindow; MAX_SPIKE_WINDOWS],
    active: usize,
) -> Result<(), String> {
    if active > MAX_SPIKE_WINDOWS {
        return Err(format!(
            "{active} spike windows exceed the {MAX_SPIKE_WINDOWS} cap"
        ));
    }
    for w in &windows[..active] {
        if !w.multiplier.is_finite() || w.multiplier < 0.0 {
            return Err(format!("spike multiplier invalid: {}", w.multiplier));
        }
        if w.duration.is_zero() {
            return Err("spike window duration must be positive".into());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile_matches_the_plain_exponential_stream() {
        let mean = SimDuration::from_secs(10);
        let horizon = SimTime::from_secs(1_000_000);
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        let mut t = SimTime::ZERO;
        for _ in 0..200 {
            let gap = SimDuration::from_secs_f64(a.exponential(mean.as_secs_f64()));
            let expected = t + gap;
            let got = RateProfile::Constant
                .sample_next_arrival(mean, t, horizon, &mut b)
                .expect("inside horizon");
            assert_eq!(got, expected, "constant path changed the draw sequence");
            t = expected;
        }
    }

    #[test]
    fn diurnal_multiplier_waves_between_trough_and_peak() {
        let p = RateProfile::diurnal_from_trough(SimDuration::from_secs(86_400), 0.8);
        assert!(p.validate().is_ok());
        let trough = p.multiplier_at(SimTime::ZERO);
        let peak = p.multiplier_at(SimTime::from_secs(43_200));
        assert!((trough - 0.2).abs() < 1e-6, "trough {trough}");
        assert!((peak - 1.8).abs() < 1e-6, "peak {peak}");
        assert!((p.max_multiplier() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn thinning_tracks_the_diurnal_wave() {
        let p = RateProfile::diurnal_from_trough(SimDuration::from_secs(1_000), 0.9);
        let mean = SimDuration::from_secs_f64(0.5);
        let horizon = SimTime::from_secs(10_000);
        let mut rng = SimRng::seed_from_u64(11);
        let mut t = SimTime::ZERO;
        let mut low_half = 0usize; // cycle positions [0, 500): around the trough
        let mut high_half = 0usize; // cycle positions [500, 1000): around the peak
        while let Some(at) = p.sample_next_arrival(mean, t, horizon, &mut rng) {
            // diurnal_from_trough: trough at cycle position 0, peak at
            // position period/2 — compare the quarter-cycles centred on
            // each.
            let cycle_pos = at.as_micros() % 1_000_000_000;
            if (250_000_000..750_000_000).contains(&cycle_pos) {
                high_half += 1;
            } else {
                low_half += 1;
            }
            t = at;
        }
        assert!(
            high_half as f64 > low_half as f64 * 1.5,
            "thinning did not follow the wave: low {low_half} high {high_half}"
        );
    }

    #[test]
    fn spike_windows_multiply_the_rate() {
        let p = RateProfile::spikes(&[
            SpikeWindow {
                start: SimTime::from_secs(100),
                duration: SimDuration::from_secs(50),
                multiplier: 5.0,
            },
            SpikeWindow {
                start: SimTime::from_secs(400),
                duration: SimDuration::from_secs(50),
                multiplier: 0.0,
            },
        ]);
        assert!(p.validate().is_ok());
        assert_eq!(p.multiplier_at(SimTime::from_secs(99)), 1.0);
        assert_eq!(p.multiplier_at(SimTime::from_secs(120)), 5.0);
        assert_eq!(p.multiplier_at(SimTime::from_secs(150)), 1.0);
        assert_eq!(p.multiplier_at(SimTime::from_secs(420)), 0.0);
        assert_eq!(p.max_multiplier(), 5.0);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let p = RateProfile::diurnal_from_trough(SimDuration::from_secs(600), 0.5);
        let mean = SimDuration::from_secs(1);
        let horizon = SimTime::from_secs(3_600);
        let draw = |seed: u64| {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut t = SimTime::ZERO;
            let mut out = Vec::new();
            while let Some(at) = p.sample_next_arrival(mean, t, horizon, &mut rng) {
                out.push(at);
                t = at;
            }
            out
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    /// Counts arrivals of `p` inside `[from, to)` over one seeded run.
    fn arrivals_in(
        p: &RateProfile,
        seed: u64,
        horizon: SimTime,
        from: SimTime,
        to: SimTime,
    ) -> usize {
        let mean = SimDuration::from_secs_f64(0.25);
        let mut rng = SimRng::seed_from_u64(seed);
        let mut t = SimTime::ZERO;
        let mut count = 0usize;
        while let Some(at) = p.sample_next_arrival(mean, t, horizon, &mut rng) {
            if at >= from && at < to {
                count += 1;
            }
            t = at;
        }
        count
    }

    #[test]
    fn spike_thinning_matches_the_profile_rate_within_tolerance() {
        // A 5× spike over [2000, 3000) on a base rate of 4/s: the
        // empirical arrival rate inside the window must sit near 20/s,
        // the rate outside near 4/s.
        let p = RateProfile::spikes(&[SpikeWindow {
            start: SimTime::from_secs(2_000),
            duration: SimDuration::from_secs(1_000),
            multiplier: 5.0,
        }]);
        let horizon = SimTime::from_secs(4_000);
        let inside = arrivals_in(
            &p,
            23,
            horizon,
            SimTime::from_secs(2_000),
            SimTime::from_secs(3_000),
        );
        let outside = arrivals_in(&p, 23, horizon, SimTime::ZERO, SimTime::from_secs(2_000));
        let inside_rate = inside as f64 / 1_000.0;
        let outside_rate = outside as f64 / 2_000.0;
        assert!(
            (inside_rate - 20.0).abs() / 20.0 < 0.10,
            "in-spike rate {inside_rate}/s should be ≈ 20/s"
        );
        assert!(
            (outside_rate - 4.0).abs() / 4.0 < 0.10,
            "baseline rate {outside_rate}/s should be ≈ 4/s"
        );
    }

    #[test]
    fn spike_sampling_is_seed_deterministic() {
        let p = RateProfile::spikes(&[
            SpikeWindow {
                start: SimTime::from_secs(100),
                duration: SimDuration::from_secs(60),
                multiplier: 6.0,
            },
            SpikeWindow {
                start: SimTime::from_secs(400),
                duration: SimDuration::from_secs(30),
                multiplier: 0.2,
            },
        ]);
        let draw = |seed: u64| {
            let mean = SimDuration::from_secs(1);
            let horizon = SimTime::from_secs(1_000);
            let mut rng = SimRng::seed_from_u64(seed);
            let mut t = SimTime::ZERO;
            let mut out = Vec::new();
            while let Some(at) = p.sample_next_arrival(mean, t, horizon, &mut rng) {
                out.push(at);
                t = at;
            }
            out
        };
        assert_eq!(draw(31), draw(31));
        assert_ne!(draw(31), draw(32));
    }

    #[test]
    fn overlapping_spikes_take_the_tallest_multiplier() {
        let overlapping = RateProfile::spikes(&[
            SpikeWindow {
                start: SimTime::from_secs(100),
                duration: SimDuration::from_secs(100),
                multiplier: 3.0,
            },
            SpikeWindow {
                start: SimTime::from_secs(150),
                duration: SimDuration::from_secs(100),
                multiplier: 7.0,
            },
        ]);
        assert_eq!(overlapping.multiplier_at(SimTime::from_secs(120)), 3.0);
        assert_eq!(overlapping.multiplier_at(SimTime::from_secs(180)), 7.0);
        assert_eq!(overlapping.multiplier_at(SimTime::from_secs(220)), 7.0);
        assert_eq!(overlapping.max_multiplier(), 7.0);
        // Order independence: the reversed window list composes the same.
        let reversed = RateProfile::spikes(&[
            SpikeWindow {
                start: SimTime::from_secs(150),
                duration: SimDuration::from_secs(100),
                multiplier: 7.0,
            },
            SpikeWindow {
                start: SimTime::from_secs(100),
                duration: SimDuration::from_secs(100),
                multiplier: 3.0,
            },
        ]);
        for secs in [90, 120, 180, 220, 260] {
            let t = SimTime::from_secs(secs);
            assert_eq!(overlapping.multiplier_at(t), reversed.multiplier_at(t));
        }
    }

    #[test]
    fn zero_width_spikes_contain_no_instant_and_fail_validation() {
        let w = SpikeWindow {
            start: SimTime::from_secs(100),
            duration: SimDuration::ZERO,
            multiplier: 9.0,
        };
        assert!(!w.contains(SimTime::from_secs(100)));
        let p = RateProfile::spikes(&[w]);
        // Even unvalidated, a zero-width window never perturbs the rate
        // or inflates the thinning envelope.
        assert_eq!(p.multiplier_at(SimTime::from_secs(100)), 1.0);
        assert_eq!(p.max_multiplier(), 1.0);
        assert!(p.validate().unwrap_err().contains("duration"));
    }

    #[test]
    fn diurnal_spikes_compose_multiplicatively() {
        let day = SimDuration::from_secs(1_000);
        // Peak of the trough-started wave is at period/2.
        let p = RateProfile::diurnal_with_spikes(
            day,
            0.5,
            &[SpikeWindow {
                start: SimTime::from_secs(400),
                duration: SimDuration::from_secs(200),
                multiplier: 4.0,
            }],
        );
        assert!(p.validate().is_ok());
        // At the wave's peak (t = 500) inside the spike: 1.5 × 4.
        assert!((p.multiplier_at(SimTime::from_secs(500)) - 6.0).abs() < 1e-9);
        // At the trough (t = 0), outside the spike: 0.5.
        assert!((p.multiplier_at(SimTime::ZERO) - 0.5).abs() < 1e-9);
        // Envelope covers the worst case.
        assert!((p.max_multiplier() - 6.0).abs() < 1e-12);
        let bad = RateProfile::DiurnalSpikes {
            period: SimDuration::ZERO,
            amplitude: 0.5,
            phase: SimDuration::ZERO,
            windows: [SpikeWindow::default(); MAX_SPIKE_WINDOWS],
            active: 0,
        };
        assert!(bad.validate().unwrap_err().contains("period"));
    }

    #[test]
    fn forecast_ratio_sees_the_spike_coming() {
        let p = RateProfile::spikes(&[SpikeWindow {
            start: SimTime::from_secs(300),
            duration: SimDuration::from_secs(100),
            multiplier: 6.0,
        }]);
        let horizon = SimDuration::from_secs(60);
        // One horizon before the spike opens, the ratio jumps to 6.
        assert!((p.forecast_ratio(SimTime::from_secs(250), horizon) - 6.0).abs() < 1e-9);
        // Inside the spike looking past its end, the ratio collapses.
        assert!((p.forecast_ratio(SimTime::from_secs(380), horizon) - 1.0 / 6.0).abs() < 1e-9);
        // Flat profiles forecast no change, and the ratio is capped by
        // the envelope even when the present multiplier vanishes.
        assert_eq!(
            RateProfile::Constant.forecast_ratio(SimTime::ZERO, horizon),
            1.0
        );
        let blackout = RateProfile::spikes(&[SpikeWindow {
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(50),
            multiplier: 0.0,
        }]);
        assert!(blackout.forecast_ratio(SimTime::from_secs(10), horizon) <= 1.0);
    }

    #[test]
    fn validation_catches_bad_profiles() {
        let p = RateProfile::Diurnal {
            period: SimDuration::ZERO,
            amplitude: 0.5,
            phase: SimDuration::ZERO,
        };
        assert!(p.validate().unwrap_err().contains("period"));
        let p = RateProfile::Diurnal {
            period: SimDuration::from_secs(60),
            amplitude: 1.5,
            phase: SimDuration::ZERO,
        };
        assert!(p.validate().unwrap_err().contains("amplitude"));
        let p = RateProfile::spikes(&[SpikeWindow {
            start: SimTime::ZERO,
            duration: SimDuration::ZERO,
            multiplier: 2.0,
        }]);
        assert!(p.validate().unwrap_err().contains("duration"));
    }

    #[test]
    #[should_panic(expected = "spike windows")]
    fn too_many_spike_windows_panic() {
        let w = SpikeWindow {
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(1),
            multiplier: 2.0,
        };
        RateProfile::spikes(&[w; MAX_SPIKE_WINDOWS + 1]);
    }
}

//! Time-varying arrival-rate profiles for the churn process.
//!
//! The paper's churn counterpart ([`crate::ChurnSpec`]) originally drew
//! arrivals from a *constant-rate* Poisson process. Real audiences are
//! not constant: they follow diurnal waves (the day/night cycle of a
//! global 3DTI broadcast) and flash spikes (a kickoff, a replayed
//! highlight). [`RateProfile`] generalises the arrival process into a
//! non-homogeneous Poisson process whose instantaneous rate is
//! `base_rate × multiplier(t)`, sampled by thinning (Lewis–Shedler):
//! candidate gaps are drawn at the profile's peak rate and accepted with
//! probability `multiplier(t) / max_multiplier`, which reproduces the
//! exact time-varying process without numerical integration.
//!
//! [`RateProfile::Constant`] bypasses thinning entirely and draws one
//! exponential gap per arrival — the *identical* random-stream
//! consumption of the original constant process, so every existing seed
//! replays byte-identically.

use serde::{Deserialize, Serialize};
use telecast_sim::{SimDuration, SimRng, SimTime};

/// Maximum number of spike windows a [`RateProfile::Spikes`] profile can
/// hold (a fixed array keeps the profile `Copy`, like the spec that
/// embeds it).
pub const MAX_SPIKE_WINDOWS: usize = 4;

/// One piecewise rate spike: the arrival rate is multiplied by
/// `multiplier` inside `[start, start + duration)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpikeWindow {
    /// When the spike begins.
    pub start: SimTime,
    /// How long it lasts.
    pub duration: SimDuration,
    /// Rate multiplier inside the window (≥ 0; above 1 is a flash crowd,
    /// below 1 a lull, 0 silences arrivals).
    pub multiplier: f64,
}

impl Default for SpikeWindow {
    fn default() -> Self {
        SpikeWindow {
            start: SimTime::ZERO,
            duration: SimDuration::ZERO,
            multiplier: 1.0,
        }
    }
}

impl SpikeWindow {
    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.start + self.duration
    }
}

/// How the churn arrival rate varies over virtual time, as a
/// dimensionless multiplier on the spec's base rate.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum RateProfile {
    /// The original homogeneous process: multiplier 1 forever.
    #[default]
    Constant,
    /// A sinusoidal day/night wave:
    /// `1 + amplitude · sin(2π · (t + phase) / period)`.
    Diurnal {
        /// Length of one full day/night cycle.
        period: SimDuration,
        /// Wave amplitude in `[0, 1]` — 0 degenerates to constant, 1
        /// silences the trough completely.
        amplitude: f64,
        /// Phase offset added to `t` before the sine (use
        /// [`RateProfile::diurnal_from_trough`] to start a run at the
        /// quiet point of the cycle).
        phase: SimDuration,
    },
    /// Piecewise flash spikes over an otherwise constant rate.
    Spikes {
        /// The spike windows; only the first `active` entries are live.
        windows: [SpikeWindow; MAX_SPIKE_WINDOWS],
        /// Number of live windows.
        active: usize,
    },
}

impl RateProfile {
    /// A diurnal wave that starts at its trough (the sine's minimum), so
    /// a run beginning at `t = 0` ramps up into the first "day".
    pub fn diurnal_from_trough(period: SimDuration, amplitude: f64) -> Self {
        // sin is minimal at 3/4 of the cycle.
        RateProfile::Diurnal {
            period,
            amplitude,
            phase: period / 2 + period / 4,
        }
    }

    /// A spikes profile over the given windows.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_SPIKE_WINDOWS`] windows are given.
    pub fn spikes(windows: &[SpikeWindow]) -> Self {
        assert!(
            windows.len() <= MAX_SPIKE_WINDOWS,
            "at most {MAX_SPIKE_WINDOWS} spike windows, got {}",
            windows.len()
        );
        let mut fixed = [SpikeWindow::default(); MAX_SPIKE_WINDOWS];
        fixed[..windows.len()].copy_from_slice(windows);
        RateProfile::Spikes {
            windows: fixed,
            active: windows.len(),
        }
    }

    /// Whether this is the constant profile (the exponential fast path).
    pub fn is_constant(&self) -> bool {
        matches!(self, RateProfile::Constant)
    }

    /// The rate multiplier at virtual time `t` (≥ 0).
    pub fn multiplier_at(&self, t: SimTime) -> f64 {
        match *self {
            RateProfile::Constant => 1.0,
            RateProfile::Diurnal {
                period,
                amplitude,
                phase,
            } => {
                let cycle = (t + phase).as_micros() % period.as_micros().max(1);
                let angle = cycle as f64 / period.as_micros().max(1) as f64 * std::f64::consts::TAU;
                (1.0 + amplitude * angle.sin()).max(0.0)
            }
            RateProfile::Spikes { windows, active } => windows[..active]
                .iter()
                .filter(|w| w.contains(t))
                .map(|w| w.multiplier)
                .fold(1.0, |acc, m| if acc == 1.0 { m } else { acc.max(m) }),
        }
    }

    /// The supremum of [`RateProfile::multiplier_at`] over all `t` — the
    /// thinning envelope rate.
    pub fn max_multiplier(&self) -> f64 {
        match *self {
            RateProfile::Constant => 1.0,
            RateProfile::Diurnal { amplitude, .. } => 1.0 + amplitude,
            RateProfile::Spikes { windows, active } => windows[..active]
                .iter()
                .map(|w| w.multiplier)
                .fold(1.0, f64::max),
        }
    }

    /// Validates the profile's parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            RateProfile::Constant => Ok(()),
            RateProfile::Diurnal {
                period, amplitude, ..
            } => {
                if period.is_zero() {
                    return Err("diurnal period must be positive".into());
                }
                if !amplitude.is_finite() || !(0.0..=1.0).contains(&amplitude) {
                    return Err(format!("diurnal amplitude out of [0, 1]: {amplitude}"));
                }
                Ok(())
            }
            RateProfile::Spikes { windows, active } => {
                if active > MAX_SPIKE_WINDOWS {
                    return Err(format!(
                        "{active} spike windows exceed the {MAX_SPIKE_WINDOWS} cap"
                    ));
                }
                for w in &windows[..active] {
                    if !w.multiplier.is_finite() || w.multiplier < 0.0 {
                        return Err(format!("spike multiplier invalid: {}", w.multiplier));
                    }
                    if w.duration.is_zero() {
                        return Err("spike window duration must be positive".into());
                    }
                }
                Ok(())
            }
        }
    }

    /// Draws the next arrival of the non-homogeneous Poisson process
    /// with base rate `1 / mean_gap`, starting the search at `from`.
    /// Returns `None` once the (thinned) arrival lands past `horizon`.
    ///
    /// The constant profile draws exactly one exponential gap — the same
    /// random-stream consumption as the original homogeneous process.
    pub fn sample_next_arrival(
        &self,
        mean_gap: SimDuration,
        from: SimTime,
        horizon: SimTime,
        rng: &mut SimRng,
    ) -> Option<SimTime> {
        if self.is_constant() {
            let gap = SimDuration::from_secs_f64(rng.exponential(mean_gap.as_secs_f64()));
            let at = from + gap;
            return (at <= horizon).then_some(at);
        }
        // Lewis–Shedler thinning at the envelope rate.
        let envelope = self.max_multiplier();
        debug_assert!(envelope >= 1.0, "multiplier supremum below the base rate");
        let envelope_gap = mean_gap.as_secs_f64() / envelope;
        let mut t = from;
        loop {
            t += SimDuration::from_secs_f64(rng.exponential(envelope_gap));
            if t > horizon {
                return None;
            }
            if rng.unit() < self.multiplier_at(t) / envelope {
                return Some(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile_matches_the_plain_exponential_stream() {
        let mean = SimDuration::from_secs(10);
        let horizon = SimTime::from_secs(1_000_000);
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        let mut t = SimTime::ZERO;
        for _ in 0..200 {
            let gap = SimDuration::from_secs_f64(a.exponential(mean.as_secs_f64()));
            let expected = t + gap;
            let got = RateProfile::Constant
                .sample_next_arrival(mean, t, horizon, &mut b)
                .expect("inside horizon");
            assert_eq!(got, expected, "constant path changed the draw sequence");
            t = expected;
        }
    }

    #[test]
    fn diurnal_multiplier_waves_between_trough_and_peak() {
        let p = RateProfile::diurnal_from_trough(SimDuration::from_secs(86_400), 0.8);
        assert!(p.validate().is_ok());
        let trough = p.multiplier_at(SimTime::ZERO);
        let peak = p.multiplier_at(SimTime::from_secs(43_200));
        assert!((trough - 0.2).abs() < 1e-6, "trough {trough}");
        assert!((peak - 1.8).abs() < 1e-6, "peak {peak}");
        assert!((p.max_multiplier() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn thinning_tracks_the_diurnal_wave() {
        let p = RateProfile::diurnal_from_trough(SimDuration::from_secs(1_000), 0.9);
        let mean = SimDuration::from_secs_f64(0.5);
        let horizon = SimTime::from_secs(10_000);
        let mut rng = SimRng::seed_from_u64(11);
        let mut t = SimTime::ZERO;
        let mut low_half = 0usize; // cycle positions [0, 500): around the trough
        let mut high_half = 0usize; // cycle positions [500, 1000): around the peak
        while let Some(at) = p.sample_next_arrival(mean, t, horizon, &mut rng) {
            // diurnal_from_trough: trough at cycle position 0, peak at
            // position period/2 — compare the quarter-cycles centred on
            // each.
            let cycle_pos = at.as_micros() % 1_000_000_000;
            if (250_000_000..750_000_000).contains(&cycle_pos) {
                high_half += 1;
            } else {
                low_half += 1;
            }
            t = at;
        }
        assert!(
            high_half as f64 > low_half as f64 * 1.5,
            "thinning did not follow the wave: low {low_half} high {high_half}"
        );
    }

    #[test]
    fn spike_windows_multiply_the_rate() {
        let p = RateProfile::spikes(&[
            SpikeWindow {
                start: SimTime::from_secs(100),
                duration: SimDuration::from_secs(50),
                multiplier: 5.0,
            },
            SpikeWindow {
                start: SimTime::from_secs(400),
                duration: SimDuration::from_secs(50),
                multiplier: 0.0,
            },
        ]);
        assert!(p.validate().is_ok());
        assert_eq!(p.multiplier_at(SimTime::from_secs(99)), 1.0);
        assert_eq!(p.multiplier_at(SimTime::from_secs(120)), 5.0);
        assert_eq!(p.multiplier_at(SimTime::from_secs(150)), 1.0);
        assert_eq!(p.multiplier_at(SimTime::from_secs(420)), 0.0);
        assert_eq!(p.max_multiplier(), 5.0);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let p = RateProfile::diurnal_from_trough(SimDuration::from_secs(600), 0.5);
        let mean = SimDuration::from_secs(1);
        let horizon = SimTime::from_secs(3_600);
        let draw = |seed: u64| {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut t = SimTime::ZERO;
            let mut out = Vec::new();
            while let Some(at) = p.sample_next_arrival(mean, t, horizon, &mut rng) {
                out.push(at);
                t = at;
            }
            out
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    fn validation_catches_bad_profiles() {
        let p = RateProfile::Diurnal {
            period: SimDuration::ZERO,
            amplitude: 0.5,
            phase: SimDuration::ZERO,
        };
        assert!(p.validate().unwrap_err().contains("period"));
        let p = RateProfile::Diurnal {
            period: SimDuration::from_secs(60),
            amplitude: 1.5,
            phase: SimDuration::ZERO,
        };
        assert!(p.validate().unwrap_err().contains("amplitude"));
        let p = RateProfile::spikes(&[SpikeWindow {
            start: SimTime::ZERO,
            duration: SimDuration::ZERO,
            multiplier: 2.0,
        }]);
        assert!(p.validate().unwrap_err().contains("duration"));
    }

    #[test]
    #[should_panic(expected = "spike windows")]
    fn too_many_spike_windows_panic() {
        let w = SpikeWindow {
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(1),
            multiplier: 2.0,
        };
        RateProfile::spikes(&[w; MAX_SPIKE_WINDOWS + 1]);
    }
}

//! Views, the differentiation function, and stream priorities (paper §II-B).
//!
//! A viewer's **global view** `v` selects one **local view** per producer
//! site; each local view is the site's streams ranked by
//! `df(S, v) = S.w · v.w` and truncated by a cutoff. Priorities *across*
//! sites compare `η − df`, where `η` is the 1-based rank of the stream
//! inside its own site (lower `η − df` ⇒ higher priority).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::producer::ProducerSite;
use crate::stream::{Orientation, StreamId, StreamInfo};

/// Identifier of a global view within a [`ViewCatalog`].
///
/// Two viewers requesting the same `ViewId` are in the same view group
/// (the unit of overlay sharing in §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ViewId(u32);

impl ViewId {
    /// Creates a view id from its catalog index.
    pub const fn new(index: u32) -> Self {
        ViewId(index)
    }

    /// Raw catalog index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One stream inside a view together with its priority coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrioritizedStream {
    /// The stream.
    pub stream: StreamId,
    /// `df(S, v)` — importance of the stream in this view, in `[-1, 1]`.
    pub df: f64,
    /// `η` — 1-based priority index inside the stream's own site (1 =
    /// most important).
    pub eta: u32,
    /// Required bandwidth of the stream in Kbps.
    pub bitrate_kbps: u64,
}

impl PrioritizedStream {
    /// The paper's global priority key `η − df`; **lower is more
    /// important**.
    pub fn global_key(&self) -> f64 {
        self.eta as f64 - self.df
    }
}

/// The selected streams of one site for a given view, in priority order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalView {
    site_index: usize,
    streams: Vec<PrioritizedStream>,
}

impl LocalView {
    /// Computes the local view of `site` for view orientation `v`.
    ///
    /// Streams are ranked by descending `df`, assigned `η` by rank, then
    /// truncated: a stream is kept while `df ≥ cutoff` and at most
    /// `max_streams` are kept (the run-time cutoff of §II-D). At least one
    /// stream (the top-priority one) is always kept, matching the paper's
    /// admission rule that a local view is served by at least its highest
    /// priority stream.
    ///
    /// # Panics
    ///
    /// Panics if `max_streams` is zero or the site has no cameras.
    pub fn compute(site: &ProducerSite, v: Orientation, cutoff: f64, max_streams: usize) -> Self {
        assert!(max_streams > 0, "local view must keep at least one stream");
        let mut ranked: Vec<(StreamInfo, f64)> = site
            .streams()
            .iter()
            .map(|s| (*s, s.orientation.dot(v)))
            .collect();
        assert!(!ranked.is_empty(), "site has no cameras");
        // Descending df; ties broken by camera index for determinism.
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("df is never NaN")
                .then_with(|| a.0.id.camera().cmp(&b.0.id.camera()))
        });
        let streams = ranked
            .into_iter()
            .enumerate()
            .take(max_streams)
            .take_while(|(rank, (_, df))| *rank == 0 || *df >= cutoff)
            .map(|(rank, (info, df))| PrioritizedStream {
                stream: info.id,
                df,
                eta: rank as u32 + 1,
                bitrate_kbps: info.bitrate_kbps,
            })
            .collect();
        LocalView {
            site_index: site.id().index(),
            streams,
        }
    }

    /// The site this local view selects from.
    pub fn site_index(&self) -> usize {
        self.site_index
    }

    /// Selected streams in priority order (η = 1 first).
    pub fn streams(&self) -> &[PrioritizedStream] {
        &self.streams
    }

    /// The highest-priority stream of this local view.
    pub fn top_stream(&self) -> &PrioritizedStream {
        &self.streams[0]
    }
}

/// A global view — the paper's **4D content**: one local view per site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalView {
    id: ViewId,
    orientation_degrees: f64,
    locals: Vec<LocalView>,
}

impl GlobalView {
    /// Assembles a global view from per-site local views.
    ///
    /// # Panics
    ///
    /// Panics if `locals` is empty.
    pub fn new(id: ViewId, orientation: Orientation, locals: Vec<LocalView>) -> Self {
        assert!(!locals.is_empty(), "a global view spans at least one site");
        GlobalView {
            id,
            orientation_degrees: orientation.degrees(),
            locals,
        }
    }

    /// The view's identifier.
    pub fn id(&self) -> ViewId {
        self.id
    }

    /// The viewing orientation.
    pub fn orientation(&self) -> Orientation {
        Orientation::from_degrees(self.orientation_degrees)
    }

    /// Per-site local views.
    pub fn locals(&self) -> &[LocalView] {
        &self.locals
    }

    /// Number of producer sites (`n` in the admission constraint
    /// `N_accepted ≥ n`).
    pub fn site_count(&self) -> usize {
        self.locals.len()
    }

    /// All streams of the 4D content in **global priority order**
    /// (ascending `η − df`, i.e. most important first). Ties are broken by
    /// site then camera index for determinism.
    pub fn streams_by_priority(&self) -> Vec<PrioritizedStream> {
        let mut all: Vec<PrioritizedStream> = self
            .locals
            .iter()
            .flat_map(|l| l.streams().iter().copied())
            .collect();
        all.sort_by(|a, b| {
            a.global_key()
                .partial_cmp(&b.global_key())
                .expect("priority key is never NaN")
                .then_with(|| a.stream.cmp(&b.stream))
        });
        all
    }

    /// Iterates over all stream ids in the view (unordered).
    pub fn streams(&self) -> impl Iterator<Item = StreamId> + '_ {
        self.locals
            .iter()
            .flat_map(|l| l.streams().iter().map(|p| p.stream))
    }

    /// Whether `other` denotes a different view per §II-C: `vi ≠ vj` iff
    /// some stream of one is missing from the other.
    pub fn differs_from(&self, other: &GlobalView) -> bool {
        let mine: std::collections::BTreeSet<_> = self.streams().collect();
        let theirs: std::collections::BTreeSet<_> = other.streams().collect();
        mine != theirs
    }

    /// Streams of `self` not present in `other` — the subscriptions a
    /// view change must add (and, with arguments swapped, drop).
    pub fn streams_missing_from<'a>(
        &'a self,
        other: &GlobalView,
    ) -> impl Iterator<Item = StreamId> + 'a {
        let theirs: std::collections::BTreeSet<_> = other.streams().collect();
        self.streams().filter(move |s| !theirs.contains(s))
    }
}

/// The set of selectable global views in a session.
///
/// The evaluation uses canonical views: one per camera orientation, each
/// selecting the 3 most-aligned streams per site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewCatalog {
    views: Vec<GlobalView>,
}

impl ViewCatalog {
    /// Builds the canonical catalog for `sites`: one global view per
    /// distinct camera orientation of the first site, each keeping
    /// `streams_per_site` streams per site (cutoff chosen to admit exactly
    /// the nearest cameras).
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty or `streams_per_site` is zero.
    pub fn canonical(sites: &[ProducerSite], streams_per_site: usize) -> Self {
        assert!(!sites.is_empty(), "catalog needs at least one site");
        assert!(streams_per_site > 0, "views need at least one stream");
        let angles: Vec<f64> = sites[0]
            .streams()
            .iter()
            .map(|s| s.orientation.degrees())
            .collect();
        let views = angles
            .iter()
            .enumerate()
            .map(|(i, &deg)| {
                let v = Orientation::from_degrees(deg);
                let locals = sites
                    .iter()
                    // cutoff −1 admits everything; the per-site cap does
                    // the paper's "3 from each producer" truncation.
                    .map(|site| LocalView::compute(site, v, -1.0, streams_per_site))
                    .collect();
                GlobalView::new(ViewId::new(i as u32), v, locals)
            })
            .collect();
        ViewCatalog { views }
    }

    /// Builds a catalog from explicit views.
    ///
    /// # Panics
    ///
    /// Panics if `views` is empty or ids don't match positions.
    pub fn from_views(views: Vec<GlobalView>) -> Self {
        assert!(!views.is_empty(), "catalog cannot be empty");
        for (i, v) in views.iter().enumerate() {
            assert_eq!(v.id().index(), i, "view ids must match catalog order");
        }
        ViewCatalog { views }
    }

    /// Number of selectable views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether the catalog is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Looks up a view.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the catalog.
    pub fn view(&self, id: ViewId) -> &GlobalView {
        &self.views[id.index()]
    }

    /// Iterates over all views.
    pub fn iter(&self) -> impl Iterator<Item = &GlobalView> {
        self.views.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::SiteId;

    fn teeve_sites() -> Vec<ProducerSite> {
        ProducerSite::teeve_pair().to_vec()
    }

    #[test]
    fn local_view_ranks_by_df() {
        let sites = teeve_sites();
        let v = Orientation::from_degrees(0.0);
        let local = LocalView::compute(&sites[0], v, -1.0, 3);
        assert_eq!(local.streams().len(), 3);
        // Rank 1 is the camera pointing straight at the view.
        assert!((local.top_stream().df - 1.0).abs() < 1e-9);
        assert_eq!(local.top_stream().eta, 1);
        // df non-increasing, η strictly increasing.
        let s = local.streams();
        for w in s.windows(2) {
            assert!(w[0].df >= w[1].df);
            assert_eq!(w[1].eta, w[0].eta + 1);
        }
    }

    #[test]
    fn cutoff_drops_low_importance_streams() {
        let sites = teeve_sites();
        let v = Orientation::from_degrees(0.0);
        // cos(45°) ≈ 0.707; cutoff 0.8 keeps only the aligned camera.
        let local = LocalView::compute(&sites[0], v, 0.8, 8);
        assert_eq!(local.streams().len(), 1);
        // cutoff 0.5 keeps the aligned camera and both 45° neighbours.
        let local = LocalView::compute(&sites[0], v, 0.5, 8);
        assert_eq!(local.streams().len(), 3);
    }

    #[test]
    fn top_stream_survives_any_cutoff() {
        let sites = teeve_sites();
        let v = Orientation::from_degrees(22.0);
        let local = LocalView::compute(&sites[0], v, 2.0, 8); // impossible cutoff
        assert_eq!(local.streams().len(), 1, "highest priority stream kept");
    }

    #[test]
    fn canonical_catalog_matches_paper_setup() {
        let sites = teeve_sites();
        let catalog = ViewCatalog::canonical(&sites, 3);
        assert_eq!(catalog.len(), 8); // one view per camera angle
        for view in catalog.iter() {
            assert_eq!(view.site_count(), 2);
            assert_eq!(view.streams().count(), 6); // 3 per site
        }
    }

    #[test]
    fn global_priority_interleaves_sites() {
        let sites = teeve_sites();
        let catalog = ViewCatalog::canonical(&sites, 3);
        let ordered = catalog.view(ViewId::new(0)).streams_by_priority();
        assert_eq!(ordered.len(), 6);
        // Keys ascend.
        for w in ordered.windows(2) {
            assert!(w[0].global_key() <= w[1].global_key());
        }
        // The two η=1 streams (one per site) come before any η=2 stream.
        let first_two: Vec<u32> = ordered[..2].iter().map(|p| p.eta).collect();
        assert_eq!(first_two, vec![1, 1]);
    }

    #[test]
    fn view_difference_follows_definition() {
        let sites = teeve_sites();
        let catalog = ViewCatalog::canonical(&sites, 3);
        let v0 = catalog.view(ViewId::new(0));
        let v1 = catalog.view(ViewId::new(1));
        assert!(v0.differs_from(v1));
        assert!(!v0.differs_from(v0));
        // Adjacent views (45° apart) share some streams but not all.
        let added: Vec<_> = v1.streams_missing_from(v0).collect();
        assert!(!added.is_empty());
        assert!(added.len() < v1.streams().count());
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_max_streams_panics() {
        let sites = teeve_sites();
        LocalView::compute(&sites[0], Orientation::from_degrees(0.0), -1.0, 0);
    }

    #[test]
    fn catalog_from_views_validates_ids() {
        let sites = teeve_sites();
        let v = Orientation::from_degrees(0.0);
        let locals = vec![
            LocalView::compute(&sites[0], v, -1.0, 2),
            LocalView::compute(&sites[1], v, -1.0, 2),
        ];
        let view = GlobalView::new(ViewId::new(0), v, locals);
        let catalog = ViewCatalog::from_views(vec![view]);
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog.view(ViewId::new(0)).site_count(), 2);
    }

    #[test]
    fn site_ids_present_in_view() {
        let sites = teeve_sites();
        let catalog = ViewCatalog::canonical(&sites, 3);
        let view = catalog.view(ViewId::new(2));
        let site_set: std::collections::BTreeSet<_> = view.streams().map(|s| s.site()).collect();
        assert_eq!(
            site_set,
            [SiteId::new(0), SiteId::new(1)].into_iter().collect()
        );
    }
}

//! Producer sites: camera rigs generating 3D streams (paper §II-A).

use serde::{Deserialize, Serialize};

use crate::stream::{Orientation, SiteId, StreamId, StreamInfo};

/// A 3DTI producer site: a gateway plus a ring of 3D cameras.
///
/// ```
/// use telecast_media::{ProducerSite, SiteId};
///
/// let site = ProducerSite::ring(SiteId::new(0), 8, 2_000, 10);
/// assert_eq!(site.streams().len(), 8);
/// // Cameras are evenly spaced around the rig.
/// assert!((site.streams()[2].orientation.degrees() - 90.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProducerSite {
    id: SiteId,
    streams: Vec<StreamInfo>,
}

impl ProducerSite {
    /// Creates a site whose `cameras` cameras are evenly spaced on a ring,
    /// all producing `bitrate_kbps` at `fps`.
    ///
    /// # Panics
    ///
    /// Panics if `cameras` is zero.
    pub fn ring(id: SiteId, cameras: u16, bitrate_kbps: u64, fps: u32) -> Self {
        assert!(cameras > 0, "a producer site needs at least one camera");
        let step = 360.0 / cameras as f64;
        let streams = (0..cameras)
            .map(|c| StreamInfo {
                id: StreamId::new(id, c),
                orientation: Orientation::from_degrees(step * c as f64),
                bitrate_kbps,
                fps,
            })
            .collect();
        ProducerSite { id, streams }
    }

    /// Creates a site from explicit stream descriptions.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty or contains a stream of another site.
    pub fn from_streams(id: SiteId, streams: Vec<StreamInfo>) -> Self {
        assert!(!streams.is_empty(), "a producer site needs streams");
        for s in &streams {
            assert_eq!(s.id.site(), id, "stream {} belongs to another site", s.id);
        }
        ProducerSite { id, streams }
    }

    /// The paper's evaluation setup: two sites with 8 cameras each,
    /// 2 Mbps per stream at 10 fps (TEEVE's typical rate).
    pub fn teeve_pair() -> [ProducerSite; 2] {
        [
            ProducerSite::ring(SiteId::new(0), 8, 2_000, 10),
            ProducerSite::ring(SiteId::new(1), 8, 2_000, 10),
        ]
    }

    /// The site's identifier.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// All camera streams, in camera order.
    pub fn streams(&self) -> &[StreamInfo] {
        &self.streams
    }

    /// Looks up one stream by camera index.
    pub fn stream(&self, camera: u16) -> Option<&StreamInfo> {
        self.streams.iter().find(|s| s.id.camera() == camera)
    }

    /// Aggregate bitrate of all cameras in Kbps.
    pub fn total_bitrate_kbps(&self) -> u64 {
        self.streams.iter().map(|s| s.bitrate_kbps).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_spacing_is_even() {
        let site = ProducerSite::ring(SiteId::new(0), 4, 1_000, 10);
        let degs: Vec<f64> = site
            .streams()
            .iter()
            .map(|s| s.orientation.degrees())
            .collect();
        assert_eq!(degs, vec![0.0, 90.0, 180.0, 270.0]);
    }

    #[test]
    fn teeve_pair_matches_evaluation() {
        let [a, b] = ProducerSite::teeve_pair();
        assert_eq!(a.streams().len(), 8);
        assert_eq!(b.streams().len(), 8);
        assert_eq!(a.total_bitrate_kbps(), 16_000); // 8 × 2 Mbps
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn stream_lookup() {
        let site = ProducerSite::ring(SiteId::new(2), 8, 2_000, 10);
        assert!(site.stream(7).is_some());
        assert!(site.stream(8).is_none());
    }

    #[test]
    #[should_panic(expected = "another site")]
    fn from_streams_rejects_foreign_streams() {
        let foreign = StreamInfo {
            id: StreamId::new(SiteId::new(1), 0),
            orientation: Orientation::from_degrees(0.0),
            bitrate_kbps: 2_000,
            fps: 10,
        };
        ProducerSite::from_streams(SiteId::new(0), vec![foreign]);
    }

    #[test]
    #[should_panic(expected = "at least one camera")]
    fn empty_ring_panics() {
        ProducerSite::ring(SiteId::new(0), 0, 2_000, 10);
    }
}

//! Synthetic TEEVE session traces.
//!
//! The paper drives each producer stream with traces "collected from a
//! TEEVE session, where two remote participants virtually fight with each
//! other using light sabers", each stream bounded by 2 Mbps. The original
//! traces were never released, so this generator synthesises per-stream
//! frame sequences with the same first-order shape: a configurable
//! fps/bitrate, lognormal frame-size marginals around `bitrate / fps`, and
//! AR(1) temporal correlation (activity bursts as the sabers swing). See
//! `DESIGN.md` §4.

use serde::{Deserialize, Serialize};
use telecast_sim::{SimDuration, SimRng, SimTime};

use crate::frame::{Frame, FrameNumber};
use crate::stream::{StreamId, StreamInfo};

/// Parameters of one synthetic TEEVE stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TeeveStreamConfig {
    /// Nominal bitrate in Kbps (paper: 2000).
    pub bitrate_kbps: u64,
    /// Frame rate in fps (TEEVE: ~10).
    pub fps: u32,
    /// σ of the lognormal size distribution (0 disables size noise).
    pub sigma: f64,
    /// AR(1) correlation of consecutive frame-size deviations, in `[0, 1)`.
    pub correlation: f64,
}

impl Default for TeeveStreamConfig {
    fn default() -> Self {
        TeeveStreamConfig {
            bitrate_kbps: 2_000,
            fps: 10,
            sigma: 0.2,
            correlation: 0.7,
        }
    }
}

impl TeeveStreamConfig {
    /// Config matching a [`StreamInfo`]'s rate and fps with default noise.
    pub fn for_stream(info: &StreamInfo) -> Self {
        TeeveStreamConfig {
            bitrate_kbps: info.bitrate_kbps,
            fps: info.fps,
            ..Default::default()
        }
    }

    /// Mean frame size in bytes.
    pub fn mean_frame_bytes(&self) -> f64 {
        self.bitrate_kbps as f64 * 1_000.0 / 8.0 / self.fps as f64
    }

    /// Time between consecutive captures.
    pub fn frame_period(&self) -> SimDuration {
        SimDuration::from_micros(1_000_000 / self.fps as u64)
    }
}

/// A deterministic generator of one stream's frame sequence.
///
/// ```
/// use telecast_media::{SiteId, StreamId, SyntheticTeeveTrace, TeeveStreamConfig};
///
/// let id = StreamId::new(SiteId::new(0), 3);
/// let mut trace = SyntheticTeeveTrace::new(id, TeeveStreamConfig::default(), 7);
/// let first = trace.next_frame();
/// let second = trace.next_frame();
/// assert_eq!(second.number.value(), first.number.value() + 1);
/// assert!(second.captured_at > first.captured_at);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticTeeveTrace {
    stream: StreamId,
    config: TeeveStreamConfig,
    rng: SimRng,
    next_number: FrameNumber,
    next_capture: SimTime,
    /// AR(1) state: previous deviation in log-space.
    log_dev: f64,
}

impl SyntheticTeeveTrace {
    /// Creates a trace for `stream`; the sequence is a pure function of
    /// `(stream, config, seed)`.
    pub fn new(stream: StreamId, config: TeeveStreamConfig, seed: u64) -> Self {
        let mix = seed
            ^ (stream.site().index() as u64) << 32
            ^ (stream.camera() as u64) << 16
            ^ 0x7EE7_E5E5;
        SyntheticTeeveTrace {
            stream,
            config,
            rng: SimRng::seed_from_u64(mix),
            next_number: FrameNumber::ZERO,
            next_capture: SimTime::ZERO,
            log_dev: 0.0,
        }
    }

    /// The stream this trace feeds.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// The stream configuration.
    pub fn config(&self) -> &TeeveStreamConfig {
        &self.config
    }

    /// Capture timestamp of the next frame to be generated.
    pub fn next_capture_at(&self) -> SimTime {
        self.next_capture
    }

    /// Generates the next frame of the sequence.
    pub fn next_frame(&mut self) -> Frame {
        let mean = self.config.mean_frame_bytes();
        let bytes = if self.config.sigma == 0.0 {
            mean
        } else {
            // AR(1) in log space keeps the marginal lognormal with the
            // configured σ while adding burst correlation.
            let rho = self.config.correlation;
            let innovation = self.rng.standard_normal() * (1.0 - rho * rho).sqrt();
            self.log_dev = rho * self.log_dev + innovation;
            let sigma = self.config.sigma;
            // E[exp(σZ)] = exp(σ²/2); divide it out to keep the mean exact.
            mean * (sigma * self.log_dev - sigma * sigma / 2.0).exp()
        };
        let frame = Frame {
            stream: self.stream,
            number: self.next_number,
            captured_at: self.next_capture,
            bytes: bytes.round().max(1.0) as u32,
        };
        self.next_number = self.next_number.next();
        self.next_capture += self.config.frame_period();
        frame
    }

    /// Generates all frames captured strictly before `until`.
    pub fn frames_until(&mut self, until: SimTime) -> Vec<Frame> {
        let mut out = Vec::new();
        while self.next_capture < until {
            out.push(self.next_frame());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::SiteId;

    fn id() -> StreamId {
        StreamId::new(SiteId::new(0), 0)
    }

    #[test]
    fn frame_numbers_and_timestamps_advance() {
        let mut t = SyntheticTeeveTrace::new(id(), TeeveStreamConfig::default(), 1);
        let frames = t.frames_until(SimTime::from_secs(1));
        assert_eq!(frames.len(), 10); // 10 fps for 1 s
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.number.value(), i as u64);
            assert_eq!(f.captured_at, SimTime::from_millis(100 * i as u64));
        }
    }

    #[test]
    fn long_run_rate_matches_bitrate() {
        let mut t = SyntheticTeeveTrace::new(id(), TeeveStreamConfig::default(), 2);
        let frames = t.frames_until(SimTime::from_secs(300));
        let total_bytes: u64 = frames.iter().map(|f| f.bytes as u64).sum();
        let rate_kbps = total_bytes as f64 * 8.0 / 1_000.0 / 300.0;
        assert!(
            (rate_kbps - 2_000.0).abs() / 2_000.0 < 0.05,
            "long-run rate {rate_kbps} Kbps deviates from 2 Mbps"
        );
    }

    #[test]
    fn sizes_are_correlated() {
        let mut t = SyntheticTeeveTrace::new(id(), TeeveStreamConfig::default(), 3);
        let frames = t.frames_until(SimTime::from_secs(200));
        let sizes: Vec<f64> = frames.iter().map(|f| f.bytes as f64).collect();
        let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
        let var: f64 = sizes.iter().map(|s| (s - mean).powi(2)).sum::<f64>();
        let cov: f64 = sizes
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>();
        let lag1 = cov / var;
        assert!(lag1 > 0.4, "lag-1 autocorrelation {lag1} too low for AR(1)");
    }

    #[test]
    fn zero_sigma_gives_constant_frames() {
        let config = TeeveStreamConfig {
            sigma: 0.0,
            ..Default::default()
        };
        let mut t = SyntheticTeeveTrace::new(id(), config, 4);
        let frames = t.frames_until(SimTime::from_secs(2));
        assert!(frames.iter().all(|f| f.bytes == 25_000));
    }

    #[test]
    fn deterministic_per_seed_and_stream() {
        let a: Vec<u32> = SyntheticTeeveTrace::new(id(), TeeveStreamConfig::default(), 5)
            .frames_until(SimTime::from_secs(5))
            .iter()
            .map(|f| f.bytes)
            .collect();
        let b: Vec<u32> = SyntheticTeeveTrace::new(id(), TeeveStreamConfig::default(), 5)
            .frames_until(SimTime::from_secs(5))
            .iter()
            .map(|f| f.bytes)
            .collect();
        assert_eq!(a, b);
        let other_stream = StreamId::new(SiteId::new(0), 1);
        let c: Vec<u32> = SyntheticTeeveTrace::new(other_stream, TeeveStreamConfig::default(), 5)
            .frames_until(SimTime::from_secs(5))
            .iter()
            .map(|f| f.bytes)
            .collect();
        assert_ne!(a, c, "different cameras get different traces");
    }

    #[test]
    fn config_derives_from_stream_info() {
        let info = StreamInfo {
            id: id(),
            orientation: crate::stream::Orientation::from_degrees(0.0),
            bitrate_kbps: 4_000,
            fps: 20,
        };
        let config = TeeveStreamConfig::for_stream(&info);
        assert_eq!(config.bitrate_kbps, 4_000);
        assert_eq!(config.fps, 20);
        assert_eq!(config.frame_period(), SimDuration::from_millis(50));
        assert_eq!(config.mean_frame_bytes(), 25_000.0);
    }
}

//! Stream identities and spatial orientation.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a 3DTI producer site (Site-A, Site-B, … in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(u16);

impl SiteId {
    /// Creates a site id from its index.
    pub const fn new(index: u16) -> Self {
        SiteId(index)
    }

    /// Raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Site-A, Site-B … beyond 26 sites fall back to numbers.
        if self.0 < 26 {
            write!(f, "site-{}", (b'A' + self.0 as u8) as char)
        } else {
            write!(f, "site-{}", self.0)
        }
    }
}

/// Identifier of a camera stream, globally unique across sites.
///
/// The paper writes `S_i^A` for stream `i` of Site-A; `StreamId` carries
/// both coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StreamId {
    site: SiteId,
    camera: u16,
}

impl StreamId {
    /// Creates the id of camera `camera` at `site`.
    pub const fn new(site: SiteId, camera: u16) -> Self {
        StreamId { site, camera }
    }

    /// The producing site.
    pub const fn site(self) -> SiteId {
        self.site
    }

    /// Camera index within the site.
    pub const fn camera(self) -> u16 {
        self.camera
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}@{}", self.camera, self.site)
    }
}

/// A unit orientation vector in the horizontal plane.
///
/// TEEVE camera rigs arrange 3D cameras in a ring around the capture space,
/// so orientations are angles in the plane; `df` is the dot product of two
/// such unit vectors (the cosine of their angular separation).
///
/// ```
/// use telecast_media::Orientation;
///
/// let front = Orientation::from_degrees(0.0);
/// let side = Orientation::from_degrees(90.0);
/// assert!((front.dot(side)).abs() < 1e-9);
/// assert!((front.dot(front) - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Orientation {
    radians: f64,
}

impl Orientation {
    /// Creates an orientation from an angle in degrees.
    pub fn from_degrees(degrees: f64) -> Self {
        Orientation {
            radians: degrees.to_radians(),
        }
    }

    /// Creates an orientation from an angle in radians.
    pub fn from_radians(radians: f64) -> Self {
        Orientation { radians }
    }

    /// The angle in degrees, normalised to `[0, 360)`.
    pub fn degrees(self) -> f64 {
        let d = self.radians.to_degrees() % 360.0;
        if d < 0.0 {
            d + 360.0
        } else {
            d
        }
    }

    /// Dot product of the two unit vectors — the paper's `S.w · v.w`.
    pub fn dot(self, other: Orientation) -> f64 {
        (self.radians - other.radians).cos()
    }
}

/// Static facts about one camera stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamInfo {
    /// The stream's identifier.
    pub id: StreamId,
    /// Spatial orientation of the capturing camera (`S.w`).
    pub orientation: Orientation,
    /// Nominal media bitrate in Kbps (the paper uses 2 Mbps per stream).
    pub bitrate_kbps: u64,
    /// Frame rate in frames per second.
    pub fps: u32,
}

impl StreamInfo {
    /// Mean frame size in bytes implied by bitrate and frame rate.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is zero.
    pub fn mean_frame_bytes(&self) -> u64 {
        assert!(self.fps > 0, "stream with zero frame rate");
        self.bitrate_kbps * 1_000 / 8 / self.fps as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_display_is_lettered() {
        assert_eq!(SiteId::new(0).to_string(), "site-A");
        assert_eq!(SiteId::new(1).to_string(), "site-B");
        assert_eq!(SiteId::new(30).to_string(), "site-30");
    }

    #[test]
    fn stream_id_coordinates() {
        let id = StreamId::new(SiteId::new(1), 4);
        assert_eq!(id.site(), SiteId::new(1));
        assert_eq!(id.camera(), 4);
        assert_eq!(id.to_string(), "S4@site-B");
    }

    #[test]
    fn orientation_dot_is_cosine() {
        let a = Orientation::from_degrees(0.0);
        assert!((a.dot(Orientation::from_degrees(45.0)) - 45f64.to_radians().cos()).abs() < 1e-12);
        assert!((a.dot(Orientation::from_degrees(180.0)) + 1.0).abs() < 1e-12);
        // Symmetric.
        let b = Orientation::from_degrees(77.0);
        assert!((a.dot(b) - b.dot(a)).abs() < 1e-12);
    }

    #[test]
    fn degrees_normalised() {
        assert!((Orientation::from_degrees(-90.0).degrees() - 270.0).abs() < 1e-9);
        assert!((Orientation::from_degrees(720.0).degrees() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn mean_frame_bytes_matches_paper() {
        let info = StreamInfo {
            id: StreamId::new(SiteId::new(0), 0),
            orientation: Orientation::from_degrees(0.0),
            bitrate_kbps: 2_000,
            fps: 10,
        };
        // 2 Mbps at 10 fps → 25 KB frames.
        assert_eq!(info.mean_frame_bytes(), 25_000);
    }
}

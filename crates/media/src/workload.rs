//! Viewer workload generators: arrivals, view popularity, view changes and
//! departures — the "dynamic viewer behavior" of the paper's challenge (3).

use serde::{Deserialize, Serialize};
use telecast_sim::{SimDuration, SimRng, SimTime};

use crate::popularity::{RefocusEvent, ViewPopularity};
use crate::view::ViewId;

/// How viewers arrive over virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalModel {
    /// All viewers arrive at the same instant (the paper's "large-scale
    /// simultaneous viewer arrivals").
    Flash,
    /// One viewer every `gap`; deterministic ramp.
    Staggered {
        /// Gap between consecutive arrivals.
        gap: SimDuration,
    },
    /// Poisson arrivals with the given mean inter-arrival time.
    Poisson {
        /// Mean inter-arrival time.
        mean_gap: SimDuration,
    },
}

impl ArrivalModel {
    /// Draws the arrival instants for `count` viewers starting at `from`,
    /// in non-decreasing order.
    pub fn arrivals(&self, count: usize, from: SimTime, rng: &mut SimRng) -> Vec<SimTime> {
        match *self {
            ArrivalModel::Flash => vec![from; count],
            ArrivalModel::Staggered { gap } => (0..count).map(|i| from + gap * i as u64).collect(),
            ArrivalModel::Poisson { mean_gap } => {
                let mut t = from;
                (0..count)
                    .map(|_| {
                        t += SimDuration::from_secs_f64(rng.exponential(mean_gap.as_secs_f64()));
                        t
                    })
                    .collect()
            }
        }
    }
}

/// How viewers pick views from the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ViewChoice {
    /// All viewers request the same view (maximum overlay sharing).
    Single(ViewId),
    /// Uniform choice over the catalog.
    Uniform,
    /// Zipf-distributed popularity with exponent `s` (rank 0 = the most
    /// popular view); models the skew of real audiences.
    Zipf {
        /// Zipf exponent; 0 degenerates to uniform.
        s: f64,
    },
}

impl ViewChoice {
    /// Draws one view from a catalog of `catalog_len` views.
    ///
    /// # Panics
    ///
    /// Panics if `catalog_len` is zero.
    pub fn sample(&self, catalog_len: usize, rng: &mut SimRng) -> ViewId {
        assert!(catalog_len > 0, "cannot choose from an empty catalog");
        match *self {
            ViewChoice::Single(v) => {
                assert!(v.index() < catalog_len, "view outside catalog");
                v
            }
            ViewChoice::Uniform => ViewId::new(rng.range(0..catalog_len as u32)),
            ViewChoice::Zipf { s } => ViewId::new(rng.zipf(catalog_len, s) as u32),
        }
    }

    /// Draws a view *different from* `current` (a view change target);
    /// falls back to `current` only for single-view catalogs.
    pub fn sample_change(&self, catalog_len: usize, current: ViewId, rng: &mut SimRng) -> ViewId {
        if catalog_len <= 1 {
            return current;
        }
        loop {
            let next = match *self {
                // Single-view choice has nowhere to go; hop uniformly.
                ViewChoice::Single(_) => ViewId::new(rng.range(0..catalog_len as u32)),
                _ => self.sample(catalog_len, rng),
            };
            if next != current {
                return next;
            }
        }
    }
}

/// One scripted viewer-behaviour event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadEvent {
    /// Viewer `viewer` joins requesting `view`.
    Join {
        /// Workload-local viewer index.
        viewer: usize,
        /// Requested view.
        view: ViewId,
    },
    /// Viewer switches to `view`.
    ViewChange {
        /// Workload-local viewer index.
        viewer: usize,
        /// The new view.
        view: ViewId,
    },
    /// Viewer leaves the session gracefully.
    Depart {
        /// Workload-local viewer index.
        viewer: usize,
    },
}

/// A fully-scripted viewer workload: a time-ordered list of joins, view
/// changes and departures, generated up front so experiments are
/// reproducible and schemes can be compared on identical inputs.
///
/// ```
/// use telecast_media::{ArrivalModel, ViewChoice, ViewerWorkload};
/// use telecast_sim::{SimRng, SimTime};
///
/// let mut rng = SimRng::seed_from_u64(1);
/// let wl = ViewerWorkload::builder(100, 8)
///     .arrivals(ArrivalModel::Flash)
///     .view_choice(ViewChoice::Zipf { s: 1.0 })
///     .build(&mut rng);
/// assert_eq!(wl.events().len(), 100); // joins only by default
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewerWorkload {
    events: Vec<(SimTime, WorkloadEvent)>,
    viewer_count: usize,
}

impl ViewerWorkload {
    /// Starts building a workload of `viewers` viewers over a catalog of
    /// `catalog_len` views.
    pub fn builder(viewers: usize, catalog_len: usize) -> ViewerWorkloadBuilder {
        ViewerWorkloadBuilder {
            viewers,
            catalog_len,
            arrivals: ArrivalModel::Flash,
            view_choice: ViewChoice::Uniform,
            start: SimTime::ZERO,
            view_changes_per_viewer: 0.0,
            view_change_window: SimDuration::from_secs(60),
            departure_fraction: 0.0,
            departure_window: SimDuration::from_secs(60),
            refocus: Vec::new(),
        }
    }

    /// The scripted events in non-decreasing time order.
    pub fn events(&self) -> &[(SimTime, WorkloadEvent)] {
        &self.events
    }

    /// Number of distinct viewers in the script.
    pub fn viewer_count(&self) -> usize {
        self.viewer_count
    }
}

/// Builder for [`ViewerWorkload`].
#[derive(Debug, Clone)]
pub struct ViewerWorkloadBuilder {
    viewers: usize,
    catalog_len: usize,
    arrivals: ArrivalModel,
    view_choice: ViewChoice,
    start: SimTime,
    view_changes_per_viewer: f64,
    view_change_window: SimDuration,
    departure_fraction: f64,
    departure_window: SimDuration,
    refocus: Vec<RefocusEvent>,
}

impl ViewerWorkloadBuilder {
    /// Sets the arrival model (default: flash crowd).
    pub fn arrivals(mut self, model: ArrivalModel) -> Self {
        self.arrivals = model;
        self
    }

    /// Sets the view-choice model (default: uniform).
    pub fn view_choice(mut self, choice: ViewChoice) -> Self {
        self.view_choice = choice;
        self
    }

    /// Sets the first arrival instant (default: time zero).
    pub fn start(mut self, at: SimTime) -> Self {
        self.start = at;
        self
    }

    /// Schedules on average `per_viewer` view changes per viewer, spread
    /// uniformly over `window` after each viewer's join.
    pub fn view_changes(mut self, per_viewer: f64, window: SimDuration) -> Self {
        self.view_changes_per_viewer = per_viewer;
        self.view_change_window = window;
        self
    }

    /// Makes `fraction` of viewers depart, at a uniform instant within
    /// `window` after their join.
    ///
    /// # Panics
    ///
    /// `build` panics if the fraction is outside `[0, 1]`.
    pub fn departures(mut self, fraction: f64, window: SimDuration) -> Self {
        self.departure_fraction = fraction;
        self.departure_window = window;
        self
    }

    /// Installs an audience-level [`ViewPopularity`]: the Zipf exponent
    /// replaces the view-choice model and the re-focus schedule is
    /// adopted wholesale (see [`ViewerWorkloadBuilder::refocus`]).
    ///
    /// # Panics
    ///
    /// `build` panics if any re-focus target lies outside the catalog.
    pub fn popularity(mut self, popularity: &ViewPopularity) -> Self {
        self.view_choice = popularity.choice();
        self.refocus = popularity.refocus_events().to_vec();
        self
    }

    /// Appends one correlated re-focus event: `event.fraction` of the
    /// audience hops to `event.target`, each participating viewer at an
    /// independent uniform instant inside `event.window` after
    /// `event.at`. Hops scheduled before a viewer's arrival are dropped;
    /// a viewer already watching the target stays put (no event). An
    /// empty schedule consumes **zero** extra RNG draws, so pre-existing
    /// workload seeds replay byte-identically.
    pub fn refocus(mut self, event: RefocusEvent) -> Self {
        self.refocus.push(event);
        self
    }

    /// Generates the scripted workload.
    ///
    /// Each viewer's individual Zipf re-picks and the correlated re-focus
    /// hops merge into one time-ordered chain per viewer, so a Zipf
    /// change after a re-focus hops away *from the re-focus target* — the
    /// drift that empties the storm view again and makes its tree worth
    /// pruning.
    ///
    /// # Panics
    ///
    /// Panics if the departure fraction is outside `[0, 1]`, the catalog
    /// is empty while viewers exist, or a re-focus event is invalid or
    /// targets a view outside the catalog.
    pub fn build(self, rng: &mut SimRng) -> ViewerWorkload {
        assert!(
            (0.0..=1.0).contains(&self.departure_fraction),
            "departure fraction out of range"
        );
        for event in &self.refocus {
            if let Err(err) = event.validate() {
                panic!("invalid refocus event: {err}");
            }
            assert!(
                event.target.index() < self.catalog_len,
                "refocus target {} outside catalog of {} views",
                event.target,
                self.catalog_len
            );
        }
        let mut events: Vec<(SimTime, WorkloadEvent)> = Vec::new();
        let arrivals = self.arrivals.arrivals(self.viewers, self.start, rng);
        for (viewer, &at) in arrivals.iter().enumerate() {
            let view = self.view_choice.sample(self.catalog_len, rng);
            events.push((at, WorkloadEvent::Join { viewer, view }));

            let changes = poisson_count(self.view_changes_per_viewer, rng);
            // `None` marks an individual Zipf re-pick (target drawn at
            // emission so it chains off the then-current view); `Some` a
            // correlated re-focus hop with its target fixed up front.
            let mut hops: Vec<(SimTime, Option<ViewId>)> = (0..changes)
                .map(|_| (at + jitter(self.view_change_window, rng), None))
                .collect();
            for event in &self.refocus {
                if rng.chance(event.fraction) {
                    let t = event.at + jitter(event.window, rng);
                    // Hops scheduled before this viewer arrives are lost.
                    if t >= at {
                        hops.push((t, Some(event.target)));
                    }
                }
            }
            hops.sort_unstable_by_key(|&(t, target)| (t, target.is_some(), target));
            let mut current = view;
            for (t, target) in hops {
                let next = match target {
                    Some(target) => target,
                    None => self
                        .view_choice
                        .sample_change(self.catalog_len, current, rng),
                };
                if next == current {
                    // Already watching the re-focus target: no event.
                    continue;
                }
                current = next;
                events.push((
                    t,
                    WorkloadEvent::ViewChange {
                        viewer,
                        view: current,
                    },
                ));
            }

            if rng.chance(self.departure_fraction) {
                let t = at + jitter(self.departure_window, rng);
                events.push((t, WorkloadEvent::Depart { viewer }));
            }
        }
        events.sort_by_key(|&(t, _)| t);
        ViewerWorkload {
            events,
            viewer_count: self.viewers,
        }
    }
}

/// A continuous-churn model: Poisson arrivals, lognormal dwell times and
/// a fraction of abrupt failures — the sustained-membership counterpart
/// of the one-shot [`ViewerWorkload`] scripts.
///
/// The spec is the shared vocabulary between the two ways of driving
/// viewer dynamics: [`ChurnSpec::to_workload`] scripts a finite batch of
/// events up front (small populations, cross-scheme comparisons on
/// identical inputs), while `telecast::TelecastSession::start_churn`
/// replays the *same spec* live through the discrete-event engine
/// (sustained 100k+ populations where a pre-materialised script would
/// not fit and rejected viewers must be able to retry).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Mean gap between Poisson arrivals (the *base* rate; see
    /// [`ChurnSpec::rate_profile`]).
    pub mean_arrival_gap: SimDuration,
    /// Mean of the lognormal dwell (connected) time.
    pub mean_dwell: SimDuration,
    /// σ of the underlying normal of the dwell distribution.
    pub dwell_sigma: f64,
    /// Fraction of leavers that fail abruptly instead of departing
    /// gracefully.
    pub fail_fraction: f64,
    /// How arriving viewers pick views.
    pub view_choice: ViewChoice,
    /// How the arrival rate varies over virtual time: constant (the
    /// original homogeneous process, byte-identical draws for existing
    /// seeds), a sinusoidal diurnal wave, or piecewise flash spikes —
    /// sampled by thinning (see [`crate::RateProfile`]).
    pub rate_profile: crate::RateProfile,
    /// Mean number of mid-dwell view switches per connected viewer,
    /// scripted by [`ChurnSpec::to_workload`] as `ViewChange` events
    /// spread uniformly over the viewer's dwell. The default `0.0`
    /// consumes no RNG draws, so pre-switch seeds replay
    /// byte-identically. The live runtime
    /// (`telecast::TelecastSession::start_churn`) does not replay
    /// switches — drive switching storms through the scripted path.
    pub view_switches_per_dwell: f64,
}

impl ChurnSpec {
    /// A steady-state spec for `population` viewers with
    /// `churn_per_minute` of them leaving (and, in equilibrium, joining)
    /// each minute: mean dwell `1 / churn_per_minute` minutes, arrival
    /// gap `mean_dwell / population` (Little's law).
    ///
    /// # Panics
    ///
    /// Panics if `population` is zero or `churn_per_minute` is not in
    /// `(0, 1]`.
    pub fn steady_state(population: usize, churn_per_minute: f64) -> Self {
        assert!(population > 0, "churn over an empty population");
        assert!(
            churn_per_minute > 0.0 && churn_per_minute <= 1.0,
            "churn_per_minute out of (0, 1]: {churn_per_minute}"
        );
        let mean_dwell = SimDuration::from_secs_f64(60.0 / churn_per_minute);
        let mean_arrival_gap =
            SimDuration::from_secs_f64(mean_dwell.as_secs_f64() / population as f64);
        ChurnSpec {
            mean_arrival_gap,
            mean_dwell,
            dwell_sigma: 1.0,
            fail_fraction: 0.1,
            view_choice: ViewChoice::Zipf { s: 0.8 },
            rate_profile: crate::RateProfile::Constant,
            view_switches_per_dwell: 0.0,
        }
    }

    /// Sets the fraction of leavers that fail abruptly.
    pub fn with_fail_fraction(mut self, fraction: f64) -> Self {
        self.fail_fraction = fraction;
        self
    }

    /// Sets the view-choice model.
    pub fn with_view_choice(mut self, choice: ViewChoice) -> Self {
        self.view_choice = choice;
        self
    }

    /// Sets the time-varying arrival-rate profile.
    pub fn with_rate_profile(mut self, profile: crate::RateProfile) -> Self {
        self.rate_profile = profile;
        self
    }

    /// Sets the mean number of mid-dwell view switches per viewer
    /// (scripted-path only; see [`ChurnSpec::view_switches_per_dwell`]).
    pub fn with_view_switches(mut self, per_dwell: f64) -> Self {
        self.view_switches_per_dwell = per_dwell;
        self
    }

    /// Validates the spec's parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.mean_arrival_gap.is_zero() {
            return Err("mean_arrival_gap must be positive".into());
        }
        if self.mean_dwell.is_zero() {
            return Err("mean_dwell must be positive".into());
        }
        if !self.dwell_sigma.is_finite() || self.dwell_sigma < 0.0 {
            return Err(format!("dwell_sigma invalid: {}", self.dwell_sigma));
        }
        if !(0.0..=1.0).contains(&self.fail_fraction) {
            return Err(format!(
                "fail_fraction out of [0, 1]: {}",
                self.fail_fraction
            ));
        }
        if !self.view_switches_per_dwell.is_finite() || self.view_switches_per_dwell < 0.0 {
            return Err(format!(
                "view_switches_per_dwell invalid: {}",
                self.view_switches_per_dwell
            ));
        }
        self.rate_profile.validate()?;
        Ok(())
    }

    /// Draws the gap to the next arrival *of the base (constant-rate)
    /// process*. Time-varying specs must use
    /// [`ChurnSpec::sample_next_arrival`] instead, which thins against
    /// the rate profile.
    pub fn sample_gap(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(rng.exponential(self.mean_arrival_gap.as_secs_f64()))
    }

    /// Draws the next arrival instant after `from` under the spec's rate
    /// profile; `None` once it lands past `horizon`. The constant
    /// profile consumes exactly one exponential draw (the original
    /// stream), so existing seeds replay byte-identically.
    pub fn sample_next_arrival(
        &self,
        from: SimTime,
        horizon: SimTime,
        rng: &mut SimRng,
    ) -> Option<SimTime> {
        self.rate_profile
            .sample_next_arrival(self.mean_arrival_gap, from, horizon, rng)
    }

    /// Draws one viewer's dwell (connected) time.
    pub fn sample_dwell(&self, rng: &mut SimRng) -> SimDuration {
        if self.dwell_sigma == 0.0 {
            return self.mean_dwell;
        }
        SimDuration::from_secs_f64(
            rng.lognormal_with_mean(self.mean_dwell.as_secs_f64(), self.dwell_sigma),
        )
    }

    /// Draws whether a leave is an abrupt failure.
    pub fn sample_fail(&self, rng: &mut SimRng) -> bool {
        rng.chance(self.fail_fraction)
    }

    /// Scripts this spec into a finite [`ViewerWorkload`]: viewers from a
    /// pool of `viewers` arrive by the Poisson process until `horizon`,
    /// each departing after its sampled dwell (failures cannot be
    /// scripted — [`WorkloadEvent`] has no failure variant — so every
    /// leave becomes a graceful departure). Arrivals beyond the pool
    /// size reuse the earliest-departed viewer index. When
    /// [`ChurnSpec::view_switches_per_dwell`] is positive, each connected
    /// viewer additionally scripts a Poisson number of `ViewChange`
    /// events at uniform instants inside its dwell, chained so every
    /// switch targets a view different from the one being watched.
    ///
    /// # Panics
    ///
    /// Panics if `viewers` is zero or `catalog_len` is zero.
    pub fn to_workload(
        &self,
        viewers: usize,
        catalog_len: usize,
        horizon: SimTime,
        rng: &mut SimRng,
    ) -> ViewerWorkload {
        assert!(viewers > 0, "churn workload needs a viewer pool");
        let mut events: Vec<(SimTime, WorkloadEvent)> = Vec::new();
        // Pool of (free-at, index): a viewer can be reused once departed.
        let mut free: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, usize)>> = (0
            ..viewers)
            .map(|i| std::cmp::Reverse((SimTime::ZERO, i)))
            .collect();
        let mut t = SimTime::ZERO;
        while let Some(next) = self.sample_next_arrival(t, horizon, rng) {
            t = next;
            let Some(&std::cmp::Reverse((free_at, viewer))) = free.peek() else {
                break;
            };
            if free_at > t {
                // Every viewer is still connected; the arrival is lost
                // (the live runtime would retry later instead).
                continue;
            }
            free.pop();
            let view = self.view_choice.sample(catalog_len, rng);
            events.push((t, WorkloadEvent::Join { viewer, view }));
            let dwell = self.sample_dwell(rng);
            let leave = t + dwell;
            // Guarded so the default spec consumes zero extra draws and
            // pre-switch seeds replay byte-identically.
            if self.view_switches_per_dwell > 0.0 {
                let switches = poisson_count(self.view_switches_per_dwell, rng);
                let mut switch_times: Vec<SimTime> =
                    (0..switches).map(|_| t + jitter(dwell, rng)).collect();
                switch_times.sort_unstable();
                let mut current = view;
                for at in switch_times {
                    let next = self.view_choice.sample_change(catalog_len, current, rng);
                    if next == current {
                        continue; // single-view catalog: nowhere to switch
                    }
                    current = next;
                    events.push((
                        at,
                        WorkloadEvent::ViewChange {
                            viewer,
                            view: current,
                        },
                    ));
                }
            }
            events.push((leave, WorkloadEvent::Depart { viewer }));
            free.push(std::cmp::Reverse((leave, viewer)));
        }
        events.sort_by_key(|&(at, _)| at);
        ViewerWorkload {
            events,
            viewer_count: viewers,
        }
    }
}

/// Samples a Poisson count with the given mean (inversion; means here are
/// tiny so the linear scan is fine).
fn poisson_count(mean: f64, rng: &mut SimRng) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let limit = (-mean).exp();
    let mut product = rng.unit();
    let mut count = 0;
    while product > limit {
        product *= rng.unit();
        count += 1;
    }
    count
}

fn jitter(window: SimDuration, rng: &mut SimRng) -> SimDuration {
    if window.is_zero() {
        SimDuration::ZERO
    } else {
        SimDuration::from_micros(rng.range(0..window.as_micros()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_arrivals_are_simultaneous() {
        let mut rng = SimRng::seed_from_u64(1);
        let at = ArrivalModel::Flash.arrivals(5, SimTime::from_secs(3), &mut rng);
        assert_eq!(at, vec![SimTime::from_secs(3); 5]);
    }

    #[test]
    fn staggered_arrivals_are_evenly_spaced() {
        let mut rng = SimRng::seed_from_u64(1);
        let at = ArrivalModel::Staggered {
            gap: SimDuration::from_millis(10),
        }
        .arrivals(3, SimTime::ZERO, &mut rng);
        assert_eq!(
            at,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(10),
                SimTime::from_millis(20)
            ]
        );
    }

    #[test]
    fn poisson_arrivals_are_ordered() {
        let mut rng = SimRng::seed_from_u64(2);
        let at = ArrivalModel::Poisson {
            mean_gap: SimDuration::from_millis(100),
        }
        .arrivals(100, SimTime::ZERO, &mut rng);
        assert!(at.windows(2).all(|w| w[0] <= w[1]));
        assert!(at[99] > SimTime::ZERO);
    }

    #[test]
    fn zipf_choice_prefers_rank_zero() {
        let mut rng = SimRng::seed_from_u64(3);
        let choice = ViewChoice::Zipf { s: 1.2 };
        let mut counts = [0usize; 8];
        for _ in 0..8_000 {
            counts[choice.sample(8, &mut rng).index()] += 1;
        }
        assert!(counts[0] > counts[7] * 3);
    }

    #[test]
    fn sample_change_never_returns_current() {
        let mut rng = SimRng::seed_from_u64(4);
        let choice = ViewChoice::Uniform;
        for _ in 0..500 {
            let next = choice.sample_change(8, ViewId::new(3), &mut rng);
            assert_ne!(next, ViewId::new(3));
        }
        // Degenerate single-view catalog: stays put.
        assert_eq!(
            choice.sample_change(1, ViewId::new(0), &mut rng),
            ViewId::new(0)
        );
    }

    #[test]
    fn workload_events_are_time_ordered() {
        let mut rng = SimRng::seed_from_u64(5);
        let wl = ViewerWorkload::builder(200, 8)
            .arrivals(ArrivalModel::Poisson {
                mean_gap: SimDuration::from_millis(50),
            })
            .view_choice(ViewChoice::Zipf { s: 1.0 })
            .view_changes(1.5, SimDuration::from_secs(30))
            .departures(0.2, SimDuration::from_secs(60))
            .build(&mut rng);
        assert!(wl.events().windows(2).all(|w| w[0].0 <= w[1].0));
        let joins = wl
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, WorkloadEvent::Join { .. }))
            .count();
        assert_eq!(joins, 200);
        let changes = wl
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, WorkloadEvent::ViewChange { .. }))
            .count();
        assert!(changes > 100, "expected ~300 view changes, got {changes}");
        let departs = wl
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, WorkloadEvent::Depart { .. }))
            .count();
        assert!(
            (20..=60).contains(&departs),
            "expected ~40 departures, got {departs}"
        );
    }

    #[test]
    fn view_changes_differ_from_previous_view() {
        let mut rng = SimRng::seed_from_u64(6);
        let wl = ViewerWorkload::builder(50, 8)
            .view_changes(2.0, SimDuration::from_secs(10))
            .build(&mut rng);
        // Track each viewer's current view; every change must differ.
        let mut current: std::collections::HashMap<usize, ViewId> = Default::default();
        for (_, ev) in wl.events() {
            match *ev {
                WorkloadEvent::Join { viewer, view } => {
                    current.insert(viewer, view);
                }
                WorkloadEvent::ViewChange { viewer, view } => {
                    assert_ne!(current[&viewer], view);
                    current.insert(viewer, view);
                }
                WorkloadEvent::Depart { .. } => {}
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let build = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            ViewerWorkload::builder(100, 8)
                .view_changes(1.0, SimDuration::from_secs(10))
                .departures(0.3, SimDuration::from_secs(20))
                .build(&mut rng)
        };
        assert_eq!(build(9), build(9));
        assert_ne!(build(9), build(10));
    }

    #[test]
    fn churn_spec_steady_state_matches_littles_law() {
        // 1% per minute over 6000 viewers: mean dwell 100 min, one
        // arrival per second on average.
        let spec = ChurnSpec::steady_state(6_000, 0.01);
        assert!(spec.validate().is_ok());
        assert_eq!(spec.mean_dwell, SimDuration::from_secs(6_000));
        assert_eq!(spec.mean_arrival_gap, SimDuration::from_secs(1));

        let mut rng = SimRng::seed_from_u64(21);
        let n = 20_000;
        let mean_dwell: f64 = (0..n)
            .map(|_| spec.sample_dwell(&mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean_dwell - 6_000.0).abs() / 6_000.0 < 0.05,
            "dwell mean {mean_dwell} far from 6000s"
        );
    }

    #[test]
    fn churn_spec_validation_catches_bad_parameters() {
        let spec = ChurnSpec::steady_state(100, 0.05);
        assert!(spec.with_fail_fraction(1.5).validate().is_err());
        let mut zero_gap = spec;
        zero_gap.mean_arrival_gap = SimDuration::ZERO;
        assert!(zero_gap.validate().is_err());
    }

    #[test]
    fn churn_workload_bridge_is_deterministic_and_ordered() {
        let spec = ChurnSpec::steady_state(50, 0.2);
        let build = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            spec.to_workload(50, 8, SimTime::from_secs(600), &mut rng)
        };
        let wl = build(3);
        assert_eq!(wl, build(3));
        assert_ne!(wl, build(4));
        assert!(wl.events().windows(2).all(|w| w[0].0 <= w[1].0));
        // Every join is eventually followed by that viewer's departure.
        let joins = wl
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, WorkloadEvent::Join { .. }))
            .count();
        let departs = wl
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, WorkloadEvent::Depart { .. }))
            .count();
        assert_eq!(joins, departs);
        assert!(joins > 0, "no arrivals before the horizon");
        // A viewer is never double-joined: joins and departures alternate
        // per index.
        let mut connected = std::collections::HashSet::new();
        for (_, ev) in wl.events() {
            match *ev {
                WorkloadEvent::Join { viewer, .. } => {
                    assert!(connected.insert(viewer), "double join of {viewer}");
                }
                WorkloadEvent::Depart { viewer } => {
                    assert!(connected.remove(&viewer), "departure without join");
                }
                WorkloadEvent::ViewChange { .. } => {
                    panic!("default spec (0 switches/dwell) scripted a view change")
                }
            }
        }
    }

    #[test]
    fn churn_bridge_scripts_view_switches_while_connected() {
        let spec = ChurnSpec::steady_state(50, 0.2).with_view_switches(1.5);
        assert!(spec.validate().is_ok());
        let mut rng = SimRng::seed_from_u64(3);
        let wl = spec.to_workload(50, 8, SimTime::from_secs(600), &mut rng);
        // Every switch happens while its viewer is connected and targets
        // a view different from the one being watched.
        let mut watching: std::collections::HashMap<usize, ViewId> = Default::default();
        let mut switches = 0usize;
        for (_, ev) in wl.events() {
            match *ev {
                WorkloadEvent::Join { viewer, view } => {
                    assert!(watching.insert(viewer, view).is_none());
                }
                WorkloadEvent::ViewChange { viewer, view } => {
                    let current = watching
                        .insert(viewer, view)
                        .expect("switch while disconnected");
                    assert_ne!(current, view, "switch to the watched view");
                    switches += 1;
                }
                WorkloadEvent::Depart { viewer } => {
                    assert!(watching.remove(&viewer).is_some());
                }
            }
        }
        assert!(switches > 0, "switch-enabled spec scripted no switches");
        // Switches are off by default, preserving pre-switch byte streams.
        assert_eq!(
            ChurnSpec::steady_state(50, 0.2).view_switches_per_dwell,
            0.0
        );
        assert!(spec.with_view_switches(-1.0).validate().is_err());
    }

    #[test]
    fn refocus_events_are_correlated_and_skip_target_watchers() {
        let storm = RefocusEvent {
            at: SimTime::from_secs(30),
            window: SimDuration::from_secs(4),
            target: ViewId::new(7),
            fraction: 1.0,
        };
        let mut rng = SimRng::seed_from_u64(11);
        let wl = ViewerWorkload::builder(300, 8)
            .view_choice(ViewChoice::Zipf { s: 1.1 })
            .refocus(storm)
            .build(&mut rng);
        // With fraction 1.0 every viewer not already on the target hops
        // inside the window.
        let hops: Vec<_> = wl
            .events()
            .iter()
            .filter(|(t, e)| {
                matches!(e, WorkloadEvent::ViewChange { view, .. } if *view == ViewId::new(7))
                    && *t >= SimTime::from_secs(30)
                    && *t <= SimTime::from_secs(34)
            })
            .collect();
        let on_target_at_join = wl
            .events()
            .iter()
            .filter(
                |(_, e)| matches!(e, WorkloadEvent::Join { view, .. } if *view == ViewId::new(7)),
            )
            .count();
        assert_eq!(hops.len() + on_target_at_join, 300);

        // An empty schedule consumes zero extra draws: byte-identical to
        // the pre-refocus builder on the same seed.
        let mut a = SimRng::seed_from_u64(12);
        let mut b = SimRng::seed_from_u64(12);
        let plain = ViewerWorkload::builder(100, 8)
            .view_changes(1.0, SimDuration::from_secs(20))
            .departures(0.3, SimDuration::from_secs(40))
            .build(&mut a);
        let with_empty = ViewerWorkload::builder(100, 8)
            .view_changes(1.0, SimDuration::from_secs(20))
            .departures(0.3, SimDuration::from_secs(40))
            .popularity(&ViewPopularity::zipf(0.0))
            .view_choice(ViewChoice::Uniform)
            .build(&mut b);
        assert_eq!(plain, with_empty);
    }

    #[test]
    #[should_panic(expected = "outside catalog")]
    fn refocus_target_outside_catalog_panics() {
        let mut rng = SimRng::seed_from_u64(1);
        ViewerWorkload::builder(10, 4)
            .refocus(RefocusEvent {
                at: SimTime::ZERO,
                window: SimDuration::ZERO,
                target: ViewId::new(4),
                fraction: 0.5,
            })
            .build(&mut rng);
    }

    #[test]
    fn poisson_count_mean_is_close() {
        let mut rng = SimRng::seed_from_u64(7);
        let n = 10_000;
        let total: usize = (0..n).map(|_| poisson_count(1.5, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1.5).abs() < 0.1, "poisson mean {mean} far from 1.5");
    }
}

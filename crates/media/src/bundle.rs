//! Bundles of streams (paper §I–II, citing "Bundle of streams" [5]).
//!
//! "Multiple adjacent streams (called bundle of streams) compose a view"
//! and "bundles generated across the producer sites at any point in time
//! are highly dependent; so are the streams inside a bundle". A
//! [`Bundle`] groups the frames one site captured at (nearly) the same
//! instant; [`inter_bundle_skew`] measures the delay difference between
//! dependent bundles at a viewer — the quantity the delay-layer
//! hierarchy bounds.

use serde::{Deserialize, Serialize};
use telecast_sim::{SimDuration, SimTime};

use crate::frame::Frame;
use crate::stream::SiteId;

/// The frames of one site captured at (nearly) one instant — the unit of
/// intra-site dependency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bundle {
    site: SiteId,
    captured_at: SimTime,
    frames: Vec<Frame>,
}

impl Bundle {
    /// Assembles a bundle from frames of one site captured within
    /// `tolerance` of the earliest frame.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty, spans multiple sites, or exceeds the
    /// capture tolerance.
    pub fn new(frames: Vec<Frame>, tolerance: SimDuration) -> Self {
        assert!(!frames.is_empty(), "a bundle holds at least one frame");
        let site = frames[0].stream.site();
        let earliest = frames
            .iter()
            .map(|f| f.captured_at)
            .min()
            .expect("non-empty");
        for f in &frames {
            assert_eq!(f.stream.site(), site, "bundle spans multiple sites");
            assert!(
                f.captured_at.saturating_since(earliest) <= tolerance,
                "frame {} breaks the bundle capture tolerance",
                f.number
            );
        }
        Bundle {
            site,
            captured_at: earliest,
            frames,
        }
    }

    /// The producing site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Capture instant of the bundle (earliest member frame).
    pub fn captured_at(&self) -> SimTime {
        self.captured_at
    }

    /// The member frames.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Number of streams contributing to the bundle.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the bundle is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Local inter-stream skew *inside* the bundle given per-stream
    /// arrival times at a viewer: latest minus earliest arrival of the
    /// member frames. `None` if an arrival is missing.
    pub fn local_skew(
        &self,
        mut arrival_of: impl FnMut(&Frame) -> Option<SimTime>,
    ) -> Option<SimDuration> {
        let mut earliest: Option<SimTime> = None;
        let mut latest: Option<SimTime> = None;
        for f in &self.frames {
            let at = arrival_of(f)?;
            earliest = Some(earliest.map_or(at, |e| e.min(at)));
            latest = Some(latest.map_or(at, |l| l.max(at)));
        }
        Some(latest?.saturating_since(earliest?))
    }
}

/// Inter-bundle skew: the difference between the arrival completion
/// times of two dependent bundles (captured at the same instant at
/// different sites) at one viewer.
pub fn inter_bundle_skew(a_completed: SimTime, b_completed: SimTime) -> SimDuration {
    if a_completed >= b_completed {
        a_completed.saturating_since(b_completed)
    } else {
        b_completed.saturating_since(a_completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameNumber;
    use crate::stream::StreamId;

    fn frame(site: u16, camera: u16, captured_ms: u64) -> Frame {
        Frame {
            stream: StreamId::new(SiteId::new(site), camera),
            number: FrameNumber::new(captured_ms / 100),
            captured_at: SimTime::from_millis(captured_ms),
            bytes: 25_000,
        }
    }

    #[test]
    fn bundle_groups_one_site_one_instant() {
        let b = Bundle::new(
            vec![frame(0, 0, 1_000), frame(0, 1, 1_005), frame(0, 2, 1_009)],
            SimDuration::from_millis(10),
        );
        assert_eq!(b.site(), SiteId::new(0));
        assert_eq!(b.len(), 3);
        assert_eq!(b.captured_at(), SimTime::from_millis(1_000));
    }

    #[test]
    #[should_panic(expected = "multiple sites")]
    fn cross_site_bundle_panics() {
        Bundle::new(
            vec![frame(0, 0, 1_000), frame(1, 0, 1_000)],
            SimDuration::from_millis(10),
        );
    }

    #[test]
    #[should_panic(expected = "capture tolerance")]
    fn loose_capture_panics() {
        Bundle::new(
            vec![frame(0, 0, 1_000), frame(0, 1, 1_200)],
            SimDuration::from_millis(10),
        );
    }

    #[test]
    fn local_skew_spans_arrivals() {
        let b = Bundle::new(
            vec![frame(0, 0, 1_000), frame(0, 1, 1_000)],
            SimDuration::ZERO,
        );
        let skew = b
            .local_skew(|f| {
                Some(if f.stream.camera() == 0 {
                    SimTime::from_millis(61_000)
                } else {
                    SimTime::from_millis(61_120)
                })
            })
            .expect("all arrivals known");
        assert_eq!(skew, SimDuration::from_millis(120));
        // A missing arrival yields None.
        assert_eq!(
            b.local_skew(|f| (f.stream.camera() == 0).then_some(SimTime::ZERO)),
            None
        );
    }

    #[test]
    fn inter_bundle_skew_is_symmetric() {
        let a = SimTime::from_millis(61_000);
        let b = SimTime::from_millis(61_250);
        assert_eq!(inter_bundle_skew(a, b), SimDuration::from_millis(250));
        assert_eq!(inter_bundle_skew(b, a), SimDuration::from_millis(250));
        assert_eq!(inter_bundle_skew(a, a), SimDuration::ZERO);
    }
}

//! 3D frames — the transported unit of the streaming model (paper §II-E).

use std::fmt;

use serde::{Deserialize, Serialize};
use telecast_sim::SimTime;

use crate::stream::StreamId;

/// Sequence number of a frame within its stream.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct FrameNumber(u64);

impl FrameNumber {
    /// First frame of a stream.
    pub const ZERO: FrameNumber = FrameNumber(0);

    /// Creates a frame number.
    pub const fn new(n: u64) -> Self {
        FrameNumber(n)
    }

    /// Raw sequence value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The following frame number.
    pub const fn next(self) -> FrameNumber {
        FrameNumber(self.0 + 1)
    }

    /// Saturating backwards offset — used by Eq. 2's `n − (Δ + (x+1)τ)·r`
    /// computation, which must not underflow at session start.
    pub fn saturating_back(self, frames: u64) -> FrameNumber {
        FrameNumber(self.0.saturating_sub(frames))
    }

    /// Forward offset.
    pub fn forward(self, frames: u64) -> FrameNumber {
        FrameNumber(self.0.saturating_add(frames))
    }
}

impl fmt::Display for FrameNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One captured 3D frame: `f_t^(i,n)` in the paper's stream model, where
/// `i` is the stream, `n` the frame number and `t` the capture timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// Producing stream.
    pub stream: StreamId,
    /// Sequence number within the stream.
    pub number: FrameNumber,
    /// Capture timestamp at the producer.
    pub captured_at: SimTime,
    /// Encoded size in bytes.
    pub bytes: u32,
}

impl Frame {
    /// Whether two frames are temporally correlated (captured within
    /// `skew_us` µs of each other) — the renderer's pairing criterion.
    pub fn correlated_with(&self, other: &Frame, skew_us: u64) -> bool {
        let a = self.captured_at.as_micros();
        let b = other.captured_at.as_micros();
        a.abs_diff(b) <= skew_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::SiteId;

    fn frame(n: u64, at_ms: u64) -> Frame {
        Frame {
            stream: StreamId::new(SiteId::new(0), 0),
            number: FrameNumber::new(n),
            captured_at: SimTime::from_millis(at_ms),
            bytes: 25_000,
        }
    }

    #[test]
    fn frame_number_arithmetic() {
        let n = FrameNumber::new(10);
        assert_eq!(n.next().value(), 11);
        assert_eq!(n.saturating_back(3).value(), 7);
        assert_eq!(n.saturating_back(100), FrameNumber::ZERO);
        assert_eq!(n.forward(5).value(), 15);
        assert_eq!(n.to_string(), "#10");
    }

    #[test]
    fn correlation_is_symmetric_and_bounded() {
        let a = frame(1, 100);
        let b = frame(1, 100 + 30);
        assert!(a.correlated_with(&b, 30_000));
        assert!(b.correlated_with(&a, 30_000));
        assert!(!a.correlated_with(&b, 29_999));
    }
}

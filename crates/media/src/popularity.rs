//! Audience-level view popularity: Zipf weights plus **correlated
//! re-focus events** — the "everyone jumps to the replay view at once"
//! dynamic of multi-view dissemination.
//!
//! [`crate::ViewChoice`] models how *one* viewer picks views; this module
//! models the *audience*: a [`ViewPopularity`] couples the per-viewer
//! Zipf skew with a schedule of [`RefocusEvent`]s, each sending a
//! configurable fraction of the whole audience to one target view inside
//! a short window. The hops are correlated across viewers — the defining
//! stress of a view-switching storm, where thousands of `ViewChange`
//! requests land on the same target tree at once while the abandoned
//! trees drain.

use serde::{Deserialize, Serialize};
use telecast_sim::{SimDuration, SimTime};

use crate::view::ViewId;
use crate::workload::ViewChoice;

/// One correlated re-focus: at `at`, a `fraction` of the audience hops to
/// `target`, each viewer at an independent uniform instant within
/// `window`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefocusEvent {
    /// When the re-focus window opens (absolute workload time).
    pub at: SimTime,
    /// Length of the window the hops spread over; zero means all
    /// participating viewers hop exactly at `at`.
    pub window: SimDuration,
    /// The view everyone hops to (the "replay view").
    pub target: ViewId,
    /// Fraction of the audience that participates, in `[0, 1]`.
    pub fraction: f64,
}

impl RefocusEvent {
    /// Validates the event's parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.fraction.is_finite() || !(0.0..=1.0).contains(&self.fraction) {
            return Err(format!("refocus fraction out of [0, 1]: {}", self.fraction));
        }
        Ok(())
    }
}

/// The audience's view-popularity model: Zipf-skewed individual choice
/// plus a time-ordered schedule of correlated [`RefocusEvent`]s.
///
/// ```
/// use telecast_media::{RefocusEvent, ViewId, ViewPopularity};
/// use telecast_sim::{SimDuration, SimTime};
///
/// let pop = ViewPopularity::zipf(1.1).with_refocus(RefocusEvent {
///     at: SimTime::from_secs(120),
///     window: SimDuration::from_secs(5),
///     target: ViewId::new(7),
///     fraction: 0.6,
/// });
/// assert!(pop.validate().is_ok());
/// assert_eq!(pop.refocus_events().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewPopularity {
    zipf_s: f64,
    refocus: Vec<RefocusEvent>,
}

impl ViewPopularity {
    /// Zipf-skewed popularity with exponent `s` (0 degenerates to
    /// uniform) and no re-focus events.
    pub fn zipf(s: f64) -> Self {
        ViewPopularity {
            zipf_s: s,
            refocus: Vec::new(),
        }
    }

    /// Uniform popularity (the Zipf exponent-0 degenerate case).
    pub fn uniform() -> Self {
        Self::zipf(0.0)
    }

    /// Appends a re-focus event. Events may be appended in any order;
    /// consumers see them sorted by window-open time.
    pub fn with_refocus(mut self, event: RefocusEvent) -> Self {
        self.refocus.push(event);
        self.refocus
            .sort_by_key(|e| (e.at, e.target, e.window.as_micros()));
        self
    }

    /// The Zipf exponent.
    pub fn zipf_exponent(&self) -> f64 {
        self.zipf_s
    }

    /// The per-viewer choice model this popularity induces.
    pub fn choice(&self) -> ViewChoice {
        ViewChoice::Zipf { s: self.zipf_s }
    }

    /// The re-focus schedule, sorted by window-open time.
    pub fn refocus_events(&self) -> &[RefocusEvent] {
        &self.refocus
    }

    /// Validates the exponent and every scheduled event.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.zipf_s.is_finite() || self.zipf_s < 0.0 {
            return Err(format!("zipf exponent invalid: {}", self.zipf_s));
        }
        for event in &self.refocus {
            event.validate()?;
        }
        Ok(())
    }

    /// Checks every re-focus target against a catalog of `catalog_len`
    /// views.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-catalog target.
    pub fn validate_against_catalog(&self, catalog_len: usize) -> Result<(), String> {
        for event in &self.refocus {
            if event.target.index() >= catalog_len {
                return Err(format!(
                    "refocus target {} outside catalog of {catalog_len} views",
                    event.target
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refocus_events_sort_by_open_time() {
        let pop = ViewPopularity::zipf(1.0)
            .with_refocus(RefocusEvent {
                at: SimTime::from_secs(200),
                window: SimDuration::from_secs(5),
                target: ViewId::new(1),
                fraction: 0.5,
            })
            .with_refocus(RefocusEvent {
                at: SimTime::from_secs(100),
                window: SimDuration::from_secs(5),
                target: ViewId::new(2),
                fraction: 0.5,
            });
        let opens: Vec<_> = pop.refocus_events().iter().map(|e| e.at).collect();
        assert_eq!(
            opens,
            vec![SimTime::from_secs(100), SimTime::from_secs(200)]
        );
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(ViewPopularity::zipf(f64::NAN).validate().is_err());
        assert!(ViewPopularity::zipf(-0.5).validate().is_err());
        let bad = ViewPopularity::zipf(1.0).with_refocus(RefocusEvent {
            at: SimTime::ZERO,
            window: SimDuration::ZERO,
            target: ViewId::new(0),
            fraction: 1.5,
        });
        assert!(bad.validate().is_err());
        let outside = ViewPopularity::zipf(1.0).with_refocus(RefocusEvent {
            at: SimTime::ZERO,
            window: SimDuration::ZERO,
            target: ViewId::new(9),
            fraction: 0.5,
        });
        assert!(outside.validate().is_ok());
        assert!(outside.validate_against_catalog(8).is_err());
        assert!(outside.validate_against_catalog(10).is_ok());
    }

    #[test]
    fn uniform_is_the_zero_exponent() {
        assert_eq!(
            ViewPopularity::uniform().choice(),
            ViewChoice::Zipf { s: 0.0 }
        );
    }
}

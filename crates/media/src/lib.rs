#![warn(missing_docs)]

//! 3DTI media model for the 4D TeleCast reproduction.
//!
//! Implements Section II of the paper: producer sites hosting camera
//! streams with spatial orientations, the stream differentiation function
//! `df(S, v) = S.w · v.w`, per-site priority indexes `η`, the global
//! priority `η − df`, threshold cutoff, local and global (4D) views, the
//! view-change model, plus the synthetic TEEVE frame traces and viewer
//! workload generators the evaluation replays.
//!
//! # Example
//!
//! ```
//! use telecast_media::{ProducerSite, ViewCatalog};
//!
//! // The paper's evaluation setup: 2 sites × 8 cameras, 3 streams per
//! // local view.
//! let sites = ProducerSite::teeve_pair();
//! let catalog = ViewCatalog::canonical(&sites, 3);
//! let view = catalog.view(telecast_media::ViewId::new(0));
//! assert_eq!(view.streams().count(), 6); // 3 from each site
//! ```

mod bundle;
mod frame;
mod producer;
mod rate;
mod stream;
mod teeve;
mod view;
mod workload;

pub use bundle::{inter_bundle_skew, Bundle};
pub use frame::{Frame, FrameNumber};
pub use producer::ProducerSite;
pub use rate::{RateProfile, SpikeWindow, MAX_SPIKE_WINDOWS};
pub use stream::{Orientation, SiteId, StreamId, StreamInfo};
pub use teeve::{SyntheticTeeveTrace, TeeveStreamConfig};
pub use view::{GlobalView, LocalView, PrioritizedStream, ViewCatalog, ViewId};
pub use workload::{ArrivalModel, ChurnSpec, ViewChoice, ViewerWorkload, WorkloadEvent};

#![warn(missing_docs)]

//! 3DTI media model for the 4D TeleCast reproduction.
//!
//! Implements Section II of the paper: producer sites hosting camera
//! streams with spatial orientations, the stream differentiation function
//! `df(S, v) = S.w · v.w`, per-site priority indexes `η`, the global
//! priority `η − df`, threshold cutoff, local and global (4D) views, the
//! view-change model, plus the synthetic TEEVE frame traces and viewer
//! workload generators the evaluation replays.
//!
//! # Workload event vocabulary
//!
//! Everything a simulated audience does reduces to three scripted
//! [`WorkloadEvent`]s — `Join { viewer, view }`, `ViewChange { viewer,
//! view }` and `Depart { viewer }` — in one time-ordered
//! [`ViewerWorkload`]. Two generators speak that vocabulary:
//!
//! * [`ViewerWorkload::builder`] — one-shot audiences: an
//!   [`ArrivalModel`] (flash / staggered / Poisson), a [`ViewChoice`]
//!   (single / uniform / Zipf), per-viewer Poisson view changes and a
//!   departing fraction. [`ViewPopularity`] lifts the choice model to
//!   the audience level by adding correlated [`RefocusEvent`]s — a
//!   fraction of *everyone* hops to one target view inside a short
//!   window (the view-switching storm).
//! * [`ChurnSpec`] — sustained membership: Poisson arrivals under a
//!   [`RateProfile`] (constant / diurnal / spikes), lognormal dwells, a
//!   failing fraction, and optionally
//!   [`ChurnSpec::view_switches_per_dwell`] mid-dwell switches.
//!   [`ChurnSpec::to_workload`] scripts the spec into a finite
//!   `ViewerWorkload`; `telecast::TelecastSession::start_churn` replays
//!   the same spec live (without scripted switches).
//!
//! Both generators draw every stochastic input from the caller's
//! [`telecast_sim::SimRng`], and every off-by-default knob consumes zero
//! RNG draws when unused — so a pre-existing seed replays its event
//! script byte-identically after the vocabulary grows.
//!
//! # Example
//!
//! ```
//! use telecast_media::{ProducerSite, ViewCatalog};
//!
//! // The paper's evaluation setup: 2 sites × 8 cameras, 3 streams per
//! // local view.
//! let sites = ProducerSite::teeve_pair();
//! let catalog = ViewCatalog::canonical(&sites, 3);
//! let view = catalog.view(telecast_media::ViewId::new(0));
//! assert_eq!(view.streams().count(), 6); // 3 from each site
//! ```

mod bundle;
mod frame;
mod popularity;
mod producer;
mod rate;
mod stream;
mod teeve;
mod view;
mod workload;

pub use bundle::{inter_bundle_skew, Bundle};
pub use frame::{Frame, FrameNumber};
pub use popularity::{RefocusEvent, ViewPopularity};
pub use producer::ProducerSite;
pub use rate::{RateProfile, SpikeWindow, MAX_SPIKE_WINDOWS};
pub use stream::{Orientation, SiteId, StreamId, StreamInfo};
pub use teeve::{SyntheticTeeveTrace, TeeveStreamConfig};
pub use view::{GlobalView, LocalView, PrioritizedStream, ViewCatalog, ViewId};
pub use workload::{ArrivalModel, ChurnSpec, ViewChoice, ViewerWorkload, WorkloadEvent};

//! Property tests of the view/priority model: df bounds, cutoff
//! monotonicity, priority-order invariants.

use proptest::prelude::*;
use telecast_media::{LocalView, Orientation, ProducerSite, SiteId, ViewCatalog, ViewId};

fn site(cameras: u16) -> ProducerSite {
    ProducerSite::ring(SiteId::new(0), cameras, 2_000, 10)
}

proptest! {
    /// df is a cosine: always in [-1, 1], and the top-ranked stream of a
    /// local view maximises it.
    #[test]
    fn df_bounded_and_top_is_max(cameras in 1u16..24, angle in 0.0f64..360.0) {
        let s = site(cameras);
        let v = Orientation::from_degrees(angle);
        let local = LocalView::compute(&s, v, -1.0, cameras as usize);
        for p in local.streams() {
            prop_assert!(p.df >= -1.0 - 1e-12 && p.df <= 1.0 + 1e-12);
        }
        let max_df = s
            .streams()
            .iter()
            .map(|st| st.orientation.dot(v))
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((local.top_stream().df - max_df).abs() < 1e-12);
    }

    /// Raising the cutoff never adds streams (monotone truncation), and
    /// the surviving set is always a prefix of the priority order.
    #[test]
    fn cutoff_is_monotone(
        cameras in 1u16..16,
        angle in 0.0f64..360.0,
        lo in -1.0f64..0.9,
        delta in 0.0f64..0.5,
    ) {
        let s = site(cameras);
        let v = Orientation::from_degrees(angle);
        let loose = LocalView::compute(&s, v, lo, cameras as usize);
        let strict = LocalView::compute(&s, v, lo + delta, cameras as usize);
        prop_assert!(strict.streams().len() <= loose.streams().len());
        // Prefix property: strict selection is a prefix of loose.
        for (a, b) in strict.streams().iter().zip(loose.streams().iter()) {
            prop_assert_eq!(a.stream, b.stream);
        }
    }

    /// Global priority order: η−df keys ascend, and within one site the
    /// order never inverts the local (η) order.
    #[test]
    fn global_priority_preserves_local_order(
        cameras in 2u16..12,
        per_site in 1usize..6,
        view_index in 0u32..12,
    ) {
        let sites = [
            ProducerSite::ring(SiteId::new(0), cameras, 2_000, 10),
            ProducerSite::ring(SiteId::new(1), cameras, 2_000, 10),
        ];
        let catalog = ViewCatalog::canonical(&sites, per_site.min(cameras as usize));
        let view = catalog.view(ViewId::new(view_index % cameras as u32));
        let ordered = view.streams_by_priority();
        for w in ordered.windows(2) {
            prop_assert!(w[0].global_key() <= w[1].global_key() + 1e-12);
        }
        for site_idx in 0..2u16 {
            let etas: Vec<u32> = ordered
                .iter()
                .filter(|p| p.stream.site() == SiteId::new(site_idx))
                .map(|p| p.eta)
                .collect();
            prop_assert!(etas.windows(2).all(|w| w[0] < w[1]),
                "per-site η order inverted: {:?}", etas);
        }
    }

    /// Every canonical view contains at least one stream per site (the
    /// admissibility precondition N ≥ n).
    #[test]
    fn canonical_views_cover_all_sites(cameras in 1u16..16, per_site in 1usize..8) {
        let sites = [
            ProducerSite::ring(SiteId::new(0), cameras, 2_000, 10),
            ProducerSite::ring(SiteId::new(1), cameras, 2_000, 10),
        ];
        let catalog = ViewCatalog::canonical(&sites, per_site);
        for view in catalog.iter() {
            let mut seen = [false; 2];
            for s in view.streams() {
                seen[s.site().index()] = true;
            }
            prop_assert!(seen[0] && seen[1]);
        }
    }
}

//! Multi-tenant coordination: M concurrent broadcasts sharing one
//! [`CapacityBroker`]'s regional pools.
//!
//! A [`TenantFleet`] owns the broker and one [`TelecastSession`] per
//! tenant broadcast. Each session is *fleet-managed*: it runs no
//! autoscalers of its own and never drains its retry queues
//! unilaterally — the fleet advances every tenant in lock-step epochs
//! and, at each barrier,
//!
//! 1. aggregates the fresh arrival demand every tenant accumulated per
//!    pool slot (the predictive controller's inflow signal is the
//!    *sum* across tenants — one bursting broadcast raises the shared
//!    forecast instead of surprising its neighbours),
//! 2. evaluates one shared autoscaler per regional pool against the
//!    broker's pool accounts and applies the resulting resizes,
//! 3. accrues per-tenant served-Mbps-hours metering, and
//! 4. splits each pool's retry headroom *fairly* across the tenants
//!    with parked CDN-rejected joins, by the broker's deficit-weighted
//!    arbitration ([`CapacityBroker::arbitrate_retry`]), then hands
//!    each session its arbitrated budget to drain against.
//!
//! Sessions advance sequentially in tenant order inside every epoch, so
//! a fleet run is a pure function of its seeds: equal configurations
//! replay identically regardless of host or repetition.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use telecast_cdn::{
    Autoscaler, CapacityBroker, ScaleDirection, TenantHandle, TenantId, TenantQuota,
};
use telecast_sim::{EpochSchedule, SimDuration, SimTime};

use crate::config::SessionConfig;
use crate::session::{build_autoscalers, TelecastSession};

/// Coordinator for M tenant broadcasts sharing one broker's pools.
pub struct TenantFleet {
    broker: Arc<Mutex<CapacityBroker>>,
    sessions: Vec<TelecastSession>,
    tenant_ids: Vec<TenantId>,
    /// One shared controller per broker pool slot (empty = static pools).
    autoscalers: Vec<Autoscaler>,
    /// Issued-but-not-yet-due forecasts per slot, scored at maturity.
    pending_forecasts: Vec<VecDeque<(SimTime, f64)>>,
    /// Matured forecast errors (at, forecast − realised Mbps).
    forecast_errors: Vec<(SimTime, f64)>,
    prev_used_kbps: Vec<u64>,
    epoch: SimDuration,
    now: SimTime,
    autoscale_ups: u64,
    autoscale_downs: u64,
}

impl TenantFleet {
    /// Builds an empty fleet. `fleet_config` supplies the shared pieces:
    /// its `cdn` becomes the broker's pool layout and its
    /// `autoscale`/`predictive` the shared per-slot controllers. The
    /// barrier runs every `epoch` of virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is zero.
    pub fn new(fleet_config: &SessionConfig, epoch: SimDuration) -> Self {
        assert!(!epoch.is_zero(), "fleet epoch must be positive");
        let broker = CapacityBroker::shared(fleet_config.cdn);
        let pool_slots = broker.lock().expect("fresh broker").cdn().pool_slots();
        let autoscalers = build_autoscalers(fleet_config, pool_slots);
        TenantFleet {
            broker,
            sessions: Vec::new(),
            tenant_ids: Vec::new(),
            autoscalers,
            pending_forecasts: (0..pool_slots).map(|_| VecDeque::new()).collect(),
            forecast_errors: Vec::new(),
            prev_used_kbps: vec![0; pool_slots],
            epoch,
            now: SimTime::ZERO,
            autoscale_ups: 0,
            autoscale_downs: 0,
        }
    }

    /// Registers one tenant broadcast: a quota on the shared pools and a
    /// session provisioned with `gateways` viewers. The tenant's own
    /// `autoscale`/`predictive` settings are stripped — pool scaling is
    /// the fleet's job, and a private controller would fight it.
    /// Returns the tenant's index (also its order at every barrier).
    ///
    /// # Panics
    ///
    /// Panics if the quota is invalid or would oversubscribe the
    /// registered floors, or once the fleet has started running.
    pub fn add_tenant(
        &mut self,
        config: &SessionConfig,
        quota: TenantQuota,
        gateways: usize,
    ) -> usize {
        assert!(
            self.now == SimTime::ZERO,
            "tenants must be registered before the fleet runs"
        );
        let tenant = self.broker.lock().expect("broker lock").register(quota);
        let mut config = config.clone();
        config.autoscale = None;
        config.predictive = None;
        let handle = TenantHandle::new(Arc::clone(&self.broker), tenant, true);
        let session = TelecastSession::builder(config)
            .viewers(gateways)
            .with_cdn_handle(handle)
            .build();
        self.sessions.push(session);
        self.tenant_ids.push(tenant);
        self.sessions.len() - 1
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.sessions.len()
    }

    /// Broker-level tenant id of tenant `index`.
    pub fn tenant_id(&self, index: usize) -> TenantId {
        self.tenant_ids[index]
    }

    /// Tenant `index`'s session, immutably.
    pub fn session(&self, index: usize) -> &TelecastSession {
        &self.sessions[index]
    }

    /// Tenant `index`'s session, mutably — e.g. to install its churn
    /// workload before running.
    pub fn session_mut(&mut self, index: usize) -> &mut TelecastSession {
        &mut self.sessions[index]
    }

    /// The shared broker.
    pub fn broker(&self) -> Arc<Mutex<CapacityBroker>> {
        Arc::clone(&self.broker)
    }

    /// Current fleet barrier time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared-controller scale-ups applied so far.
    pub fn autoscale_ups(&self) -> u64 {
        self.autoscale_ups
    }

    /// Shared-controller scale-downs applied so far.
    pub fn autoscale_downs(&self) -> u64 {
        self.autoscale_downs
    }

    /// Matured forecast errors (at, forecast − realised Mbps) of the
    /// shared predictive controllers, in maturity order.
    pub fn forecast_errors(&self) -> &[(SimTime, f64)] {
        &self.forecast_errors
    }

    /// Mean absolute forecast error across every matured forecast, in
    /// Mbps; `None` with no matured forecasts (reactive or static).
    pub fn mean_abs_forecast_error_mbps(&self) -> Option<f64> {
        if self.forecast_errors.is_empty() {
            return None;
        }
        let sum: f64 = self.forecast_errors.iter().map(|&(_, e)| e.abs()).sum();
        Some(sum / self.forecast_errors.len() as f64)
    }

    /// Provisioned Mbps-hours billed across every shared pool up to
    /// `at` — the fleet's single cost figure (capacity is shared, so
    /// there is no per-tenant provisioned bill; per-tenant *served*
    /// usage is [`TenantFleet::served_mbps_hours`]).
    pub fn provisioned_mbps_hours_at(&self, at: SimTime) -> f64 {
        let broker = self.broker.lock().expect("broker lock");
        let cdn = broker.cdn();
        (0..cdn.pool_slots())
            .map(|slot| cdn.provisioned_meter_of(slot).mbps_hours_at(at))
            .sum()
    }

    /// The shared provisioned bill in dollars at the committed rate.
    pub fn provisioned_dollars_at(&self, at: SimTime) -> f64 {
        let broker = self.broker.lock().expect("broker lock");
        let cdn = broker.cdn();
        (0..cdn.pool_slots())
            .map(|slot| cdn.provisioned_meter_of(slot).dollars_at(at))
            .sum()
    }

    /// Mbps-hours of CDN capacity actually served to tenant `index`, as
    /// accrued at the barriers.
    pub fn served_mbps_hours(&self, index: usize) -> f64 {
        self.broker
            .lock()
            .expect("broker lock")
            .served_mbps_hours(self.tenant_ids[index])
    }

    /// Advances every tenant to `deadline` in lock-step epochs, running
    /// the shared-controller / metering / fair-retry barrier at every
    /// epoch boundary.
    pub fn run_until(&mut self, deadline: SimTime) {
        let schedule = EpochSchedule::new(self.now, deadline, self.epoch);
        for epoch_end in schedule {
            for session in &mut self.sessions {
                session.run_until(epoch_end);
            }
            self.now = epoch_end;
            self.barrier(epoch_end);
        }
        self.now = self.now.max(deadline);
    }

    /// One epoch barrier: shared autoscaling on aggregate demand, usage
    /// metering, and deficit-fair retry draining.
    fn barrier(&mut self, now: SimTime) {
        let slots = self.prev_used_kbps.len();

        // 1. Aggregate fresh arrival demand across tenants, per slot.
        let mut fresh = vec![0u64; slots];
        for session in &mut self.sessions {
            for (slot, kbps) in session.fleet_take_arrival_demand().into_iter().enumerate() {
                if slot < slots {
                    fresh[slot] += kbps;
                }
            }
        }

        // 2. Shared controllers: one per pool slot, fed the aggregate.
        if !self.autoscalers.is_empty() {
            let predictive = self.autoscalers[0].is_predictive();
            // Fleet-wide phase ratio: the viewer-weighted mean of every
            // tenant's forecast ratio — a large bursting broadcast moves
            // the shared forecast more than a small steady one.
            let phase_ratio = match self.autoscalers[0].predictive_policy() {
                Some(pred) => {
                    let lag = self.epoch * 2;
                    let (mut num, mut den) = (0.0, 0.0);
                    for session in &self.sessions {
                        if let Some(ratio) = session.fleet_phase_ratio(now, pred.horizon, lag) {
                            let weight = (session.connected_viewers() as f64).max(1.0);
                            num += ratio * weight;
                            den += weight;
                        }
                    }
                    if den > 0.0 {
                        num / den
                    } else {
                        1.0
                    }
                }
                None => 1.0,
            };
            let period_secs = self.epoch.as_secs_f64();
            let live_slots = self.autoscalers.len().min(slots);
            for (slot, &fresh_kbps) in fresh.iter().enumerate().take(live_slots) {
                let pool = *self.broker.lock().expect("broker lock").cdn().pool(slot);
                // Score forecasts whose horizon has come due.
                while let Some(&(due, forecast_mbps)) = self.pending_forecasts[slot].front() {
                    if due > now {
                        break;
                    }
                    self.pending_forecasts[slot].pop_front();
                    self.forecast_errors
                        .push((now, forecast_mbps - pool.used().as_mbps_f64()));
                }
                let scaler = &mut self.autoscalers[slot];
                let decision = if predictive {
                    let used_kbps = pool.used().as_kbps();
                    let prev = std::mem::replace(&mut self.prev_used_kbps[slot], used_kbps);
                    let inflow = fresh_kbps as f64 / 1_000.0 / period_secs;
                    let trend = (used_kbps as f64 - prev as f64) / 1_000.0 / period_secs;
                    scaler.observe_demand(inflow, trend);
                    let decision = scaler.evaluate_predictive(now, &pool, phase_ratio);
                    if let Some(forecast) = scaler.last_forecast() {
                        self.pending_forecasts[slot].push_back(forecast);
                    }
                    decision
                } else {
                    scaler.evaluate(now, &pool)
                };
                if let Some(decision) = decision {
                    self.broker.lock().expect("broker lock").apply_scale_slot(
                        slot,
                        decision.to,
                        now,
                    );
                    match decision.direction {
                        ScaleDirection::Up => self.autoscale_ups += 1,
                        ScaleDirection::Down => self.autoscale_downs += 1,
                    }
                }
            }
        }

        // 3. Per-tenant served-usage metering.
        self.broker.lock().expect("broker lock").accrue_usage(now);

        // 4. Deficit-fair retry draining: split each pool's headroom
        // over the tenants with parked joins, then hand every session
        // its arbitrated budget.
        let pendings: Vec<Vec<u64>> = self
            .sessions
            .iter()
            .map(|s| s.fleet_pending_retry_kbps())
            .collect();
        let mut budgets = vec![vec![0u64; slots]; self.sessions.len()];
        for slot in 0..slots {
            let contenders: Vec<usize> = (0..self.sessions.len())
                .filter(|&i| pendings[i].get(slot).copied().unwrap_or(0) > 0)
                .collect();
            if contenders.is_empty() {
                continue;
            }
            let demands: Vec<(TenantId, u64)> = contenders
                .iter()
                .map(|&i| (self.tenant_ids[i], pendings[i][slot]))
                .collect();
            let grants = self
                .broker
                .lock()
                .expect("broker lock")
                .arbitrate_retry(slot, &demands);
            for (&i, &grant) in contenders.iter().zip(grants.iter()) {
                budgets[i][slot] = grant;
            }
        }
        for (session, budget) in self.sessions.iter_mut().zip(budgets.iter()) {
            session.fleet_drain_retries(budget);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DelayModelChoice;
    use telecast_cdn::CdnConfig;
    use telecast_cdn::PoolScope;
    use telecast_media::ChurnSpec;
    use telecast_net::{Bandwidth, BandwidthProfile};

    fn fleet_config(pool_mbps: u64) -> SessionConfig {
        SessionConfig::default()
            .with_outbound(BandwidthProfile::uniform_mbps(2, 14))
            .with_cdn(
                CdnConfig::default()
                    .with_outbound(Bandwidth::from_mbps(pool_mbps))
                    .with_pool_scope(PoolScope::PerRegion),
            )
            .with_delay_model(DelayModelChoice::Dense)
    }

    fn tenant_config(seed: u64, pool_mbps: u64) -> SessionConfig {
        fleet_config(pool_mbps).with_seed(seed)
    }

    #[test]
    fn fleet_runs_two_tenants_deterministically() {
        let run = || {
            let base = fleet_config(400);
            let mut fleet = TenantFleet::new(&base, SimDuration::from_secs(15));
            for t in 0..2u64 {
                let idx = fleet.add_tenant(
                    &tenant_config(100 + t, 400),
                    TenantQuota::even_split(2, 2),
                    400,
                );
                let horizon = SimTime::from_secs(240);
                fleet
                    .session_mut(idx)
                    .start_churn(ChurnSpec::steady_state(150, 0.5), horizon, 150);
            }
            fleet.run_until(SimTime::from_secs(240));
            (
                fleet.session(0).connected_viewers(),
                fleet.session(1).connected_viewers(),
                fleet.session(0).metrics().acceptance_ratio(),
                fleet.served_mbps_hours(0),
                fleet.provisioned_mbps_hours_at(SimTime::from_secs(240)),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "fleet run is not seed-deterministic");
        assert!(a.0 > 0 && a.1 > 0, "tenant audiences collapsed");
        assert!(a.3 > 0.0, "no served usage accrued");
    }

    #[test]
    fn fleet_conserves_pool_capacity_across_tenants() {
        let base = fleet_config(300);
        let mut fleet = TenantFleet::new(&base, SimDuration::from_secs(10));
        for t in 0..3u64 {
            let idx = fleet.add_tenant(
                &tenant_config(7 + t, 300),
                TenantQuota::even_split(3, 3),
                200,
            );
            let horizon = SimTime::from_secs(120);
            fleet
                .session_mut(idx)
                .start_churn(ChurnSpec::steady_state(80, 0.5), horizon, 80);
        }
        fleet.run_until(SimTime::from_secs(120));
        let broker = fleet.broker();
        let broker = broker.lock().unwrap();
        let cdn = broker.cdn();
        for slot in 0..cdn.pool_slots() {
            let by_tenant: u64 = (0..3)
                .map(|i| broker.used_kbps(fleet.tenant_id(i), slot))
                .sum();
            assert_eq!(
                by_tenant,
                cdn.pool(slot).used().as_kbps(),
                "tenant ledgers disagree with pool slot {slot}"
            );
        }
    }
}

//! The continuous-churn runtime.
//!
//! [`ChurnRuntime`] is the session-side state behind
//! `TelecastSession::start_churn`: it holds the [`ChurnSpec`] being
//! replayed, its own forked [`SimRng`] stream (so churn draws never
//! perturb the workload stream), and the pool of viewers currently
//! available for (re)admission. The session drives it purely through
//! engine events — `ChurnArrival` admits one pool viewer and self-
//! schedules the next Poisson arrival (thinned against the spec's
//! [`telecast_media::RateProfile`], so diurnal waves and flash spikes
//! modulate the rate), `ChurnLeave` fires at the end of
//! a viewer's lognormal dwell and either departs it gracefully or fails
//! it abruptly — so membership dynamics interleave with joins,
//! repositions and adaptation ticks in one deterministic virtual
//! timeline instead of synchronous batches.

use telecast_media::ChurnSpec;
use telecast_net::NodeId;
use telecast_sim::{SimRng, SimTime};

/// How many stale pool candidates one arrival may probe before giving
/// up. A candidate is stale when it is still connected because its
/// graceful departure has not finished processing; bounding the probes
/// keeps an arrival O(1).
pub(crate) const ARRIVAL_PROBE_CAP: usize = 8;

/// Live state of a running churn process (one per session at most).
#[derive(Debug, Clone)]
pub(crate) struct ChurnRuntime {
    /// The model being replayed.
    pub spec: ChurnSpec,
    /// No new arrivals are generated after this instant; dwell timers
    /// already scheduled may still fire later.
    pub horizon: SimTime,
    /// Dedicated random stream for gaps, dwells, views and fail draws.
    pub rng: SimRng,
    /// Viewers available for admission (unordered; arrivals draw
    /// uniformly at random, leavers are pushed back on departure).
    pub available: Vec<NodeId>,
}

impl ChurnRuntime {
    /// Pops a uniformly random candidate from the pool.
    pub fn pop_candidate(&mut self) -> Option<NodeId> {
        if self.available.is_empty() {
            return None;
        }
        let idx = self.rng.range(0..self.available.len());
        Some(self.available.swap_remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telecast_net::{NodeKind, NodeRegistry, Region};

    #[test]
    fn pop_candidate_drains_the_pool() {
        let mut reg = NodeRegistry::new();
        let pool: Vec<NodeId> = (0..10)
            .map(|_| reg.add(NodeKind::Viewer, Region::Europe))
            .collect();
        let mut runtime = ChurnRuntime {
            spec: ChurnSpec::steady_state(10, 0.5),
            horizon: SimTime::from_secs(60),
            rng: SimRng::seed_from_u64(1),
            available: pool.clone(),
        };
        let mut popped: Vec<NodeId> = (0..10).map(|_| runtime.pop_candidate().unwrap()).collect();
        assert_eq!(runtime.pop_candidate(), None);
        popped.sort_unstable();
        let mut expected = pool;
        expected.sort_unstable();
        assert_eq!(popped, expected);
    }

    #[test]
    fn pop_candidate_is_seed_deterministic() {
        let mut reg = NodeRegistry::new();
        let pool: Vec<NodeId> = (0..32)
            .map(|_| reg.add(NodeKind::Viewer, Region::Asia))
            .collect();
        let draw = |seed| {
            let mut runtime = ChurnRuntime {
                spec: ChurnSpec::steady_state(32, 0.1),
                horizon: SimTime::ZERO,
                rng: SimRng::seed_from_u64(seed),
                available: pool.clone(),
            };
            (0..32)
                .map(|_| runtime.pop_candidate().unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }
}

//! The delay layer hierarchy (paper §V-B1).
//!
//! Layers discretise end-to-end delay below the CDN: Layer-y contains
//! delays in `[Δ + yτ, Δ + (y+1)τ)` with `τ = dbuff / κ`. Equation 1 maps
//! a parent's delay plus the hop cost to the child's layer; Equation 2
//! turns a target layer into the cache subscription point (a frame
//! number); Layer Property 2 reduces view synchronization to bounding the
//! per-view layer spread by κ.

use serde::{Deserialize, Serialize};
use telecast_media::FrameNumber;
use telecast_sim::SimDuration;

/// The session-wide layer geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerScheme {
    /// CDN delivery delay Δ — the delay of Layer-0's lower edge.
    delta: SimDuration,
    /// Layer width τ.
    tau: SimDuration,
    /// κ (layer-spread bound for synchronous rendering).
    kappa: u64,
    /// Largest admissible layer index `⌊(dmax − Δ)/τ⌋`.
    max_layer: u64,
}

impl LayerScheme {
    /// Builds the scheme from the session parameters.
    ///
    /// # Panics
    ///
    /// Panics if κ < 2, `dbuff` is zero, or `dmax ≤ Δ` — these are
    /// validated at configuration time.
    pub fn new(delta: SimDuration, dbuff: SimDuration, kappa: u64, dmax: SimDuration) -> Self {
        assert!(kappa >= 2, "the paper requires κ ≥ 2");
        assert!(!dbuff.is_zero(), "dbuff must be positive");
        assert!(dmax > delta, "dmax must exceed Δ");
        let tau = dbuff / kappa;
        assert!(!tau.is_zero(), "τ must be positive");
        LayerScheme {
            delta,
            tau,
            kappa,
            max_layer: (dmax - delta) / tau,
        }
    }

    /// The CDN delay Δ.
    pub fn delta(&self) -> SimDuration {
        self.delta
    }

    /// The layer width τ.
    pub fn tau(&self) -> SimDuration {
        self.tau
    }

    /// κ.
    pub fn kappa(&self) -> u64 {
        self.kappa
    }

    /// Largest layer index a stream may occupy without violating `dmax`.
    pub fn max_layer(&self) -> u64 {
        self.max_layer
    }

    /// Layer of an absolute end-to-end (capture→receive) delay. Delays
    /// below Δ (impossible through the CDN path) clamp to Layer-0.
    pub fn layer_of_delay(&self, e2e: SimDuration) -> u64 {
        e2e.saturating_sub(self.delta) / self.tau
    }

    /// **Equation 1**: the layer a viewer reaches for a stream given its
    /// parent's end-to-end delay, the parent→viewer propagation delay and
    /// the parent's processing delay δ.
    pub fn child_layer(
        &self,
        parent_e2e: SimDuration,
        dprop: SimDuration,
        processing: SimDuration,
    ) -> u64 {
        self.layer_of_delay(parent_e2e + dprop + processing)
    }

    /// End-to-end delay of the *top* (lowest-delay edge) of a layer —
    /// where layer push-down positions a stream (the paper applies offset
    /// `ℛ = τ·r`, i.e. the top of the modified layer, so push-downs fade
    /// out along the child chain).
    pub fn delay_at_top_of(&self, layer: u64) -> SimDuration {
        self.delta + self.tau * layer
    }

    /// **Equation 2**: the subscription frame number that positions a
    /// viewer at `target_layer` for a stream whose producer's latest frame
    /// is `latest` at rate `fps`, over a parent at `dprop` with processing
    /// delay δ. Applies `ℛ = τ·r`.
    pub fn subscription_frame(
        &self,
        latest: FrameNumber,
        fps: u32,
        target_layer: u64,
        dprop: SimDuration,
        processing: SimDuration,
    ) -> FrameNumber {
        let frames = |d: SimDuration| d.as_micros() * fps as u64 / 1_000_000;
        // n′ = n − (Δ + (x+1)τ)·r + (dprop + δ)·r + dprop·r + ℛ, ℛ = τ·r
        //    = n − (Δ + x·τ)·r + (2·dprop + δ)·r
        let back = frames(self.delta + self.tau * target_layer);
        let forward = frames(dprop + dprop + processing);
        latest.saturating_back(back).forward(forward)
    }

    /// **Layer push-down** (§V-B3): clamps every layer to within κ of the
    /// deepest one. Returns the number of streams whose layer changed.
    ///
    /// The paper names the deepest index `Layer_min^u` (its layers count
    /// downward); we keep the arithmetic identical:
    /// `Layer_Si := max(Layer_Si, max_i(Layer_Si) − κ)`.
    pub fn push_down(&self, layers: &mut [u64]) -> usize {
        let Some(&deepest) = layers.iter().max() else {
            return 0;
        };
        let floor = deepest.saturating_sub(self.kappa);
        let mut changed = 0;
        for layer in layers {
            if *layer < floor {
                *layer = floor;
                changed += 1;
            }
        }
        changed
    }

    /// **Layer Property 2**: whether streams at these layers can be
    /// rendered synchronously (spread ≤ κ ⇒ inter-stream delay ≤ dbuff).
    pub fn renderable(&self, layers: &[u64]) -> bool {
        match (layers.iter().min(), layers.iter().max()) {
            (Some(&lo), Some(&hi)) => hi - lo <= self.kappa,
            _ => true,
        }
    }

    /// **Layer Property 1**: the inclusive range of layers a parent with
    /// end-to-end delay `parent_e2e` can share with a child at `dprop`,
    /// given its buffer+cache extent.
    pub fn shareable_range(
        &self,
        parent_e2e: SimDuration,
        dprop: SimDuration,
        processing: SimDuration,
        dcache: SimDuration,
        dbuff: SimDuration,
    ) -> (u64, u64) {
        let lo = self.child_layer(parent_e2e, dprop, processing);
        let hi = self.layer_of_delay(parent_e2e + dprop + processing + dcache + dbuff);
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telecast_sim::SimDuration as D;

    fn paper_scheme() -> LayerScheme {
        // Δ = 60 s, dbuff = 300 ms, κ = 2, dmax = 65 s → τ = 150 ms,
        // max layer = 5 s / 150 ms = 33.
        LayerScheme::new(D::from_secs(60), D::from_millis(300), 2, D::from_secs(65))
    }

    #[test]
    fn geometry_matches_paper() {
        let s = paper_scheme();
        assert_eq!(s.tau(), D::from_millis(150));
        assert_eq!(s.max_layer(), 33);
        assert_eq!(s.delta(), D::from_secs(60));
    }

    #[test]
    fn layer_of_delay_buckets() {
        let s = paper_scheme();
        assert_eq!(s.layer_of_delay(D::from_secs(60)), 0);
        assert_eq!(s.layer_of_delay(D::from_millis(60_149)), 0);
        assert_eq!(s.layer_of_delay(D::from_millis(60_150)), 1);
        assert_eq!(s.layer_of_delay(D::from_millis(60_450)), 3);
        // Below Δ clamps to 0.
        assert_eq!(s.layer_of_delay(D::from_secs(1)), 0);
    }

    #[test]
    fn eq1_child_layer() {
        let s = paper_scheme();
        // CDN child: parent delay Δ, cheap hop → Layer-0.
        assert_eq!(
            s.child_layer(D::from_secs(60), D::from_millis(20), D::from_millis(20)),
            0
        );
        // One more hop of 100 ms processing + 60 ms prop → 160 ms past Δ → Layer-1.
        assert_eq!(
            s.child_layer(D::from_secs(60), D::from_millis(60), D::from_millis(100)),
            1
        );
    }

    #[test]
    fn layer_tops_are_affine() {
        let s = paper_scheme();
        assert_eq!(s.delay_at_top_of(0), D::from_secs(60));
        assert_eq!(s.delay_at_top_of(4), D::from_millis(60_600));
    }

    #[test]
    fn eq2_subscription_frame() {
        let s = paper_scheme();
        let latest = FrameNumber::new(10_000);
        // Target Layer-0 with a free hop: n′ = n − Δ·r = 10_000 − 600.
        let n = s.subscription_frame(latest, 10, 0, D::ZERO, D::ZERO);
        assert_eq!(n.value(), 9_400);
        // One layer deeper backs off τ·r = 1.5 frames → 1 more at 10 fps.
        let n1 = s.subscription_frame(latest, 10, 1, D::ZERO, D::ZERO);
        assert_eq!(n1.value(), 9_399);
        // Propagation compensation moves the point forward again.
        let n2 = s.subscription_frame(latest, 10, 0, D::from_millis(100), D::ZERO);
        assert_eq!(n2.value(), 9_402);
    }

    #[test]
    fn eq2_saturates_at_session_start() {
        let s = paper_scheme();
        let n = s.subscription_frame(FrameNumber::new(5), 10, 3, D::ZERO, D::ZERO);
        assert_eq!(n.value(), 0, "early-session subscription clamps to frame 0");
    }

    #[test]
    fn push_down_bounds_spread_by_kappa() {
        let s = paper_scheme();
        let mut layers = vec![0, 1, 5, 2];
        let changed = s.push_down(&mut layers);
        assert_eq!(layers, vec![3, 3, 5, 3]);
        assert_eq!(changed, 3);
        assert!(s.renderable(&layers));
    }

    #[test]
    fn push_down_noop_when_within_bound() {
        let s = paper_scheme();
        let mut layers = vec![4, 5, 6];
        assert_eq!(s.push_down(&mut layers), 0);
        assert_eq!(layers, vec![4, 5, 6]);
    }

    #[test]
    fn push_down_empty_is_zero() {
        let s = paper_scheme();
        let mut layers: Vec<u64> = vec![];
        assert_eq!(s.push_down(&mut layers), 0);
        assert!(s.renderable(&layers));
    }

    #[test]
    fn renderable_is_layer_property_2() {
        let s = paper_scheme();
        assert!(s.renderable(&[3, 4, 5]));
        assert!(!s.renderable(&[3, 6]));
        assert!(s.renderable(&[7]));
    }

    #[test]
    fn shareable_range_covers_cache() {
        let s = paper_scheme();
        let (lo, hi) = s.shareable_range(
            D::from_secs(60),
            D::from_millis(30),
            D::from_millis(100),
            D::from_secs(25),
            D::from_millis(300),
        );
        assert_eq!(lo, 0);
        // 25.3 s of cache+buffer past the receive point ≈ 169 layers.
        assert!(hi > 160, "cache shares deep layers, got {hi}");
        assert!(lo <= hi);
    }

    #[test]
    #[should_panic(expected = "κ ≥ 2")]
    fn kappa_one_panics() {
        LayerScheme::new(D::from_secs(60), D::from_millis(300), 1, D::from_secs(65));
    }
}

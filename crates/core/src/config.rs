//! Session configuration.

use serde::{Deserialize, Serialize};
use telecast_cdn::{AutoscalePolicy, CdnConfig, PredictivePolicy};
use telecast_media::ProducerSite;
use telecast_net::BandwidthProfile;
use telecast_sim::SimDuration;

/// How a joining stream request is placed in the overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// The paper's degree push-down (Algorithm 1) inside view groups.
    PushDown,
    /// The Random dissemination baseline of §VII: per stream, probe
    /// `probes` uniformly random session members (no view grouping, no
    /// displacement); fall back to the CDN when every probe misses.
    Random {
        /// Number of random candidates examined per stream.
        probes: u32,
    },
    /// First-fit: scan group members in join order and take the first
    /// free slot (no displacement). An ablation of the push-down rule.
    Fifo,
}

/// How a viewer's outbound capacity is split across its accepted streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutboundPolicy {
    /// The paper's allocation: one out-link (slot) per stream per pass, in
    /// priority order, until capacity runs out — guarantees
    /// `abw(S_hi) ≥ abw(S_lo)`.
    RoundRobin,
    /// Give everything to the highest-priority stream first (the
    /// "more viewers, poor quality" end of Fig. 8's trade-off).
    PriorityFirst,
    /// Split capacity evenly across accepted streams (the "fewer viewers,
    /// better quality" end).
    EqualSplit,
}

/// Which inter-node delay substrate the session simulates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DelayModelChoice {
    /// Pick by population size: the dense synthetic matrix below
    /// `telecast_net::COORDINATE_THRESHOLD` nodes, the O(n) coordinate
    /// model at or above it. The default.
    Auto,
    /// Always the dense `SyntheticPlanetLab` matrix (O(n²) memory).
    Dense,
    /// Always the O(n) coordinate model — required for 10k+-viewer
    /// sessions, where the dense tables would need gigabytes.
    Coordinate,
}

/// Whether view groups are scoped per LSC region or session-global.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupScope {
    /// One group per (LSC region, view) — the paper's architecture.
    PerLsc,
    /// One group per view across all regions (an ablation that trades
    /// locality for sharing).
    Global,
}

/// Full configuration of a 4D TeleCast session.
///
/// [`SessionConfig::default`] reproduces the paper's evaluation setup
/// (§VII): 2 producers × 8 streams at 2 Mbps, 6-stream views (3 per site),
/// 12 Mbps viewer inbound, Δ = 60 s, `dmax` = 65 s, `dbuff` = 300 ms,
/// 25 s cache, κ = 2, 6000 Mbps CDN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// The producer sites of the 3DTI session.
    pub sites: Vec<ProducerSite>,
    /// Streams selected per local view (3 in the evaluation).
    pub streams_per_local_view: usize,
    /// Viewer inbound capacity distribution (`C_ibw`).
    pub viewer_inbound: BandwidthProfile,
    /// Viewer outbound capacity distribution (`C_obw`).
    pub viewer_outbound: BandwidthProfile,
    /// CDN configuration (pool, Δ, pricing).
    pub cdn: CdnConfig,
    /// Maximum tolerated capture→display delay (`dmax`).
    pub dmax: SimDuration,
    /// Viewer buffer length (`dbuff`).
    pub dbuff: SimDuration,
    /// Viewer cache length (`dcache`).
    pub dcache: SimDuration,
    /// Layer-width divisor κ (`τ = dbuff / κ`, κ ≥ 2).
    pub kappa: u64,
    /// Per-hop forwarding/processing delay at a viewer gateway (δ).
    pub hop_processing: SimDuration,
    /// Control-plane processing time at the LSC per join/view-change.
    pub lsc_processing: SimDuration,
    /// Placement strategy (paper: push-down).
    pub placement: PlacementStrategy,
    /// Outbound allocation policy (paper: round-robin).
    pub outbound_policy: OutboundPolicy,
    /// Whether the delay-layer subscription machinery is active; disabling
    /// it is the "no view synchronization" ablation.
    pub layering_enabled: bool,
    /// Period of the §VI delay-layer adaptation loop (viewers re-derive
    /// their layers from the currently observed network delays and
    /// re-subscribe if the κ bound drifted). `None` disables periodic
    /// adaptation; structural changes still trigger resynchronisation.
    pub adaptation_period: Option<SimDuration>,
    /// Period of the GSC monitoring sampler (population and CDN usage
    /// recorded into the session time series as engine events). `None`
    /// disables periodic sampling; CDN usage is still sampled after
    /// every protocol event.
    pub monitor_period: Option<SimDuration>,
    /// Elastic CDN autoscaling policy. `None` (the default) keeps the
    /// paper's statically-provisioned pool; `Some` drives a periodic
    /// `AutoscaleTick` engine event that resizes the pool inside the
    /// policy's utilisation band and retries CDN-rejected joins after
    /// each scale-up.
    pub autoscale: Option<AutoscalePolicy>,
    /// Predictive extension of the autoscaler: scale on a short-horizon
    /// demand forecast (churn rate-profile phase × an EWMA of observed
    /// per-region arrival demand) instead of reacting to utilisation
    /// alone. Requires `autoscale`; `None` keeps the reactive
    /// utilisation-band controller.
    pub predictive: Option<PredictivePolicy>,
    /// Per-view tree prune/merge: when a view group's registered
    /// membership falls to this floor or below, the LSC folds the
    /// group's CDN-rooted tree fragments under P2P parents (returning
    /// the folded roots' CDN capacity to the pool) and retires the
    /// group once it is fully drained. `None` (the default) disables
    /// pruning — abandoned views keep their fragment forest, the
    /// pre-existing behaviour.
    pub prune_member_floor: Option<usize>,
    /// Scope of view groups.
    pub group_scope: GroupScope,
    /// Delay substrate (dense matrix vs O(n) coordinates).
    pub delay_model: DelayModelChoice,
    /// Master seed for all stochastic inputs.
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            sites: ProducerSite::teeve_pair().to_vec(),
            streams_per_local_view: 3,
            viewer_inbound: BandwidthProfile::fixed_mbps(12),
            viewer_outbound: BandwidthProfile::uniform_mbps(0, 12),
            cdn: CdnConfig::default(),
            dmax: SimDuration::from_secs(65),
            dbuff: SimDuration::from_millis(300),
            dcache: SimDuration::from_secs(25),
            kappa: 2,
            hop_processing: SimDuration::from_millis(100),
            lsc_processing: SimDuration::from_millis(20),
            placement: PlacementStrategy::PushDown,
            outbound_policy: OutboundPolicy::RoundRobin,
            layering_enabled: true,
            adaptation_period: None,
            monitor_period: None,
            autoscale: None,
            predictive: None,
            prune_member_floor: None,
            group_scope: GroupScope::PerLsc,
            delay_model: DelayModelChoice::Auto,
            seed: 42,
        }
    }
}

impl SessionConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.sites.is_empty() {
            return Err("at least one producer site is required".into());
        }
        if self.streams_per_local_view == 0 {
            return Err("streams_per_local_view must be positive".into());
        }
        if self.kappa < 2 {
            return Err("kappa must be at least 2 (the paper requires κ ≥ 2)".into());
        }
        if self.dbuff.is_zero() {
            return Err("dbuff must be positive".into());
        }
        if self.dmax <= self.cdn.delta {
            return Err("dmax must exceed the CDN delay Δ".into());
        }
        if let PlacementStrategy::Random { probes: 0 } = self.placement {
            return Err("random placement needs at least one probe".into());
        }
        if let Some(policy) = &self.autoscale {
            policy.validate().map_err(|e| format!("autoscale: {e}"))?;
        }
        if let Some(predictive) = &self.predictive {
            if self.autoscale.is_none() {
                return Err("predictive scaling requires an autoscale policy".into());
            }
            predictive
                .validate()
                .map_err(|e| format!("predictive: {e}"))?;
        }
        Ok(())
    }

    /// The layer width `τ = dbuff / κ`.
    pub fn tau(&self) -> SimDuration {
        self.dbuff / self.kappa
    }

    /// Convenience: the paper's Fig. 13/15 sweep variants — same config,
    /// different outbound profile.
    pub fn with_outbound(mut self, profile: BandwidthProfile) -> Self {
        self.viewer_outbound = profile;
        self
    }

    /// Convenience: replace the CDN configuration.
    pub fn with_cdn(mut self, cdn: CdnConfig) -> Self {
        self.cdn = cdn;
        self
    }

    /// Convenience: replace the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Convenience: force a delay-model backend.
    pub fn with_delay_model(mut self, choice: DelayModelChoice) -> Self {
        self.delay_model = choice;
        self
    }

    /// Convenience: enable periodic GSC monitoring samples.
    pub fn with_monitor_period(mut self, period: SimDuration) -> Self {
        self.monitor_period = Some(period);
        self
    }

    /// Convenience: enable elastic CDN autoscaling under `policy`.
    pub fn with_autoscale(mut self, policy: AutoscalePolicy) -> Self {
        self.autoscale = Some(policy);
        self
    }

    /// Convenience: make the autoscaler predictive (forecast-driven).
    pub fn with_predictive(mut self, predictive: PredictivePolicy) -> Self {
        self.predictive = Some(predictive);
        self
    }

    /// Convenience: enable per-view tree prune/merge at `floor` members.
    pub fn with_prune_floor(mut self, floor: usize) -> Self {
        self.prune_member_floor = Some(floor);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telecast_net::Bandwidth;

    #[test]
    fn default_is_the_paper_setup() {
        let c = SessionConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.sites.len(), 2);
        assert_eq!(c.sites[0].streams().len(), 8);
        assert_eq!(c.streams_per_local_view, 3);
        assert_eq!(c.dmax, SimDuration::from_secs(65));
        assert_eq!(c.tau(), SimDuration::from_millis(150));
        assert_eq!(c.cdn.outbound_capacity, Bandwidth::from_mbps(6_000));
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = SessionConfig {
            kappa: 1,
            ..SessionConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("kappa"));

        let c = SessionConfig {
            sites: Vec::new(),
            ..SessionConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("producer site"));

        let c = SessionConfig {
            dmax: SimDuration::from_secs(10), // below Δ = 60 s
            ..SessionConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("dmax"));

        let c = SessionConfig {
            placement: PlacementStrategy::Random { probes: 0 },
            ..SessionConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("probe"));

        let c = SessionConfig {
            autoscale: Some(AutoscalePolicy {
                step: Bandwidth::ZERO,
                ..AutoscalePolicy::default()
            }),
            ..SessionConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("autoscale"));

        // Predictive scaling is an extension of the autoscaler, not a
        // standalone mode.
        let c = SessionConfig {
            predictive: Some(PredictivePolicy::default()),
            ..SessionConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("requires an autoscale"));
        let c = SessionConfig {
            autoscale: Some(AutoscalePolicy::default()),
            predictive: Some(PredictivePolicy {
                alpha: 2.0,
                ..PredictivePolicy::default()
            }),
            ..SessionConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("predictive"));
    }

    #[test]
    fn builders_chain() {
        let c = SessionConfig::default()
            .with_outbound(BandwidthProfile::fixed_mbps(8))
            .with_seed(7);
        assert_eq!(c.viewer_outbound, BandwidthProfile::fixed_mbps(8));
        assert_eq!(c.seed, 7);
    }
}

//! The GSC monitoring component (paper §III).
//!
//! "The GSC also continuously monitors producers metadata (such as frame
//! rate, frame number, and frame size for each stream), stream priorities
//! of each viewer's request, and geographical location of the viewers.
//! All metadata information are available for the viewers upon query."
//!
//! [`GscMonitor`] is that registry: per-stream production metadata (the
//! `n` and `r` of Equation 2) plus the region → LSC directory used to
//! route join requests.

use std::collections::{BTreeMap, HashMap};

use telecast_media::{FrameNumber, ProducerSite, StreamId};
use telecast_net::{NodeId, Region};
use telecast_sim::SimTime;

/// Production metadata of one stream, as the GSC reports it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamMeta {
    /// Frame rate `r` in frames per second.
    pub fps: u32,
    /// Nominal bitrate in Kbps.
    pub bitrate_kbps: u64,
    /// Mean encoded frame size in bytes.
    pub mean_frame_bytes: u64,
}

/// The Global Session Controller's monitoring state.
#[derive(Debug, Clone)]
pub struct GscMonitor {
    streams: HashMap<StreamId, StreamMeta>,
    lsc_by_region: BTreeMap<Region, NodeId>,
}

impl GscMonitor {
    /// Builds the monitor from the session's producer sites and the
    /// region → LSC directory.
    pub fn new(sites: &[ProducerSite], lsc_by_region: BTreeMap<Region, NodeId>) -> Self {
        let mut streams = HashMap::new();
        for site in sites {
            for s in site.streams() {
                streams.insert(
                    s.id,
                    StreamMeta {
                        fps: s.fps,
                        bitrate_kbps: s.bitrate_kbps,
                        mean_frame_bytes: s.mean_frame_bytes(),
                    },
                );
            }
        }
        GscMonitor {
            streams,
            lsc_by_region,
        }
    }

    /// Metadata for `stream`, if it is produced in this session.
    pub fn stream_meta(&self, stream: StreamId) -> Option<StreamMeta> {
        self.streams.get(&stream).copied()
    }

    /// The latest captured frame number `n` of `stream` at virtual time
    /// `at` — what Eq. 2 queries ("collected from the GSC monitoring").
    /// Producers capture from time zero at their configured rate.
    pub fn latest_frame(&self, stream: StreamId, at: SimTime) -> Option<FrameNumber> {
        let meta = self.streams.get(&stream)?;
        Some(FrameNumber::new(
            at.as_micros() * meta.fps as u64 / 1_000_000,
        ))
    }

    /// The LSC responsible for `region`.
    ///
    /// # Panics
    ///
    /// Panics if the region has no LSC — the session registers one per
    /// region at construction.
    pub fn lsc_for(&self, region: Region) -> NodeId {
        self.lsc_by_region[&region]
    }

    /// Number of monitored streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telecast_net::{NodeKind, NodeRegistry};

    fn monitor() -> GscMonitor {
        let mut reg = NodeRegistry::new();
        let mut lscs = BTreeMap::new();
        for &r in &Region::ALL {
            lscs.insert(r, reg.add(NodeKind::LocalController, r));
        }
        GscMonitor::new(&ProducerSite::teeve_pair(), lscs)
    }

    #[test]
    fn registers_every_producer_stream() {
        let m = monitor();
        assert_eq!(m.stream_count(), 16);
        let any = ProducerSite::teeve_pair()[0].streams()[3].id;
        let meta = m.stream_meta(any).expect("registered");
        assert_eq!(meta.fps, 10);
        assert_eq!(meta.bitrate_kbps, 2_000);
        assert_eq!(meta.mean_frame_bytes, 25_000);
    }

    #[test]
    fn latest_frame_tracks_the_clock() {
        let m = monitor();
        let id = ProducerSite::teeve_pair()[0].streams()[0].id;
        assert_eq!(m.latest_frame(id, SimTime::ZERO), Some(FrameNumber::ZERO));
        // 10 fps → frame 600 after one minute.
        assert_eq!(
            m.latest_frame(id, SimTime::from_secs(60)),
            Some(FrameNumber::new(600))
        );
        // Sub-frame-period instants truncate.
        assert_eq!(
            m.latest_frame(id, SimTime::from_millis(99)),
            Some(FrameNumber::ZERO)
        );
    }

    #[test]
    fn unknown_stream_is_none() {
        let m = monitor();
        let foreign = StreamId::new(telecast_media::SiteId::new(9), 0);
        assert_eq!(m.stream_meta(foreign), None);
        assert_eq!(m.latest_frame(foreign, SimTime::ZERO), None);
    }

    #[test]
    fn lsc_directory_covers_all_regions() {
        let m = monitor();
        for &r in &Region::ALL {
            let _ = m.lsc_for(r); // must not panic
        }
    }
}

//! Per-viewer session state.

use std::collections::BTreeMap;

use telecast_cdn::CdnLease;
use telecast_media::{StreamId, ViewId};
use telecast_net::{NodeId, NodePorts, Region};
use telecast_overlay::{SessionRoutingTable, TreeParent};
use telecast_sim::SimDuration;

/// Lifecycle of a viewer within the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewerStatus {
    /// Registered but never joined (or departed).
    Idle,
    /// Join request in flight.
    Joining,
    /// Connected and receiving streams.
    Connected,
    /// Join was rejected by admission control.
    Rejected,
}

/// One accepted stream at a viewer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSub {
    /// Current upstream.
    pub parent: TreeParent,
    /// Active CDN lease when `parent` is the CDN.
    pub lease: Option<CdnLease>,
    /// End-to-end delay along the overlay path, before delayed receive.
    pub base_e2e: SimDuration,
    /// Effective end-to-end delay after layer positioning (≥ `base_e2e`).
    pub e2e: SimDuration,
    /// Delay layer index (Eq. 1, possibly raised by layer push-down).
    pub layer: u64,
    /// Whether layer push-down moved this stream off its natural layer.
    pub pushed_down: bool,
    /// The stream's bitrate in Kbps (cached for release accounting).
    pub bitrate_kbps: u64,
}

/// All session state of one viewer gateway.
#[derive(Debug, Clone)]
pub struct ViewerState {
    /// Network identity.
    pub node: NodeId,
    /// Geographic region (decides the LSC and the CDN edge).
    pub region: Region,
    /// Inbound/outbound port accounts.
    pub ports: NodePorts,
    /// Lifecycle status.
    pub status: ViewerStatus,
    /// Currently requested view, when connected.
    pub view: Option<ViewId>,
    /// Accepted stream subscriptions.
    pub subs: BTreeMap<StreamId, StreamSub>,
    /// Out-degree granted per stream by the outbound allocation.
    pub out_degrees: BTreeMap<StreamId, u32>,
    /// Temporary direct-CDN serves installed by the fast view-change path,
    /// released once the background join lands.
    pub temp_leases: BTreeMap<StreamId, CdnLease>,
    /// CDN leases acquired mid-placement, moved into [`StreamSub::lease`]
    /// when the join commits (or released on rollback).
    pub pending_leases: BTreeMap<StreamId, CdnLease>,
    /// The viewer's data-plane routing table (Table I).
    pub routing: SessionRoutingTable,
}

impl ViewerState {
    /// Creates an idle viewer.
    pub fn new(node: NodeId, region: Region, ports: NodePorts) -> Self {
        ViewerState {
            node,
            region,
            ports,
            status: ViewerStatus::Idle,
            view: None,
            subs: BTreeMap::new(),
            out_degrees: BTreeMap::new(),
            temp_leases: BTreeMap::new(),
            pending_leases: BTreeMap::new(),
            routing: SessionRoutingTable::new(),
        }
    }

    /// Number of streams currently received (excluding temporary
    /// view-change serves).
    pub fn stream_count(&self) -> usize {
        self.subs.len()
    }

    /// The layer indexes of all subscribed streams.
    pub fn layers(&self) -> impl Iterator<Item = u64> + '_ {
        self.subs.values().map(|s| s.layer)
    }

    /// The deepest (maximum) layer across subscriptions, if any.
    pub fn max_layer(&self) -> Option<u64> {
        self.layers().max()
    }

    /// Whether the viewer currently has any stream served by the CDN
    /// (including temporary view-change serves).
    pub fn uses_cdn(&self) -> bool {
        !self.temp_leases.is_empty() || self.subs.values().any(|s| s.parent == TreeParent::Cdn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telecast_net::{Bandwidth, NodeKind, NodeRegistry};

    fn viewer() -> ViewerState {
        let mut reg = NodeRegistry::new();
        let id = reg.add(NodeKind::Viewer, Region::Asia);
        ViewerState::new(
            id,
            Region::Asia,
            NodePorts::new(Bandwidth::from_mbps(12), Bandwidth::from_mbps(6)),
        )
    }

    #[test]
    fn fresh_viewer_is_idle_and_empty() {
        let v = viewer();
        assert_eq!(v.status, ViewerStatus::Idle);
        assert_eq!(v.stream_count(), 0);
        assert_eq!(v.max_layer(), None);
        assert!(!v.uses_cdn());
        assert!(v.routing.is_empty());
    }

    #[test]
    fn layer_accessors_reflect_subs() {
        use telecast_media::SiteId;
        let mut v = viewer();
        for (c, layer) in [(0u16, 2u64), (1, 5)] {
            v.subs.insert(
                StreamId::new(SiteId::new(0), c),
                StreamSub {
                    parent: TreeParent::Cdn,
                    lease: None,
                    base_e2e: SimDuration::from_secs(60),
                    e2e: SimDuration::from_secs(60),
                    layer,
                    pushed_down: false,
                    bitrate_kbps: 2_000,
                },
            );
        }
        assert_eq!(v.stream_count(), 2);
        assert_eq!(v.max_layer(), Some(5));
        assert!(v.uses_cdn());
    }
}

#![warn(missing_docs)]

//! # 4D TeleCast
//!
//! A full reproduction of **"4D TeleCast: Towards Large Scale Multi-site
//! and Multi-view Dissemination of 3DTI Contents"** (Arefin, Huang,
//! Nahrstedt, Agarwal — ICDCS 2012): a hybrid CDN + P2P dissemination
//! framework that scales live multi-stream 3D tele-immersive content to
//! hundreds–thousands of passive viewers with run-time view selection.
//!
//! The crate implements the paper's three pillars:
//!
//! 1. **Multi-stream overlay construction** (§IV) — priority-driven
//!    inbound allocation, round-robin outbound allocation
//!    ([`alloc`]), and per-stream trees built with the degree push-down
//!    algorithm inside view groups;
//! 2. **View synchronization** (§V) — the delay-layer hierarchy
//!    ([`LayerScheme`]; Equations 1–2, Layer Properties 1–2), viewer
//!    buffer/cache ([`ViewerBuffer`]), and layer push-down subscription
//!    with chained propagation;
//! 3. **System adaptation** (§VI) — fast CDN-backed view changes with
//!    background joins, victim recovery, and delay-layer adaptation.
//!
//! [`TelecastSession`] is the facade: configure with [`SessionConfig`],
//! provision viewers, drive joins/view-changes/departures (directly or
//! from a scripted [`telecast_media::ViewerWorkload`]), and read the
//! metrics the paper's figures plot.
//!
//! ```
//! use telecast::{SessionConfig, TelecastSession};
//! use telecast_media::ViewId;
//!
//! let mut session = TelecastSession::builder(SessionConfig::default())
//!     .viewers(50)
//!     .build();
//! for v in session.viewer_ids().to_vec() {
//!     session.request_join(v, ViewId::new(0))?;
//! }
//! session.run_to_idle();
//! println!("ρ = {}", session.metrics().acceptance_ratio());
//! println!("CDN = {} Mbps", session.cdn().outbound().used().as_mbps_f64());
//! # Ok::<(), telecast::TelecastError>(())
//! ```

pub mod alloc;
mod buffer;
mod churn;
mod config;
mod dataplane;
mod error;
mod layers;
mod metrics;
mod monitor;
mod protocol;
mod session;
mod shard;
mod tenancy;
mod viewer;

pub use buffer::ViewerBuffer;
pub use config::{DelayModelChoice, GroupScope, OutboundPolicy, PlacementStrategy, SessionConfig};
pub use dataplane::{DataPlane, RenderReport};
pub use error::{RejectReason, TelecastError};
pub use layers::LayerScheme;
pub use metrics::SessionMetrics;
pub use monitor::{GscMonitor, StreamMeta};
pub use protocol::{ControlMessage, ProtocolLog, ProtocolPhase};
pub use session::{SessionBuilder, TelecastSession};
pub use shard::{ShardStats, ShardedSession};
pub use tenancy::TenantFleet;
pub use viewer::{StreamSub, ViewerState, ViewerStatus};

//! Typed control-plane messages (Figures 5 and 6 of the paper).
//!
//! The simulator executes these exchanges implicitly (their latencies are
//! what the join / view-change delay metrics measure); this module gives
//! them explicit types so protocol sequences can be constructed, logged
//! and asserted on — the in-simulator stand-in for the S-RTP control
//! channel of [4], which was never published (DESIGN.md §4).

use serde::{Deserialize, Serialize};
use telecast_media::{FrameNumber, StreamId, ViewId};
use telecast_net::NodeId;
use telecast_sim::SimTime;

/// A control-plane message of the join (Fig. 5) or subscription (Fig. 6)
/// protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlMessage {
    /// Viewer → GSC: initial registration.
    JoinRequest {
        /// The joining viewer.
        viewer: NodeId,
    },
    /// GSC → LSC: forwarded registration for the viewer's region.
    JoinForward {
        /// The joining viewer.
        viewer: NodeId,
        /// The responsible LSC.
        lsc: NodeId,
    },
    /// LSC → viewer: registration accepted.
    JoinOk {
        /// The joining viewer.
        viewer: NodeId,
    },
    /// Viewer → LSC: the view request with capacity advertisement.
    ViewRequest {
        /// The requesting viewer.
        viewer: NodeId,
        /// The requested global view.
        view: ViewId,
    },
    /// LSC → viewer (and parents): overlay information — parents and
    /// children per accepted stream.
    OverlayInfo {
        /// The recipient.
        to: NodeId,
        /// The stream the topology entry concerns.
        stream: StreamId,
    },
    /// Viewer → parent: start streaming from a subscription point
    /// (Fig. 6 `Subscription-Start`).
    SubscriptionStart {
        /// The subscribing child.
        child: NodeId,
        /// The parent being subscribed to.
        parent: NodeId,
        /// The stream.
        stream: StreamId,
        /// Cache position to stream from (Eq. 2), `None` for live.
        from_frame: Option<FrameNumber>,
    },
    /// Viewer → child: an updated subscription point after a layer change
    /// (Fig. 6 `Subscription-Update`).
    SubscriptionUpdate {
        /// The child whose feed position changes.
        child: NodeId,
        /// The parent issuing the update.
        parent: NodeId,
        /// The stream.
        stream: StreamId,
        /// The new cache position.
        from_frame: FrameNumber,
    },
}

impl ControlMessage {
    /// The protocol phase this message belongs to, for accounting.
    pub fn phase(&self) -> ProtocolPhase {
        match self {
            ControlMessage::JoinRequest { .. }
            | ControlMessage::JoinForward { .. }
            | ControlMessage::JoinOk { .. }
            | ControlMessage::ViewRequest { .. } => ProtocolPhase::Join,
            ControlMessage::OverlayInfo { .. } => ProtocolPhase::OverlayConstruction,
            ControlMessage::SubscriptionStart { .. }
            | ControlMessage::SubscriptionUpdate { .. } => ProtocolPhase::Subscription,
        }
    }
}

/// Coarse protocol phases, matching the three LSC processing steps the
/// join delay accounts for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolPhase {
    /// Registration legs (viewer ↔ GSC ↔ LSC).
    Join,
    /// Bandwidth allocation + topology formation results.
    OverlayConstruction,
    /// Stream subscription (start/update) exchanges.
    Subscription,
}

/// An append-only log of control messages with timestamps; protocol
/// tests assert on sequences, overhead studies on counts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProtocolLog {
    entries: Vec<(SimTime, ControlMessage)>,
}

impl ProtocolLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a message.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the previous entry (control channels are
    /// logged in simulation order).
    pub fn record(&mut self, at: SimTime, message: ControlMessage) {
        if let Some(&(last, _)) = self.entries.last() {
            assert!(at >= last, "protocol log must be appended in time order");
        }
        self.entries.push((at, message));
    }

    /// All entries in time order.
    pub fn entries(&self) -> &[(SimTime, ControlMessage)] {
        &self.entries
    }

    /// Number of messages in the given phase.
    pub fn count_phase(&self, phase: ProtocolPhase) -> usize {
        self.entries
            .iter()
            .filter(|(_, m)| m.phase() == phase)
            .count()
    }

    /// Number of logged messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telecast_media::SiteId;
    use telecast_net::{NodeKind, NodeRegistry, Region};

    fn ids() -> (NodeId, NodeId, NodeId) {
        let mut reg = NodeRegistry::new();
        let a = reg.add(NodeKind::Viewer, Region::Asia);
        let b = reg.add(NodeKind::Viewer, Region::Asia);
        let c = reg.add(NodeKind::LocalController, Region::Asia);
        (a, b, c)
    }

    #[test]
    fn phases_classify_fig5_and_fig6() {
        let (viewer, parent, lsc) = ids();
        let stream = StreamId::new(SiteId::new(0), 0);
        assert_eq!(
            ControlMessage::JoinRequest { viewer }.phase(),
            ProtocolPhase::Join
        );
        assert_eq!(
            ControlMessage::JoinForward { viewer, lsc }.phase(),
            ProtocolPhase::Join
        );
        assert_eq!(
            ControlMessage::OverlayInfo { to: viewer, stream }.phase(),
            ProtocolPhase::OverlayConstruction
        );
        assert_eq!(
            ControlMessage::SubscriptionStart {
                child: viewer,
                parent,
                stream,
                from_frame: None
            }
            .phase(),
            ProtocolPhase::Subscription
        );
        assert_eq!(
            ControlMessage::SubscriptionUpdate {
                child: viewer,
                parent,
                stream,
                from_frame: FrameNumber::new(9)
            }
            .phase(),
            ProtocolPhase::Subscription
        );
    }

    #[test]
    fn log_counts_by_phase() {
        let (viewer, parent, _) = ids();
        let stream = StreamId::new(SiteId::new(0), 1);
        let mut log = ProtocolLog::new();
        log.record(SimTime::ZERO, ControlMessage::JoinRequest { viewer });
        log.record(
            SimTime::from_millis(40),
            ControlMessage::ViewRequest {
                viewer,
                view: ViewId::new(0),
            },
        );
        log.record(
            SimTime::from_millis(90),
            ControlMessage::SubscriptionStart {
                child: viewer,
                parent,
                stream,
                from_frame: Some(FrameNumber::new(100)),
            },
        );
        assert_eq!(log.len(), 3);
        assert_eq!(log.count_phase(ProtocolPhase::Join), 2);
        assert_eq!(log.count_phase(ProtocolPhase::Subscription), 1);
        assert_eq!(log.count_phase(ProtocolPhase::OverlayConstruction), 0);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_log_panics() {
        let (viewer, _, _) = ids();
        let mut log = ProtocolLog::new();
        log.record(
            SimTime::from_millis(10),
            ControlMessage::JoinRequest { viewer },
        );
        log.record(SimTime::ZERO, ControlMessage::JoinRequest { viewer });
    }
}

//! Frame-level data plane (paper §II-E's streaming model).
//!
//! The control plane decides *who* feeds *whom* at *which delay*; this
//! module actually moves 3D frames: synthetic TEEVE traces are generated
//! per stream and delivered into each connected viewer's
//! [`ViewerBuffer`] at the effective end-to-end delay its subscription
//! carries. Examples and integration tests use it to demonstrate that the
//! delay layers produce renderable 4D content; figure-scale experiments
//! do not need it (the paper's metrics are control-plane quantities).

use std::collections::HashMap;

use telecast_media::{SyntheticTeeveTrace, TeeveStreamConfig};
use telecast_net::NodeId;
use telecast_sim::{SimDuration, SimTime};

use crate::buffer::ViewerBuffer;
use crate::session::TelecastSession;
use crate::viewer::ViewerStatus;

/// Outcome of a synchronous render sweep over the audience.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RenderReport {
    /// Viewers that rendered a full synchronous view.
    pub rendered: usize,
    /// Viewers whose buffers could not produce a synchronous set.
    pub failed: usize,
    /// Connected viewers skipped because they had no subscriptions yet.
    pub idle: usize,
}

/// Frame pump: synthetic producer traces → viewer buffers.
#[derive(Debug)]
pub struct DataPlane {
    seed: u64,
    buffers: HashMap<NodeId, ViewerBuffer>,
    pumped_until: SimTime,
}

impl DataPlane {
    /// Creates an empty data plane; traces derive from `seed` so the
    /// frame content is reproducible.
    pub fn new(seed: u64) -> Self {
        DataPlane {
            seed,
            buffers: HashMap::new(),
            pumped_until: SimTime::ZERO,
        }
    }

    /// Generates every frame captured in `[pumped_until, until)` and
    /// delivers it to each connected viewer subscribed to the stream, at
    /// the viewer's effective end-to-end delay. Buffers are created on
    /// first delivery and expired frames evicted.
    pub fn pump(&mut self, session: &TelecastSession, until: SimTime) {
        let config = session.config();
        let from = self.pumped_until;
        if until <= from {
            return;
        }
        // Collect per-stream subscriber lists once.
        let mut subscribers: HashMap<telecast_media::StreamId, Vec<(NodeId, SimDuration)>> =
            HashMap::new();
        for &v in session.viewer_ids() {
            let state = session.viewer(v).expect("pool viewer");
            if state.status != ViewerStatus::Connected {
                continue;
            }
            for (&sid, sub) in &state.subs {
                subscribers.entry(sid).or_default().push((v, sub.e2e));
            }
        }
        for site in &config.sites {
            for info in site.streams() {
                let Some(subs) = subscribers.get(&info.id) else {
                    continue;
                };
                // Regenerate the trace from zero and skip to the window —
                // traces are deterministic, so this is exact.
                let mut trace = SyntheticTeeveTrace::new(
                    info.id,
                    TeeveStreamConfig::for_stream(info),
                    self.seed,
                );
                while trace.next_capture_at() < from {
                    let _ = trace.next_frame();
                }
                for frame in trace.frames_until(until) {
                    for &(viewer, e2e) in subs {
                        let buffer = self
                            .buffers
                            .entry(viewer)
                            .or_insert_with(|| ViewerBuffer::new(config.dbuff, config.dcache));
                        buffer.receive(frame, frame.captured_at + e2e);
                    }
                }
            }
        }
        for buffer in self.buffers.values_mut() {
            buffer.evict_expired(until);
        }
        self.pumped_until = until;
    }

    /// The buffer of one viewer, if any frames were delivered to it.
    pub fn buffer(&self, viewer: NodeId) -> Option<&ViewerBuffer> {
        self.buffers.get(&viewer)
    }

    /// Attempts a synchronous render at `at` (with skew tolerance
    /// `dskew`) for every connected viewer with subscriptions.
    ///
    /// A viewer is counted as `rendered` if its buffer holds one frame
    /// per subscribed stream captured within `dskew` of a common anchor.
    pub fn render_all(
        &self,
        session: &TelecastSession,
        at: SimTime,
        dskew: SimDuration,
    ) -> RenderReport {
        let mut report = RenderReport::default();
        for &v in session.viewer_ids() {
            let state = session.viewer(v).expect("pool viewer");
            if state.status != ViewerStatus::Connected {
                continue;
            }
            if state.subs.is_empty() {
                report.idle += 1;
                continue;
            }
            let expected: Vec<_> = state.subs.keys().copied().collect();
            let ok = self
                .buffers
                .get(&v)
                .and_then(|b| b.try_render(&expected, at, dskew))
                .is_some();
            if ok {
                report.rendered += 1;
            } else {
                report.failed += 1;
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SessionConfig;
    use telecast_media::ViewId;
    use telecast_net::BandwidthProfile;

    fn session() -> TelecastSession {
        let config = SessionConfig::default()
            .with_seed(21)
            .with_outbound(BandwidthProfile::uniform_mbps(2, 12));
        let mut session = TelecastSession::builder(config).viewers(20).build();
        for v in session.viewer_ids().to_vec() {
            session.request_join(v, ViewId::new(0)).expect("valid");
        }
        session.run_to_idle();
        session
    }

    #[test]
    fn pump_fills_buffers_and_everyone_renders() {
        let session = session();
        let mut plane = DataPlane::new(7);
        // Pump past the slowest viewer's delay plus a second of content.
        let slowest = session
            .viewer_ids()
            .iter()
            .filter_map(|&v| {
                session
                    .viewer(v)
                    .unwrap()
                    .subs
                    .values()
                    .map(|s| s.e2e)
                    .max()
            })
            .max()
            .expect("subscriptions exist");
        let horizon = SimTime::ZERO + slowest + SimDuration::from_secs(3);
        plane.pump(&session, horizon);
        let render_at = SimTime::ZERO + slowest + SimDuration::from_secs(1);
        let report = plane.render_all(&session, render_at, SimDuration::from_millis(100));
        assert_eq!(report.failed, 0, "all synchronized viewers must render");
        assert!(report.rendered > 0);
    }

    #[test]
    fn pump_is_incremental() {
        let session = session();
        let mut once = DataPlane::new(7);
        once.pump(&session, SimTime::from_secs(62));

        let mut twice = DataPlane::new(7);
        twice.pump(&session, SimTime::from_secs(31));
        twice.pump(&session, SimTime::from_secs(62));

        let v = session
            .viewer_ids()
            .iter()
            .copied()
            .find(|&v| once.buffer(v).is_some())
            .expect("someone buffered");
        assert_eq!(
            once.buffer(v).unwrap().len(),
            twice.buffer(v).unwrap().len()
        );
    }

    #[test]
    fn pump_backwards_is_a_noop() {
        let session = session();
        let mut plane = DataPlane::new(7);
        plane.pump(&session, SimTime::from_secs(61));
        let before: usize = session
            .viewer_ids()
            .iter()
            .filter_map(|&v| plane.buffer(v).map(|b| b.len()))
            .sum();
        plane.pump(&session, SimTime::from_secs(30));
        let after: usize = session
            .viewer_ids()
            .iter()
            .filter_map(|&v| plane.buffer(v).map(|b| b.len()))
            .sum();
        assert_eq!(before, after);
    }
}
